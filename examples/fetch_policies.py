#!/usr/bin/env python3
"""Fetch-policy and priority ablations.

Reproduces two of the paper's side discussions:

1. **True prefetch vs guaranteed execution** (section 6): the original
   PIPE I-fetch logic only requested a line from off-chip memory when
   it was guaranteed to contain an instruction that would execute — a
   leftover from the dual-processor PIPE project.  The paper calls this
   "non-optimal" for a single-chip processor and presents all results
   with true prefetch.  Measure the penalty yourself.

2. **Instruction vs data priority at the memory interface** (sections
   2.2 and 5): architectural queues let instruction requests take
   precedence over data requests "with a limited impact on performance"
   because data is requested long before it is needed.

Run with::

    python examples/fetch_policies.py [scale]
"""

import sys

from repro.core import MachineConfig, simulate
from repro.kernels import build_livermore_program
from repro.memory.requests import RequestPriority


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    print(f"building the 14-loop benchmark (scale {scale}) ...\n")
    program = build_livermore_program(scale=scale)

    print("1. fetch policy (PIPE 16-16, 6-cycle memory, 8-byte bus)")
    print(f"   {'cache':>6}  {'true prefetch':>14}  {'guaranteed only':>16}  penalty")
    for cache_size in (32, 64, 128):
        true_prefetch = simulate(
            MachineConfig.pipe("16-16", cache_size, true_prefetch=True), program
        ).cycles
        guaranteed = simulate(
            MachineConfig.pipe("16-16", cache_size, true_prefetch=False), program
        ).cycles
        penalty = (guaranteed - true_prefetch) / true_prefetch
        print(
            f"   {cache_size:>5}B  {true_prefetch:>14}  {guaranteed:>16}"
            f"  {penalty:+.1%}"
        )

    print("\n2. memory-interface priority (PIPE 16-16, 128B cache)")
    print(f"   {'memory':>10}  {'instr first':>12}  {'data first':>11}  delta")
    for access_time in (1, 3, 6):
        instruction_first = simulate(
            MachineConfig.pipe(
                "16-16",
                128,
                memory_access_time=access_time,
                priority=RequestPriority.INSTRUCTION_FIRST,
            ),
            program,
        ).cycles
        data_first = simulate(
            MachineConfig.pipe(
                "16-16",
                128,
                memory_access_time=access_time,
                priority=RequestPriority.DATA_FIRST,
            ),
            program,
        ).cycles
        delta = (instruction_first - data_first) / data_first
        print(
            f"   {'T=' + str(access_time):>10}  {instruction_first:>12}"
            f"  {data_first:>11}  {delta:+.1%}"
        )
    print(
        "\nThe queues keep both choices close — the paper's point about\n"
        "tolerating (rather than eliminating) memory latency."
    )


if __name__ == "__main__":
    main()
