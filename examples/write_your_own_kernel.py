#!/usr/bin/env python3
"""Compile your own kernel with the mini PIPE compiler.

Defines SAXPY (``y[i] = a*x[i] + y[i]``) in the kernel DSL, compiles it
to PIPE assembly, shows the generated code (note the FPU store pairs,
the queue-register traffic, and the prepare-to-branch with its filled
delay slots), validates the run bit-exactly against the reference
interpreter, and times it on the cycle-level machine.

Run with::

    python examples/write_your_own_kernel.py
"""

import struct

from repro.asm import assemble
from repro.core import MachineConfig, Simulator
from repro.cpu.functional import FunctionalSimulator
from repro.kernels import (
    Affine,
    ArrayDecl,
    ConstRef,
    Kernel,
    Load,
    Store,
    add,
    compile_kernel,
    f32,
    mul,
    run_kernel_reference,
)
from repro.memory.fpu import FPU_BASE

N = 64


def build_saxpy() -> Kernel:
    return Kernel(
        number=1,
        name="saxpy",
        iterations=N,
        consts={"a": 1.75},
        statements=(
            Store(
                "y",
                Affine(),
                add(mul(ConstRef("a"), Load("x", Affine())), Load("y", Affine())),
            ),
        ),
    )


def main() -> None:
    kernel = build_saxpy()
    compiled = compile_kernel(kernel)

    print("=== generated inner loop " + "=" * 34)
    for line in compiled.loop_body:
        print(f"    {line}")
    print(f"({compiled.body_instruction_count} instructions per iteration)\n")

    # Assemble a complete program around the kernel.
    x_init = [f32(0.25 + 0.01 * i) for i in range(N)]
    y_init = [f32(1.0 - 0.005 * i) for i in range(N)]
    lines = [
        "        .entry start",
        "start:",
        f"        li r6, {FPU_BASE & 0xFFFF}",
        f"        lih r6, {FPU_BASE >> 16}",
    ]
    lines += compiled.text_lines
    lines.append("        halt")
    lines += compiled.data
    for name, values in (("x", x_init), ("y", y_init)):
        lines.append("        .align 4")
        lines.append(f"{name}:")
        lines.append("        .float " + ", ".join(repr(v) for v in values))
    program = assemble("\n".join(lines) + "\n")

    # Reference semantics (bit-exact float32).
    reference = {"x": list(x_init), "y": list(y_init)}
    run_kernel_reference(kernel, reference)

    # Functional run.
    functional = FunctionalSimulator(program)
    functional.run()
    base = program.symbols["y"]
    got = [
        struct.unpack("<f", bytes(functional.memory[base + 4 * i: base + 4 * i + 4]))[0]
        for i in range(N)
    ]
    assert got == reference["y"], "functional result mismatch!"
    print("functional simulation matches the reference bit-for-bit")

    # Cycle-level run on two machines.
    for label, config in (
        ("PIPE 16-16, 64B cache, T=6", MachineConfig.pipe("16-16", 64)),
        ("conventional, 64B cache, T=6", MachineConfig.conventional(64)),
    ):
        simulator = Simulator(config, program)
        result = simulator.run()
        assert bytes(simulator.engine.memory) == bytes(functional.memory)
        print(
            f"{label:<32} {result.cycles:>6} cycles, IPC {result.ipc:.3f}, "
            f"{result.fpu_operations} FPU ops"
        )

    print("\ny[0:4] =", [round(v, 5) for v in got[:4]])


if __name__ == "__main__":
    main()
