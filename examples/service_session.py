#!/usr/bin/env python3
"""Scripted client session against the resilient simulation service.

Boots an in-process :class:`~repro.core.service.SimulationService` over
a real worker pool, arms the deterministic fault injectors (worker
kills and cache corruption), then drives the full client story:

* a stampede of concurrent requests, most of them duplicates, so
  request coalescing provably folds them onto shared in-flight work;
* one request submitted with an already-expired deadline, which must
  come back as a structured ``504`` timeout rather than a result;
* a sweep job whose per-point progress is streamed back as NDJSON.

Every served checksum is written to ``--served-out`` and the clean,
uncached reference-engine checksum for the same design points to
``--reference-out``: if the service degraded, retried, healed a
corrupted cache entry, or coalesced work, the two files must still be
**identical** — the resilience machinery is allowed to cost latency,
never correctness.  CI diffs the two files; run locally with::

    PYTHONPATH=src python examples/service_session.py

"""

import argparse
import json
import sys
import threading
from pathlib import Path

from repro.core import faults
from repro.core.config import MachineConfig
from repro.core.service import ServiceClient, ServiceConfig, ServiceThread
from repro.core.simcache import result_key
from repro.core.simulator import simulate
from repro.kernels import build_livermore_program

#: duplicated this many times, the unique points below give a 67%
#: duplicate rate across the stampede
REPEATS = 3


def unique_points() -> list[dict]:
    points = []
    for size in (64, 128, 256, 512):
        points.append(MachineConfig.conventional(icache_size=size).to_dict())
        points.append(MachineConfig.pipe("16-16", icache_size=size).to_dict())
    return points


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--jobs", type=int, default=2, help="pool workers")
    parser.add_argument("--served-out", type=Path, default=Path("served.json"))
    parser.add_argument(
        "--reference-out", type=Path, default=Path("reference.json")
    )
    parser.add_argument(
        "--inject-faults",
        default="seed=11,kill=0.4,corrupt=0.4,hang-seconds=30",
        help="fault plan spec (empty string disarms)",
    )
    args = parser.parse_args()

    print(f"building the benchmark program (scale {args.scale}) ...")
    program = build_livermore_program(scale=args.scale)
    points = unique_points()
    requests = [
        points[index % len(points)] for index in range(len(points) * REPEATS)
    ]

    if args.inject_faults:
        faults.activate(faults.FaultPlan.parse(args.inject_faults))
        print(f"fault injectors armed: {args.inject_faults}")

    config = ServiceConfig(
        pool_jobs=args.jobs,
        queue_limit=128,
        tenant_quota=128,
        shed_limit=64,
        point_timeout=5.0,
        max_retries=6,
        backoff=0.02,
        default_deadline=300.0,
    )
    served: dict[str, str] = {}
    lock = threading.Lock()
    failures: list[str] = []

    try:
        with ServiceThread(program, config, cache=None) as handle:
            print(f"service up on 127.0.0.1:{handle.port}")
            client = ServiceClient("127.0.0.1", handle.port, timeout=300)

            # -- the stampede: concurrent, mostly-duplicate requests --
            def request(fields: dict) -> None:
                status, payload = client.simulate(fields, deadline=300.0)
                if status != 200:
                    with lock:
                        failures.append(f"{status}: {payload}")
                    return
                with lock:
                    served[payload["key"]] = payload["checksum"]

            threads = [
                threading.Thread(target=request, args=(fields,))
                for fields in requests
            ]
            for thread in threads:
                thread.start()

            # -- one past-deadline request rides along ----------------
            status, payload = client.simulate(points[0], deadline=0.0)
            if status != 504 or payload.get("error", {}).get("type") != "deadline":
                failures.append(
                    f"expected a structured 504 deadline, got {status}: {payload}"
                )
            else:
                print("past-deadline request correctly refused with 504")

            for thread in threads:
                thread.join()

            # -- a sweep job with streamed progress -------------------
            status, job = client.submit_job(points[:4], deadline=300.0)
            if status != 202:
                failures.append(f"job submit failed: {status}: {job}")
            else:
                streamed = 0
                for event in client.job_events(job["id"]):
                    if event.get("type") == "point":
                        streamed += 1
                        served[event["key"]] = event["checksum"]
                print(f"sweep job {job['id']} streamed {streamed} points")

            stats = client.stats()
    finally:
        if args.inject_faults:
            faults.deactivate()

    print(
        f"served {len(requests)} requests over {len(points)} unique points: "
        f"{stats['coalesce_hits']} coalesce hits, "
        f"{stats['simulations']} simulations, "
        f"{stats['pool_respawns']} pool respawns, "
        f"faults={stats['faults']}"
    )
    if stats["coalesce_hits"] == 0:
        failures.append("no coalesce hits recorded across the duplicates")

    # -- the correctness bar: served == clean uncached reference ------
    reference = {
        result_key(MachineConfig.from_dict(fields), program): simulate(
            MachineConfig.from_dict(fields), program
        ).checksum()
        for fields in points
    }
    args.served_out.write_text(
        json.dumps(dict(sorted(served.items())), indent=2) + "\n"
    )
    args.reference_out.write_text(
        json.dumps(dict(sorted(reference.items())), indent=2) + "\n"
    )
    print(f"served checksums    -> {args.served_out}")
    print(f"reference checksums -> {args.reference_out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if served != reference:
        print("FAIL: served checksums diverge from the reference", file=sys.stderr)
        return 1
    print("PASS: every served checksum matches the clean reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())
