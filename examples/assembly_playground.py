#!/usr/bin/env python3
"""Hand-written PIPE assembly: the architectural queues up close.

Writes a dot-product in raw PIPE assembly, exercising everything the
ISA gives you: loads through the Load Address/Data Queues, stores
through the Store Address/Data Queues, the memory-mapped FPU, the
queue register r7, and a prepare-to-branch with delay slots.

Then runs it at several memory speeds and prints where the cycles go —
watch the ``ldq_empty`` stalls grow as memory slows down, exactly the
effect the architectural queues are designed to tolerate.

Run with::

    python examples/assembly_playground.py
"""

import struct

from repro.asm import assemble
from repro.core import MachineConfig, Simulator
from repro.memory.fpu import FPU_BASE

N = 32

SOURCE = f"""
; dot = sum(x[i] * y[i]) on the PIPE-like machine
        .equ N, {N}
        .entry start
start:
        li   r6, {FPU_BASE & 0xFFFF}      ; r6 -> FPU window
        lih  r6, {FPU_BASE >> 16}
        li   r0, 0            ; byte index 4*i
        li   r1, N            ; trip counter
        li   r2, 0            ; dot product bits (0.0f)
        lbr  b0, loop
loop:
        st   r6, 0            ; FPU operand A  = x[i]
        ld   r0, x
        qtoq
        st   r6, 12           ; trigger multiply, operand B = y[i]
        ld   r0, y
        qtoq
        ld   r6, 32           ; request the product
        st   r6, 0            ; FPU operand A  = dot
        pushq r2
        st   r6, 4            ; trigger add, operand B = product
        qtoq
        ld   r6, 32           ; request the running sum
        subi r1, r1, 1
        pbrne b0, r1, 2       ; two delay slots keep the pipe full
        popq r2               ;   dot = new sum
        addi r0, r0, 4        ;   next element
        li   r3, 0
        st   r3, result
        pushq r2
        halt

        .align 4
x:      .float {", ".join(repr(0.1 + 0.05 * i) for i in range(N))}
y:      .float {", ".join(repr(1.0 - 0.01 * i) for i in range(N))}
result: .word 0
"""


def main() -> None:
    program = assemble(SOURCE, source_name="dot.s")
    expected = 0.0
    xs = [0.1 + 0.05 * i for i in range(N)]
    ys = [1.0 - 0.01 * i for i in range(N)]

    print(f"{'memory':<24}{'cycles':>8}{'IPC':>7}  stalls")
    for access_time, pipelined in ((1, False), (3, False), (6, False), (6, True)):
        config = MachineConfig.pipe(
            "16-16",
            128,
            memory_access_time=access_time,
            memory_pipelined=pipelined,
        )
        simulator = Simulator(config, program)
        result = simulator.run()
        address = program.symbols["result"]
        bits = bytes(simulator.engine.memory[address : address + 4])
        dot = struct.unpack("<f", bits)[0]
        stalls = ", ".join(
            f"{name}={count}" for name, count in result.stalls.items() if count
        )
        label = f"T={access_time}{' pipelined' if pipelined else ''}"
        print(f"{label:<24}{result.cycles:>8}{result.ipc:>7.3f}  {stalls}")
        expected = dot

    # float32 reference
    import numpy as np

    reference = np.float32(0.0)
    for x, y in zip(xs, ys):
        product = np.float32(np.float32(x) * np.float32(y))
        reference = np.float32(reference + product)
    print(f"\ndot product = {expected} (float32 reference {float(reference)})")
    assert expected == float(reference)


if __name__ == "__main__":
    main()
