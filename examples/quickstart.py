#!/usr/bin/env python3
"""Quickstart: simulate the Livermore benchmark on both fetch strategies.

Builds the paper's 14-loop benchmark program (at reduced scale so this
runs in seconds), then simulates the headline comparison: the PIPE
fetch strategy (small cache + instruction queue + instruction queue
buffer) versus a conventional always-prefetch cache of the same size,
with the 6-cycle external memory of Figures 5/6.

Run with::

    python examples/quickstart.py [scale]
"""

import sys

from repro import MachineConfig, simulate
from repro.kernels import build_livermore_program


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    print(f"building the 14-loop benchmark (scale {scale}) ...")
    program = build_livermore_program(scale=scale)

    pipe_config = MachineConfig.pipe(
        "16-16",  # Table II configuration: 16-byte line, IQ and IQB
        icache_size=128,  # the fabricated PIPE chip's cache size
        memory_access_time=6,
        input_bus_width=8,
    )
    conventional_config = MachineConfig.conventional(
        icache_size=128,
        memory_access_time=6,
        input_bus_width=8,
    )

    print("\n--- PIPE: cache + IQ + IQB ------------------------------")
    pipe = simulate(pipe_config, program)
    print(pipe.summary())

    print("\n--- conventional always-prefetch cache ------------------")
    conventional = simulate(conventional_config, program)
    print(conventional.summary())

    speedup = conventional.cycles / pipe.cycles
    print("\n----------------------------------------------------------")
    print(f"PIPE is {speedup:.2f}x faster at this design point.")
    print(
        "Try a 32-byte cache (the paper's headline: 'up to twice as fast'):\n"
        "    repro-sim run --cache 32 --access 6 --bus 4 --scale 0.15"
    )


if __name__ == "__main__":
    main()
