#!/usr/bin/env python3
"""Explore the cache design space: regenerate a figure of the paper.

Sweeps instruction-cache size for the four Table II PIPE configurations
and the conventional cache — the exact experiment behind Figures 4-6 —
and renders the result as a table, a CSV, and an ASCII plot.

Run with::

    python examples/cache_design_space.py [panel] [scale]

where ``panel`` is one of 4a, 4b, 5a, 5b, 6a, 6b (default 5b).
"""

import sys

from repro.analysis.figures import FIGURES, render_figure, run_figure
from repro.analysis.tables import render_series_csv
from repro.core.config import PAPER_CACHE_SIZES
from repro.kernels import build_livermore_program


def main() -> None:
    panel = sys.argv[1] if len(sys.argv) > 1 else "5b"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1
    if panel not in FIGURES:
        raise SystemExit(f"unknown panel {panel!r}; choose from {sorted(FIGURES)}")

    print(f"building the benchmark (scale {scale}) ...")
    program = build_livermore_program(scale=scale)

    spec = FIGURES[panel]
    print(f"running {spec.title}")
    print("(25 cycle-level simulations; this takes a minute or two)\n")
    series = run_figure(panel, program, cache_sizes=PAPER_CACHE_SIZES)

    print(render_figure(panel, series, PAPER_CACHE_SIZES))
    print("\nCSV for your plotting tool of choice:\n")
    print(render_series_csv(series, PAPER_CACHE_SIZES))

    best = min(series, key=lambda curve: min(curve.cycles))
    flattest = min(series, key=lambda curve: curve.flatness)
    print(f"\nfastest curve   : {best.label}")
    print(
        f"flattest curve  : {flattest.label} "
        f"(max/min = {flattest.flatness:.3f} — the paper's point about "
        "uniform performance across cache sizes)"
    )


if __name__ == "__main__":
    main()
