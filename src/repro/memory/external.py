"""Timing model of the external memory (a large, always-hitting cache).

Paper section 5: "Memory is modeled as a large external cache that
services both instruction and data requests. ... The cache is assumed to
be large enough to achieve a 100% hit rate in our simulations."

Parameters (paper simulation parameters 4 and 6):

* ``access_time`` — clock cycles from request acceptance until the first
  datum is available on the memory side of the input bus;
* ``pipelined`` — if true, "the memory system can accept a new request
  each clock cycle"; if false, the memory is busy from acceptance until
  its request has fully completed (all data delivered over the input bus,
  or the write finished for stores).
"""

from __future__ import annotations

from ..core.scheduler import IDLE, ProgressClock
from .requests import MemoryRequest, RequestKind

__all__ = ["ExternalMemory"]


class ExternalMemory:
    """In-flight request bookkeeping for the external cache."""

    def __init__(
        self,
        access_time: int,
        pipelined: bool,
        clock: ProgressClock | None = None,
    ):
        if access_time < 1:
            raise ValueError(f"access_time must be >= 1, got {access_time}")
        self.access_time = access_time
        self.pipelined = pipelined
        self.in_flight: list[MemoryRequest] = []
        self.total_accepted = 0
        self.busy_cycles = 0
        self._accepted_this_cycle = False
        self._clock = clock if clock is not None else ProgressClock()

    # ------------------------------------------------------------------
    def begin_cycle(self, now: int) -> None:
        self._accepted_this_cycle = False
        if self.in_flight:
            self.busy_cycles += 1

    def can_accept(self, now: int) -> bool:
        """May a new request be accepted this cycle?"""
        if self._accepted_this_cycle:
            return False
        if self.pipelined:
            return True
        return not self.in_flight

    def accept(self, request: MemoryRequest, now: int) -> None:
        if not self.can_accept(now):
            raise RuntimeError("external memory cannot accept a request now")
        request.accepted_at = now
        request.ready_at = now + self.access_time
        self.in_flight.append(request)
        self.total_accepted += 1
        self._accepted_this_cycle = True
        self._clock.ticks += 1

    # ------------------------------------------------------------------
    def ready_requests(self, now: int) -> list[MemoryRequest]:
        """Requests with undelivered data available for the input bus."""
        return [
            request
            for request in self.in_flight
            if request.kind != RequestKind.STORE
            and request.ready_at is not None
            and now >= request.ready_at
            and request.remaining_bytes > 0
        ]

    def retire_finished(self, now: int) -> None:
        """Complete stores whose write finished and fully-delivered reads."""
        still_flying: list[MemoryRequest] = []
        for request in self.in_flight:
            if request.kind == RequestKind.STORE:
                done = request.ready_at is not None and now >= request.ready_at
            else:
                done = request.remaining_bytes == 0
            if done:
                request.completed = True
                self._clock.ticks += 1
                if request.on_complete is not None:
                    request.on_complete(now)
            else:
                still_flying.append(request)
        self.in_flight = still_flying

    # ------------------------------------------------------------------
    def state_signature(self, now: int, base_seq: int) -> tuple:
        """In-flight request shape with times/seqs made anchor-relative.

        Instruction-fetch addresses recur in a steady-state loop and are
        kept verbatim; data addresses stride and are excluded (the replay
        engine re-derives them functionally).  ``on_chunk``/``on_complete``
        presence distinguishes an abandoned fetch from a live one.
        """
        return tuple(
            (
                request.kind.value,
                request.address if request.kind is RequestKind.IFETCH else None,
                request.size,
                request.demand,
                request.seq - base_seq,
                None if request.accepted_at is None else request.accepted_at - now,
                None if request.ready_at is None else request.ready_at - now,
                request.delivered_bytes,
                request.completed,
                request.on_chunk is None,
                request.on_complete is None,
            )
            for request in self.in_flight
        )

    def replay_shift(self, cycles: int, seqs: int) -> None:
        """Advance every in-flight request by a replayed span's deltas."""
        for request in self.in_flight:
            if request.accepted_at is not None:
                request.accepted_at += cycles
            if request.ready_at is not None:
                request.ready_at += cycles
            request.seq += seqs

    # ------------------------------------------------------------------
    # compiled-kernel lowering (repro.core.compiled)
    # ------------------------------------------------------------------
    @classmethod
    def emit_compiled_wake(cls, ctx) -> None:
        """Open the idle-skip wake scan with :meth:`next_event_cycle`.

        ``in_flight`` is read through the owner every time because
        :meth:`retire_finished` rebinds it each cycle.
        """
        ctx.need("external")
        ctx.line("wake = IDLE")
        with ctx.block("for request in external.in_flight:"):
            ctx.line("ready = request.ready_at")
            with ctx.block("if ready is not None and ready < wake:"):
                ctx.line("wake = ready")

    # ------------------------------------------------------------------
    def next_event_cycle(self, now: int) -> int:
        """Earliest ``ready_at`` among in-flight requests, else ``IDLE``.

        Once a request turns ready, its deliveries/retirement generate
        ticks every cycle, so ``ready_at`` is the only timed event this
        component owns.
        """
        nxt = IDLE
        for request in self.in_flight:
            ready = request.ready_at
            if ready is not None and ready < nxt:
                nxt = ready
        return nxt
