"""Memory request objects and arbitration priorities.

Every off-chip transaction is a :class:`MemoryRequest`.  Requests are
*polled* from request sources (the data-queue engine and the instruction
fetch frontend) by the memory system's output-bus arbiter, then delivered
back over the input bus.

Two priority decisions exist, and the paper describes both:

* **output bus / memory interface** (which request is *accepted* next):
  section 6 — "instruction requests are given priority over data requests
  at the memory interface" for the presented PIPE results; Hill's
  conventional model instead gives data fetches priority over instruction
  fetches, which in turn beat prefetches (section 4.1).  This order is a
  configuration knob (:class:`RequestPriority`).
* **input (return) bus** (whose data transfers next): section 5 — "the
  simulation model gives precedence to data and instruction loads and
  stores, followed by multiply results, with instruction prefetches having
  lowest priority".  This order is fixed (:func:`return_tier`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "MemoryRequest",
    "RequestKind",
    "RequestPriority",
    "acceptance_order",
    "return_tier",
]


class RequestKind(enum.Enum):
    LOAD = "load"  #: a data load (4 bytes back over the input bus)
    STORE = "store"  #: a data store (address+data out, nothing back)
    IFETCH = "ifetch"  #: an instruction fetch (line or sub-block back)


class RequestPriority(enum.Enum):
    """Output-bus acceptance order at the memory interface."""

    INSTRUCTION_FIRST = "instruction_first"  #: PIPE presented results (§6)
    DATA_FIRST = "data_first"  #: Hill's conventional model (§4.1)


@dataclass
class MemoryRequest:
    """One off-chip transaction.

    ``demand`` distinguishes demand instruction fetches from prefetches;
    it may be *promoted* while the request is in flight (an IQB prefetch
    becomes demand once the IQ drains), which raises its return-bus
    priority live.

    ``on_chunk(offset, nbytes, now)`` fires for every input-bus transfer
    of this request's data; ``on_complete(now)`` fires once, when the
    last byte has been delivered (for stores: when the memory has
    finished the write).
    """

    kind: RequestKind
    address: int
    size: int
    seq: int
    demand: bool = True
    store_value: int | None = None
    on_chunk: Callable[[int, int, int], None] | None = None
    on_complete: Callable[[int], None] | None = None

    # -- in-flight bookkeeping (owned by the memory system) -------------
    accepted_at: int | None = field(default=None, compare=False)
    ready_at: int | None = field(default=None, compare=False)
    delivered_bytes: int = field(default=0, compare=False)
    completed: bool = field(default=False, compare=False)

    @property
    def in_flight(self) -> bool:
        return self.accepted_at is not None and not self.completed

    @property
    def remaining_bytes(self) -> int:
        return self.size - self.delivered_bytes

    def promote_to_demand(self) -> None:
        """Raise an in-flight prefetch to demand priority."""
        self.demand = True


def acceptance_order(request: MemoryRequest, priority: RequestPriority) -> tuple:
    """Sort key for output-bus acceptance (lower sorts first).

    Within each class, older requests (smaller ``seq``) go first.
    Demand instruction fetches always beat instruction prefetches.
    """
    is_data = request.kind in (RequestKind.LOAD, RequestKind.STORE)
    if priority is RequestPriority.INSTRUCTION_FIRST:
        if not is_data:
            rank = 0 if request.demand else 1
        else:
            rank = 2
    else:
        if is_data:
            rank = 0
        elif request.demand:
            rank = 1
        else:
            rank = 2
    return (rank, request.seq)


#: Return-bus tiers (paper §5): demand traffic, then FPU results, then
#: instruction prefetches.  FPU result deliveries are tiered by the
#: caller since they are not MemoryRequests against the external memory.
RETURN_TIER_DEMAND = 0
RETURN_TIER_FPU_RESULT = 1
RETURN_TIER_PREFETCH = 2


def return_tier(request: MemoryRequest) -> int:
    """Input-bus tier of an external-memory request's data."""
    if request.kind == RequestKind.LOAD:
        return RETURN_TIER_DEMAND
    if request.kind == RequestKind.IFETCH:
        return RETURN_TIER_DEMAND if request.demand else RETURN_TIER_PREFETCH
    raise ValueError(f"{request.kind} never uses the input bus")
