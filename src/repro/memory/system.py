"""The memory system facade: output-bus acceptance, input-bus delivery.

This ties together the external memory (:mod:`repro.memory.external`),
the timed FPU (:mod:`repro.memory.fpu_timing`), and the two buses of the
paper's Figure 3 simulation setup.

Per simulated cycle the simulator calls, in order:

1. :meth:`MemorySystem.begin_cycle` — the *input bus* delivers at most one
   transfer of up to ``input_bus_width`` bytes, chosen by the return-bus
   priority of section 5 (demand loads/fetches, then FPU results, then
   instruction prefetches);
2. the frontend and back-end update (possibly generating new requests);
3. :meth:`MemorySystem.end_cycle` — the *output bus* accepts at most one
   new request, chosen by the memory-interface priority (instruction- or
   data-first, a configuration knob), skipping requests whose target
   cannot accept this cycle (e.g. a busy non-pipelined memory).

Request *sources* register with the system and are polled each acceptance
phase; this keeps back-pressure natural: a request that is not accepted
simply stays at the head of its source (the LAQ, the SAQ/SDQ pair, or the
frontend's fetch logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..core.scheduler import ProgressClock
from ..core.trace import NULL_TRACER, Tracer
from .external import ExternalMemory
from .fpu import FPU_BASE, FpuLatencies, is_fpu_address
from .fpu import TRIGGER_OPERATIONS as _FPUTRIGGER_OPERATIONS
from .fpu_timing import TimedFpu
from .requests import (
    RETURN_TIER_FPU_RESULT,
    MemoryRequest,
    RequestKind,
    RequestPriority,
    acceptance_order,
    return_tier,
)

__all__ = ["MemorySystem", "MemoryStats", "RequestSource"]


class RequestSource(Protocol):
    """Anything that can offer memory requests for acceptance."""

    def poll_requests(self, now: int) -> list[MemoryRequest]:
        """Candidate requests this cycle (each source usually offers 0-1)."""
        ...

    def notify_accepted(self, request: MemoryRequest, now: int) -> None:
        """Called when one of this source's candidates won arbitration."""
        ...


@dataclass
class MemoryStats:
    """Counters the analysis layer reports alongside cycle counts."""

    loads_accepted: int = 0
    stores_accepted: int = 0
    ifetch_demand_accepted: int = 0
    ifetch_prefetch_accepted: int = 0
    fpu_stores_accepted: int = 0
    fpu_loads_accepted: int = 0
    input_bus_busy_cycles: int = 0
    output_bus_busy_cycles: int = 0
    input_bus_bytes: int = 0
    acceptance_conflicts: int = 0  #: cycles where >1 candidate wanted the bus
    by_source_bytes: dict[str, int] = field(default_factory=dict)


class MemorySystem:
    """Arbitrates both buses and owns the external memory + timed FPU."""

    def __init__(
        self,
        access_time: int,
        pipelined: bool,
        input_bus_width: int,
        priority: RequestPriority,
        fpu_latencies: FpuLatencies | None = None,
        tracer: Tracer | None = None,
        clock: ProgressClock | None = None,
    ):
        if input_bus_width < 4:
            raise ValueError("input bus must be at least 4 bytes wide")
        clock = clock if clock is not None else ProgressClock()
        self._clock = clock
        self.external = ExternalMemory(access_time, pipelined, clock=clock)
        self.fpu = TimedFpu(
            fpu_latencies or FpuLatencies(), _FPUTRIGGER_OPERATIONS, clock=clock
        )
        self.input_bus_width = input_bus_width
        self.priority = priority
        self.stats = MemoryStats()
        self._sources: list[RequestSource] = []
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: candidate count of the most recent acceptance conflict (the
        #: skip scheduler replays per-idle-cycle conflict events with it)
        self.last_conflict_candidates = 0

    def register_source(self, source: RequestSource) -> None:
        self._sources.append(source)

    # ------------------------------------------------------------------
    # Input bus (deliveries) — call first each cycle
    # ------------------------------------------------------------------
    def begin_cycle(self, now: int) -> None:
        self.external.begin_cycle(now)
        self.fpu.begin_cycle(now)
        self._deliver_one(now)
        self.external.retire_finished(now)

    def _deliver_one(self, now: int) -> None:
        candidates: list[tuple[tuple, str, MemoryRequest]] = []
        for request in self.external.ready_requests(now):
            key = (return_tier(request), request.ready_at, request.seq)
            candidates.append((key, "external", request))
        fpu_load = self.fpu.deliverable_load(now)
        if fpu_load is not None:
            key = (RETURN_TIER_FPU_RESULT, fpu_load.accepted_at, fpu_load.seq)
            candidates.append((key, "fpu", fpu_load))
        if not candidates:
            return
        candidates.sort(key=lambda item: item[0])
        _key, target, request = candidates[0]
        if target == "fpu":
            offset = 0
            transferred = request.size
            if self._tracer.enabled:
                self._tracer.emit(
                    "mem",
                    "deliver",
                    source=target,
                    seq=request.seq,
                    offset=offset,
                    bytes=transferred,
                )
            self.fpu.deliver(now)
        else:
            offset = request.delivered_bytes
            transferred = min(self.input_bus_width, request.remaining_bytes)
            request.delivered_bytes += transferred
            if self._tracer.enabled:
                self._tracer.emit(
                    "mem",
                    "deliver",
                    source=target,
                    seq=request.seq,
                    offset=offset,
                    bytes=transferred,
                )
            if request.on_chunk is not None:
                request.on_chunk(offset, transferred, now)
        self.stats.input_bus_busy_cycles += 1
        self.stats.input_bus_bytes += transferred
        self._clock.ticks += 1

    # ------------------------------------------------------------------
    # Output bus (acceptances) — call last each cycle
    # ------------------------------------------------------------------
    def end_cycle(self, now: int) -> None:
        candidates: list[tuple[MemoryRequest, RequestSource]] = []
        for source in self._sources:
            for request in source.poll_requests(now):
                candidates.append((request, source))
        if not candidates:
            return
        if len(candidates) > 1:
            self.stats.acceptance_conflicts += 1
            self.last_conflict_candidates = len(candidates)
            if self._tracer.enabled:
                self._tracer.emit("mem", "conflict", candidates=len(candidates))
        candidates.sort(key=lambda item: acceptance_order(item[0], self.priority))
        for request, source in candidates:
            if self._try_accept(request, now):
                source.notify_accepted(request, now)
                self.stats.output_bus_busy_cycles += 1
                self._count_acceptance(request)
                if self._tracer.enabled:
                    self._tracer.emit(
                        "mem",
                        "accept",
                        kind=request.kind.value,
                        addr=request.address,
                        bytes=request.size,
                        demand=request.demand,
                        fpu=is_fpu_address(request.address),
                        seq=request.seq,
                    )
                return

    def _try_accept(self, request: MemoryRequest, now: int) -> bool:
        if is_fpu_address(request.address):
            if not self.fpu.can_accept(request, now):
                return False
            self.fpu.accept(request, now)
            return True
        if not self.external.can_accept(now):
            return False
        self.external.accept(request, now)
        return True

    def _count_acceptance(self, request: MemoryRequest) -> None:
        stats = self.stats
        if is_fpu_address(request.address):
            if request.kind == RequestKind.STORE:
                stats.fpu_stores_accepted += 1
            else:
                stats.fpu_loads_accepted += 1
            return
        if request.kind == RequestKind.LOAD:
            stats.loads_accepted += 1
        elif request.kind == RequestKind.STORE:
            stats.stores_accepted += 1
        elif request.demand:
            stats.ifetch_demand_accepted += 1
        else:
            stats.ifetch_prefetch_accepted += 1

    # ------------------------------------------------------------------
    def state_signature(self, now: int, base_seq: int) -> tuple:
        """Combined fingerprint of the external memory and the timed FPU.

        The facade itself holds no timing state; ``_accepted_this_cycle``
        and ``last_conflict_candidates`` are always rewritten before
        their next read, so neither participates.
        """
        return (
            self.external.state_signature(now, base_seq),
            self.fpu.state_signature(now, base_seq),
        )

    def replay_shift(self, cycles: int, seqs: int) -> None:
        """Advance all absolute times/seqs by a replayed span's deltas."""
        self.external.replay_shift(cycles, seqs)
        self.fpu.replay_shift(cycles, seqs)

    # ------------------------------------------------------------------
    def next_event_cycle(self, now: int) -> int:
        """Earliest timed event across the external memory and the FPU."""
        nxt = self.external.next_event_cycle(now)
        fpu = self.fpu.next_event_cycle(now)
        return fpu if fpu < nxt else nxt

    # ------------------------------------------------------------------
    @property
    def drained(self) -> bool:
        """True when nothing is in flight anywhere in the memory system."""
        return not self.external.in_flight and self.fpu.idle
