"""The memory system facade: output-bus acceptance, input-bus delivery.

This ties together the external memory (:mod:`repro.memory.external`),
the timed FPU (:mod:`repro.memory.fpu_timing`), and the two buses of the
paper's Figure 3 simulation setup.

Per simulated cycle the simulator calls, in order:

1. :meth:`MemorySystem.begin_cycle` — the *input bus* delivers at most one
   transfer of up to ``input_bus_width`` bytes, chosen by the return-bus
   priority of section 5 (demand loads/fetches, then FPU results, then
   instruction prefetches);
2. the frontend and back-end update (possibly generating new requests);
3. :meth:`MemorySystem.end_cycle` — the *output bus* accepts at most one
   new request, chosen by the memory-interface priority (instruction- or
   data-first, a configuration knob), skipping requests whose target
   cannot accept this cycle (e.g. a busy non-pipelined memory).

Request *sources* register with the system and are polled each acceptance
phase; this keeps back-pressure natural: a request that is not accepted
simply stays at the head of its source (the LAQ, the SAQ/SDQ pair, or the
frontend's fetch logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..core.scheduler import ProgressClock
from ..core.trace import NULL_TRACER, Tracer
from .external import ExternalMemory
from .fpu import FPU_BASE, FpuLatencies, is_fpu_address
from .fpu import TRIGGER_OPERATIONS as _FPUTRIGGER_OPERATIONS
from .fpu_timing import TimedFpu
from .requests import (
    RETURN_TIER_FPU_RESULT,
    MemoryRequest,
    RequestKind,
    RequestPriority,
    acceptance_order,
    return_tier,
)

__all__ = ["MemorySystem", "MemoryStats", "RequestSource"]


class RequestSource(Protocol):
    """Anything that can offer memory requests for acceptance."""

    def poll_requests(self, now: int) -> list[MemoryRequest]:
        """Candidate requests this cycle (each source usually offers 0-1)."""
        ...

    def notify_accepted(self, request: MemoryRequest, now: int) -> None:
        """Called when one of this source's candidates won arbitration."""
        ...


@dataclass
class MemoryStats:
    """Counters the analysis layer reports alongside cycle counts."""

    loads_accepted: int = 0
    stores_accepted: int = 0
    ifetch_demand_accepted: int = 0
    ifetch_prefetch_accepted: int = 0
    fpu_stores_accepted: int = 0
    fpu_loads_accepted: int = 0
    input_bus_busy_cycles: int = 0
    output_bus_busy_cycles: int = 0
    input_bus_bytes: int = 0
    acceptance_conflicts: int = 0  #: cycles where >1 candidate wanted the bus
    by_source_bytes: dict[str, int] = field(default_factory=dict)


class MemorySystem:
    """Arbitrates both buses and owns the external memory + timed FPU."""

    def __init__(
        self,
        access_time: int,
        pipelined: bool,
        input_bus_width: int,
        priority: RequestPriority,
        fpu_latencies: FpuLatencies | None = None,
        tracer: Tracer | None = None,
        clock: ProgressClock | None = None,
    ):
        if input_bus_width < 4:
            raise ValueError("input bus must be at least 4 bytes wide")
        clock = clock if clock is not None else ProgressClock()
        self._clock = clock
        self.external = ExternalMemory(access_time, pipelined, clock=clock)
        self.fpu = TimedFpu(
            fpu_latencies or FpuLatencies(), _FPUTRIGGER_OPERATIONS, clock=clock
        )
        self.input_bus_width = input_bus_width
        self.priority = priority
        self.stats = MemoryStats()
        self._sources: list[RequestSource] = []
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: candidate count of the most recent acceptance conflict (the
        #: skip scheduler replays per-idle-cycle conflict events with it)
        self.last_conflict_candidates = 0

    def register_source(self, source: RequestSource) -> None:
        self._sources.append(source)

    # ------------------------------------------------------------------
    # Input bus (deliveries) — call first each cycle
    # ------------------------------------------------------------------
    def begin_cycle(self, now: int) -> None:
        self.external.begin_cycle(now)
        self.fpu.begin_cycle(now)
        self._deliver_one(now)
        self.external.retire_finished(now)

    def _deliver_one(self, now: int) -> None:
        candidates: list[tuple[tuple, str, MemoryRequest]] = []
        for request in self.external.ready_requests(now):
            key = (return_tier(request), request.ready_at, request.seq)
            candidates.append((key, "external", request))
        fpu_load = self.fpu.deliverable_load(now)
        if fpu_load is not None:
            key = (RETURN_TIER_FPU_RESULT, fpu_load.accepted_at, fpu_load.seq)
            candidates.append((key, "fpu", fpu_load))
        if not candidates:
            return
        candidates.sort(key=lambda item: item[0])
        _key, target, request = candidates[0]
        if target == "fpu":
            offset = 0
            transferred = request.size
            if self._tracer.enabled:
                self._tracer.emit(
                    "mem",
                    "deliver",
                    source=target,
                    seq=request.seq,
                    offset=offset,
                    bytes=transferred,
                )
            self.fpu.deliver(now)
        else:
            offset = request.delivered_bytes
            transferred = min(self.input_bus_width, request.remaining_bytes)
            request.delivered_bytes += transferred
            if self._tracer.enabled:
                self._tracer.emit(
                    "mem",
                    "deliver",
                    source=target,
                    seq=request.seq,
                    offset=offset,
                    bytes=transferred,
                )
            if request.on_chunk is not None:
                request.on_chunk(offset, transferred, now)
        self.stats.input_bus_busy_cycles += 1
        self.stats.input_bus_bytes += transferred
        self._clock.ticks += 1

    # ------------------------------------------------------------------
    # Output bus (acceptances) — call last each cycle
    # ------------------------------------------------------------------
    def end_cycle(self, now: int) -> None:
        candidates: list[tuple[MemoryRequest, RequestSource]] = []
        for source in self._sources:
            for request in source.poll_requests(now):
                candidates.append((request, source))
        if not candidates:
            return
        if len(candidates) > 1:
            self.stats.acceptance_conflicts += 1
            self.last_conflict_candidates = len(candidates)
            if self._tracer.enabled:
                self._tracer.emit("mem", "conflict", candidates=len(candidates))
        candidates.sort(key=lambda item: acceptance_order(item[0], self.priority))
        for request, source in candidates:
            if self._try_accept(request, now):
                source.notify_accepted(request, now)
                self.stats.output_bus_busy_cycles += 1
                self._count_acceptance(request)
                if self._tracer.enabled:
                    self._tracer.emit(
                        "mem",
                        "accept",
                        kind=request.kind.value,
                        addr=request.address,
                        bytes=request.size,
                        demand=request.demand,
                        fpu=is_fpu_address(request.address),
                        seq=request.seq,
                    )
                return

    def _try_accept(self, request: MemoryRequest, now: int) -> bool:
        if is_fpu_address(request.address):
            if not self.fpu.can_accept(request, now):
                return False
            self.fpu.accept(request, now)
            return True
        if not self.external.can_accept(now):
            return False
        self.external.accept(request, now)
        return True

    def _count_acceptance(self, request: MemoryRequest) -> None:
        stats = self.stats
        if is_fpu_address(request.address):
            if request.kind == RequestKind.STORE:
                stats.fpu_stores_accepted += 1
            else:
                stats.fpu_loads_accepted += 1
            return
        if request.kind == RequestKind.LOAD:
            stats.loads_accepted += 1
        elif request.kind == RequestKind.STORE:
            stats.stores_accepted += 1
        elif request.demand:
            stats.ifetch_demand_accepted += 1
        else:
            stats.ifetch_prefetch_accepted += 1

    # ------------------------------------------------------------------
    # compiled-kernel lowering (repro.core.compiled)
    # ------------------------------------------------------------------
    @classmethod
    def emit_compiled_begin_cycle(cls, ctx) -> None:
        """Lower :meth:`begin_cycle` behind a memory-quiescence test.

        When nothing is in flight anywhere (no external requests, no FPU
        operations/results/result-loads), the whole phase reduces to
        clearing the external memory's per-cycle acceptance latch: the
        FPU drain loop, the delivery arbitration, and the retirement
        scan are all no-ops (retirement's ``in_flight = []`` rebind is
        value-identical and nothing holds a reference to the list).  Any
        in-flight work falls through to the real method.
        """
        ctx.need("external", "fpu", "memory_begin")
        with ctx.block(
            "if external.in_flight or fpu._ops_pending "
            "or fpu._results_ready or fpu._result_loads:"
        ):
            ctx.line("memory_begin(now)")
        with ctx.block("else:"):
            ctx.line("external._accepted_this_cycle = False")

    @classmethod
    def _emit_acceptance_bookkeeping(cls, ctx) -> None:
        """Post-acceptance counters + trace event, shared by both the
        single-candidate fast path and the conflict loop.  ``fpu_hit``
        holds ``is_fpu_address(request.address)`` (computed once)."""
        traced = ctx.spec.traced
        ctx.line("notify(request, now)")
        ctx.line("mem_stats.output_bus_busy_cycles += 1")
        ctx.line("kind = request.kind")
        with ctx.block("if fpu_hit:"):
            with ctx.block("if kind is K_STORE:"):
                ctx.line("mem_stats.fpu_stores_accepted += 1")
            with ctx.block("else:"):
                ctx.line("mem_stats.fpu_loads_accepted += 1")
        with ctx.block("else:"):
            with ctx.block("if kind is K_LOAD:"):
                ctx.line("mem_stats.loads_accepted += 1")
            with ctx.block("elif kind is K_STORE:"):
                ctx.line("mem_stats.stores_accepted += 1")
            with ctx.block("elif request.demand:"):
                ctx.line("mem_stats.ifetch_demand_accepted += 1")
            with ctx.block("else:"):
                ctx.line("mem_stats.ifetch_prefetch_accepted += 1")
        if traced:
            ctx.line(
                'tracer_emit("mem", "accept", kind=kind.value, '
                "addr=request.address, bytes=request.size, "
                "demand=request.demand, fpu=fpu_hit, seq=request.seq)"
            )

    @classmethod
    def emit_compiled_end_cycle(cls, ctx) -> None:
        """Lower :meth:`end_cycle` with both sources inlined.

        Source polls are guarded/prechecked only when the source's
        no-candidate case is provably side-effect free (the spec's
        ``poll_guard`` / ``engine_precheck`` flags); each source is
        still polled at most once per cycle, exactly like the
        reference.  The single-candidate case skips the sort and the
        conflict bookkeeping; the multi-candidate path mirrors the
        reference's stable sort (candidates are assembled in source
        registration order: frontend, then engine).  ``external``
        acceptance folds the ``pipelined`` literal from the spec.
        """
        spec = ctx.spec
        traced = spec.traced
        ctx.need(
            "memory",
            "mem_stats",
            "external",
            "engine_poll",
            "frontend_notify",
            "engine_notify",
            "external_accept",
            "fpu_can_accept",
            "fpu_accept",
        )
        if spec.poll_guard:
            with ctx.block(
                "if frontend._request is not None "
                "and not frontend._request_accepted:"
            ):
                if ctx.frontend_cls is not None:
                    ctx.frontend_cls.emit_compiled_poll(ctx)
                else:
                    ctx.need("frontend_poll")
                    ctx.line("f_reqs = frontend_poll(now)")
            with ctx.block("else:"):
                ctx.line("f_reqs = ()")
        else:
            ctx.need("frontend_poll")
            ctx.line("f_reqs = frontend_poll(now)")
        if spec.engine_precheck:
            ctx.need("laq_items", "saq_items", "sdq_items")
            with ctx.block("if laq_items or (saq_items and sdq_items):"):
                ctx.line("e_reqs = engine_poll(now)")
            with ctx.block("else:"):
                ctx.line("e_reqs = ()")
        else:
            ctx.line("e_reqs = engine_poll(now)")
        if spec.memory_pipelined:
            busy = "external._accepted_this_cycle"
        else:
            busy = "external._accepted_this_cycle or external.in_flight"
        with ctx.block("if f_reqs or e_reqs:"):
            ctx.line("n = len(f_reqs) + len(e_reqs)")
            with ctx.block("if n == 1:"):
                with ctx.block("if f_reqs:"):
                    ctx.line("request = f_reqs[0]")
                    ctx.line("notify = frontend_notify")
                with ctx.block("else:"):
                    ctx.line("request = e_reqs[0]")
                    ctx.line("notify = engine_notify")
                ctx.line("fpu_hit = _is_fpu(request.address)")
                ctx.line("accepted = False")
                with ctx.block("if fpu_hit:"):
                    with ctx.block("if fpu_can_accept(request, now):"):
                        ctx.line("fpu_accept(request, now)")
                        ctx.line("accepted = True")
                with ctx.block(f"elif not ({busy}):"):
                    ctx.line("external_accept(request, now)")
                    ctx.line("accepted = True")
                with ctx.block("if accepted:"):
                    cls._emit_acceptance_bookkeeping(ctx)
            with ctx.block("else:"):
                ctx.line("mem_stats.acceptance_conflicts += 1")
                ctx.line("memory.last_conflict_candidates = n")
                if traced:
                    ctx.line('tracer_emit("mem", "conflict", candidates=n)')
                ctx.line(
                    "cands = [(request, frontend_notify) for request in f_reqs]"
                )
                with ctx.block("for request in e_reqs:"):
                    ctx.line("cands.append((request, engine_notify))")
                ctx.line(
                    "cands.sort(key=lambda item: "
                    "_acc_order(item[0], _PRIORITY))"
                )
                with ctx.block("for request, notify in cands:"):
                    ctx.line("fpu_hit = _is_fpu(request.address)")
                    with ctx.block("if fpu_hit:"):
                        with ctx.block(
                            "if not fpu_can_accept(request, now):"
                        ):
                            ctx.line("continue")
                        ctx.line("fpu_accept(request, now)")
                    with ctx.block(f"elif {busy}:"):
                        ctx.line("continue")
                    with ctx.block("else:"):
                        ctx.line("external_accept(request, now)")
                    cls._emit_acceptance_bookkeeping(ctx)
                    ctx.line("break")

    # ------------------------------------------------------------------
    def state_signature(self, now: int, base_seq: int) -> tuple:
        """Combined fingerprint of the external memory and the timed FPU.

        The facade itself holds no timing state; ``_accepted_this_cycle``
        and ``last_conflict_candidates`` are always rewritten before
        their next read, so neither participates.
        """
        return (
            self.external.state_signature(now, base_seq),
            self.fpu.state_signature(now, base_seq),
        )

    def replay_shift(self, cycles: int, seqs: int) -> None:
        """Advance all absolute times/seqs by a replayed span's deltas."""
        self.external.replay_shift(cycles, seqs)
        self.fpu.replay_shift(cycles, seqs)

    # ------------------------------------------------------------------
    def next_event_cycle(self, now: int) -> int:
        """Earliest timed event across the external memory and the FPU."""
        nxt = self.external.next_event_cycle(now)
        fpu = self.fpu.next_event_cycle(now)
        return fpu if fpu < nxt else nxt

    # ------------------------------------------------------------------
    @property
    def drained(self) -> bool:
        """True when nothing is in flight anywhere in the memory system."""
        return not self.external.in_flight and self.fpu.idle
