"""Cycle-level timing wrapper for the off-chip FPU.

The semantic work (what the operations compute) is done functionally at
issue time by :class:`repro.memory.fpu.FpuCore` inside the data-queue
engine; this class models only *when* things happen:

* an operand store occupies the output bus for its acceptance cycle and
  latches immediately;
* a trigger store starts the operation; the unit is unpipelined, so an
  operation begins only when the previous one has finished, and completes
  ``latency(kind)`` cycles after it begins;
* a load from the result register completes when its operation's result
  is ready, and the 4-byte result then competes for the input bus at the
  "multiply results" priority tier (below demand loads, above instruction
  prefetches — paper section 5).

Results are picked up strictly in operation order, mirroring the
program-order discipline of the load data queue.
"""

from __future__ import annotations

from collections import deque

from ..core.scheduler import IDLE, ProgressClock
from .fpu import FPU_OPERAND_A, FPU_RESULT, FpuLatencies
from .requests import MemoryRequest, RequestKind

__all__ = ["TimedFpu"]


class TimedFpu:
    """Timing-only model of the memory-mapped floating-point chip."""

    def __init__(
        self,
        latencies: FpuLatencies,
        trigger_kinds,
        op_queue_capacity: int = 8,
        clock: ProgressClock | None = None,
    ):
        """``trigger_kinds`` maps trigger addresses to operation names
        (taken from :mod:`repro.memory.fpu` so the two models can never
        disagree about the address map)."""
        self.latencies = latencies
        self._trigger_kinds = dict(trigger_kinds)
        self.op_queue_capacity = op_queue_capacity
        #: completion times of operations not yet finished
        self._ops_pending: deque[int] = deque()
        #: results finished but not yet delivered (completion times)
        self._results_ready: deque[int] = deque()
        self._busy_until = 0
        #: outstanding result-load requests, oldest first
        self._result_loads: deque[MemoryRequest] = deque()
        self.operations_started = 0
        self.results_delivered = 0
        self._clock = clock if clock is not None else ProgressClock()

    # ------------------------------------------------------------------
    # Output-bus side
    # ------------------------------------------------------------------
    def can_accept(self, request: MemoryRequest, now: int) -> bool:
        if request.kind == RequestKind.STORE:
            if request.address == FPU_OPERAND_A:
                return True
            if request.address in self._trigger_kinds:
                return len(self._ops_pending) < self.op_queue_capacity
            return True
        if request.kind == RequestKind.LOAD:
            return request.address == FPU_RESULT
        return False

    def accept(self, request: MemoryRequest, now: int) -> None:
        request.accepted_at = now
        self._clock.ticks += 1
        if request.kind == RequestKind.STORE:
            kind = self._trigger_kinds.get(request.address)
            if kind is not None:
                start = max(now, self._busy_until)
                finish = start + self.latencies.latency(kind)
                self._busy_until = finish
                self._ops_pending.append(finish)
                self.operations_started += 1
            # Stores complete at acceptance (no return data).
            request.completed = True
            if request.on_complete is not None:
                request.on_complete(now)
            return
        if request.kind == RequestKind.LOAD:
            self._result_loads.append(request)
            return
        raise ValueError(f"FPU cannot service {request.kind}")

    # ------------------------------------------------------------------
    # Input-bus side
    # ------------------------------------------------------------------
    def begin_cycle(self, now: int) -> None:
        """Move finished operations to the ready-result FIFO."""
        while self._ops_pending and self._ops_pending[0] <= now:
            self._results_ready.append(self._ops_pending.popleft())
            self._clock.ticks += 1

    def deliverable_load(self, now: int) -> MemoryRequest | None:
        """The oldest result load whose result is ready, if any."""
        if self._result_loads and self._results_ready:
            return self._result_loads[0]
        return None

    def deliver(self, now: int) -> MemoryRequest:
        """Transfer one result over the input bus (caller won arbitration)."""
        request = self._result_loads.popleft()
        self._results_ready.popleft()
        request.delivered_bytes = request.size
        request.completed = True
        self.results_delivered += 1
        self._clock.ticks += 1
        if request.on_chunk is not None:
            request.on_chunk(0, request.size, now)
        if request.on_complete is not None:
            request.on_complete(now)
        return request

    # ------------------------------------------------------------------
    def state_signature(self, now: int, base_seq: int) -> tuple:
        """Operation/result pipeline shape with anchor-relative times.

        ``_busy_until`` in the past is normalised to ``None`` — the unit
        only ever compares it against ``now`` via ``max()``, so any stale
        value behaves identically.
        """
        return (
            tuple(finish - now for finish in self._ops_pending),
            len(self._results_ready),
            self._busy_until - now if self._busy_until > now else None,
            tuple(
                (
                    request.seq - base_seq,
                    None
                    if request.accepted_at is None
                    else request.accepted_at - now,
                )
                for request in self._result_loads
            ),
        )

    def replay_shift(self, cycles: int, seqs: int) -> None:
        """Advance all absolute times/seqs by a replayed span's deltas."""
        if self._ops_pending:
            self._ops_pending = deque(t + cycles for t in self._ops_pending)
        if self._results_ready:
            self._results_ready = deque(t + cycles for t in self._results_ready)
        self._busy_until += cycles
        for request in self._result_loads:
            if request.accepted_at is not None:
                request.accepted_at += cycles
            request.seq += seqs

    # ------------------------------------------------------------------
    # compiled-kernel lowering (repro.core.compiled)
    # ------------------------------------------------------------------
    @classmethod
    def emit_compiled_wake(cls, ctx) -> None:
        """Fold :meth:`next_event_cycle` into the idle-skip wake scan.

        ``_ops_pending`` is read through the owner because
        :meth:`replay_shift` rebinds the deque.
        """
        ctx.need("fpu")
        ctx.line("_ops = fpu._ops_pending")
        with ctx.block("if _ops and _ops[0] < wake:"):
            ctx.line("wake = _ops[0]")

    # ------------------------------------------------------------------
    def next_event_cycle(self, now: int) -> int:
        """Completion time of the oldest pending operation, else ``IDLE``.

        An operation finishing is the FPU's only timed event: it readies
        a result for delivery *and* frees an op-queue slot (which can
        unblock a trigger store waiting at output-bus arbitration).
        Ready results and queued result loads are event-woken — they
        only wait on input-bus arbitration or new acceptances.
        """
        if self._ops_pending:
            return self._ops_pending[0]
        return IDLE

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when no operation or result pickup is outstanding."""
        return not self._ops_pending and not self._results_ready and not self._result_loads
