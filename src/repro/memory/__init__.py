"""The external memory system.

Models the simulation setup of paper section 5 / Figure 3: a large
external cache with a 100% hit rate connected to the processor by an
input bus and an output bus, plus an off-chip floating-point unit
addressed as memory locations that shares the return (input) bus.
"""

from .fpu import (
    FPU_BASE,
    FPU_OPERAND_A,
    FPU_RESULT,
    FPU_TRIGGER_ADD,
    FPU_TRIGGER_DIV,
    FPU_TRIGGER_MUL,
    FPU_TRIGGER_SUB,
    FpuCore,
    FpuLatencies,
    bits_to_float,
    float_to_bits,
    float32_op,
    is_fpu_address,
)

__all__ = [
    "FPU_BASE",
    "FPU_OPERAND_A",
    "FPU_RESULT",
    "FPU_TRIGGER_ADD",
    "FPU_TRIGGER_DIV",
    "FPU_TRIGGER_MUL",
    "FPU_TRIGGER_SUB",
    "FpuCore",
    "FpuLatencies",
    "bits_to_float",
    "float_to_bits",
    "float32_op",
    "is_fpu_address",
]
