"""The off-chip floating-point unit, addressed as memory locations.

The paper (section 5): "The processor does not have an on-chip multiply
unit, making an external floating point chip necessary.  The floating
point unit is addressed as a memory location, so that a pair of data
stores to the appropriate locations will cause a multiply to occur.  The
number of clocks necessary to perform a floating point multiply is kept a
constant, and is set to 4 clock cycles."  Results share the return bus
with memory data, arbitrated below loads/stores and above instruction
prefetches.

Address map (all addresses are byte addresses on the output bus)::

    FPU_BASE + 0x00   OPERAND_A   write: latch operand A (float32 bits)
    FPU_BASE + 0x04   TRIGGER_ADD write: operand B; start A + B
    FPU_BASE + 0x08   TRIGGER_SUB write: operand B; start A - B
    FPU_BASE + 0x0C   TRIGGER_MUL write: operand B; start A * B
    FPU_BASE + 0x10   TRIGGER_DIV write: operand B; start A / B
    FPU_BASE + 0x20   RESULT      read: pop the oldest completed result

Results are delivered strictly in operation order (a FIFO), matching the
discipline of the architectural load data queue the program pops them
into.

This module holds the *semantic* core (:class:`FpuCore`): what the
operations compute and the address decoding.  The cycle-level timing
wrapper lives in :mod:`repro.memory.system`.
"""

from __future__ import annotations

import math
import struct
from collections import deque
from dataclasses import dataclass

__all__ = [
    "FPU_BASE",
    "FPU_OPERAND_A",
    "FPU_TRIGGER_ADD",
    "FPU_TRIGGER_SUB",
    "FPU_TRIGGER_MUL",
    "FPU_TRIGGER_DIV",
    "FPU_RESULT",
    "FPU_SIZE",
    "FpuCore",
    "FpuLatencies",
    "bits_to_float",
    "float_to_bits",
    "float32_op",
    "is_fpu_address",
]

#: Base byte address of the FPU's register window.  It sits above every
#: program image (images are capped below this address).
FPU_BASE = 0x0000F000

FPU_OPERAND_A = FPU_BASE + 0x00
FPU_TRIGGER_ADD = FPU_BASE + 0x04
FPU_TRIGGER_SUB = FPU_BASE + 0x08
FPU_TRIGGER_MUL = FPU_BASE + 0x0C
FPU_TRIGGER_DIV = FPU_BASE + 0x10
FPU_RESULT = FPU_BASE + 0x20

#: Size of the FPU's address window in bytes.
FPU_SIZE = 0x40

TRIGGER_OPERATIONS = {
    FPU_TRIGGER_ADD: "add",
    FPU_TRIGGER_SUB: "sub",
    FPU_TRIGGER_MUL: "mul",
    FPU_TRIGGER_DIV: "div",
}


def is_fpu_address(address: int) -> bool:
    """True if ``address`` falls in the FPU's register window."""
    return FPU_BASE <= address < FPU_BASE + FPU_SIZE


def bits_to_float(bits: int) -> float:
    """Reinterpret a 32-bit pattern as an IEEE-754 single."""
    return struct.unpack("<f", (bits & 0xFFFFFFFF).to_bytes(4, "little"))[0]


def float_to_bits(value: float) -> int:
    """Round a Python float to IEEE-754 single and return its bit pattern.

    Values too large for float32 become signed infinities, as IEEE
    round-to-nearest would produce.
    """
    try:
        packed = struct.pack("<f", value)
    except OverflowError:
        packed = struct.pack("<f", math.copysign(math.inf, value))
    return int.from_bytes(packed, "little")


def float32_op(kind: str, a_bits: int, b_bits: int) -> int:
    """Compute one FPU operation on float32 bit patterns.

    Division follows IEEE-754: x/0 is a signed infinity, 0/0 is NaN.
    The result is rounded to float32.
    """
    a = bits_to_float(a_bits)
    b = bits_to_float(b_bits)
    if kind == "add":
        result = a + b
    elif kind == "sub":
        result = a - b
    elif kind == "mul":
        result = a * b
    elif kind == "div":
        if b == 0.0:
            if a == 0.0 or math.isnan(a):
                result = math.nan
            else:
                sign = math.copysign(1.0, a) * math.copysign(1.0, b)
                result = math.copysign(math.inf, sign)
        else:
            result = a / b
    else:
        raise ValueError(f"unknown FPU operation {kind!r}")
    return float_to_bits(result)


@dataclass(frozen=True)
class FpuLatencies:
    """Operation latencies in processor clock cycles.

    The paper fixes multiply at 4 cycles; the other operations are not
    specified, so we default them to the same 4 cycles (divide longer,
    as on every real FPU of the era).
    """

    add: int = 4
    sub: int = 4
    mul: int = 4
    div: int = 12

    def latency(self, kind: str) -> int:
        return getattr(self, kind)


class FpuCore:
    """Semantic (untimed) model of the FPU's register window.

    Writes latch operand A or trigger an operation; triggered operations
    append their results to a FIFO; reading :data:`FPU_RESULT` pops the
    oldest result.  The cycle-level wrapper adds the latency and bus
    behaviour; the functional simulator uses this class directly.
    """

    def __init__(self) -> None:
        self._operand_a = 0
        self._results: deque[int] = deque()
        self.operations_started = 0
        self.last_operation: str | None = None

    def write(self, address: int, value: int) -> None:
        """Handle a store into the FPU window."""
        if address == FPU_OPERAND_A:
            self._operand_a = value & 0xFFFFFFFF
            return
        kind = TRIGGER_OPERATIONS.get(address)
        if kind is not None:
            self._results.append(float32_op(kind, self._operand_a, value))
            self.operations_started += 1
            self.last_operation = kind
            return
        raise ValueError(f"store to unmapped FPU address {address:#x}")

    def trigger_kind(self, address: int) -> str | None:
        """The operation a store to ``address`` would trigger, if any."""
        return TRIGGER_OPERATIONS.get(address)

    @property
    def results_pending(self) -> int:
        return len(self._results)

    def read_result(self) -> int:
        """Handle a load from the result register (pops the FIFO head)."""
        if not self._results:
            raise RuntimeError(
                "FPU result read with no completed operation pending"
            )
        return self._results.popleft()

    def read(self, address: int) -> int:
        """Handle a load from the FPU window."""
        if address == FPU_RESULT:
            return self.read_result()
        raise ValueError(f"load from unmapped FPU address {address:#x}")
