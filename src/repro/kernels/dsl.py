"""A small kernel description language for the Livermore Loops.

The paper's benchmark is the first 14 Lawrence Livermore Loops compiled
for PIPE (section 5).  We regenerate them with a tiny compiler instead of
hand-writing 14 assembly files: each kernel is described as statements
over arrays, named float constants, and loop-carried scalars, with array
indices that are *affine* in the loop variable (``mult * i + offset``) or
*indirect* through an integer index array (needed for the particle-in-cell
loops 13 and 14).

The DSL is deliberately no bigger than the loops require:

* expressions: array loads, constants, scalars, and the four FPU
  operations;
* statements: a store to an (affine or indirect) array element, or an
  update of a loop-carried scalar;
* one inner loop per kernel, iterating ``i = 0 .. iterations-1``.

Semantics are defined twice — by the code generator
(:mod:`repro.kernels.codegen`) and by a pure-Python float32-exact
interpreter (:mod:`repro.kernels.reference`) — and the test suite holds
them to bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Affine",
    "ArrayDecl",
    "BinOp",
    "ConstRef",
    "Expr",
    "Indirect",
    "Kernel",
    "Load",
    "LoadIndirect",
    "ScalarRef",
    "ScalarUpdate",
    "Statement",
    "Store",
    "add",
    "div",
    "mul",
    "sub",
]


@dataclass(frozen=True)
class Affine:
    """Element index ``mult * i + offset`` of the loop variable ``i``."""

    mult: int = 1
    offset: int = 0

    def __post_init__(self) -> None:
        if self.mult < 0:
            raise ValueError("negative index strides are not supported")

    def at(self, i: int) -> int:
        return self.mult * i + self.offset


@dataclass(frozen=True)
class Indirect:
    """Element index ``index_array[affine(i)] + offset`` (PIC loops)."""

    index_array: str
    index: Affine
    offset: int = 0


@dataclass(frozen=True)
class ArrayDecl:
    """A shared data array.

    ``kind`` is ``"float"`` (float32 data) or ``"int"`` (element indices
    for the indirect loops).  ``init`` supplies the initial contents;
    shorter inits are cycled to fill ``length``.
    """

    name: str
    length: int
    kind: str = "float"
    init: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in ("float", "int"):
            raise ValueError(f"array kind must be float or int, not {self.kind!r}")
        if self.length <= 0:
            raise ValueError("array length must be positive")

    def initial_values(self) -> list:
        if not self.init:
            return [0] * self.length
        values = []
        for position in range(self.length):
            values.append(self.init[position % len(self.init)])
        return values


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for float-valued expressions."""


@dataclass(frozen=True)
class Load(Expr):
    """A float array element, affine-indexed."""

    array: str
    index: Affine = field(default_factory=Affine)


@dataclass(frozen=True)
class LoadIndirect(Expr):
    """A float array element, indirectly indexed (``a[ix[...] + off]``)."""

    array: str
    pointer: Indirect


@dataclass(frozen=True)
class ConstRef(Expr):
    """A named float constant of the kernel."""

    name: str


@dataclass(frozen=True)
class ScalarRef(Expr):
    """A loop-carried scalar (held in a register across iterations)."""

    name: str


@dataclass(frozen=True)
class BinOp(Expr):
    """One FPU operation.  ``op`` is one of ``+ - * /``."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise ValueError(f"unknown FPU operation {self.op!r}")

    @property
    def commutative(self) -> bool:
        return self.op in ("+", "*")


# Convenience constructors so loop definitions read like the Fortran.
def add(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("+", lhs, rhs)


def sub(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("-", lhs, rhs)


def mul(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("*", lhs, rhs)


def div(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("/", lhs, rhs)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class Statement:
    """Base class for per-iteration statements."""


@dataclass(frozen=True)
class Store(Statement):
    """``array[index] = expr`` (index affine or indirect)."""

    array: str
    index: Affine | Indirect
    expr: Expr


@dataclass(frozen=True)
class ScalarUpdate(Statement):
    """``scalar = expr`` (the expression may reference the old value)."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class Kernel:
    """One Livermore loop: constants, scalars, and the loop body."""

    number: int
    name: str
    iterations: int
    statements: tuple[Statement, ...]
    consts: dict[str, float] = field(default_factory=dict)
    scalars: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ValueError("kernel must iterate at least once")
        if not self.statements:
            raise ValueError("kernel body is empty")

    @property
    def label(self) -> str:
        return f"ll{self.number}"

    # ------------------------------------------------------------------
    def referenced_arrays(self) -> set[str]:
        """Names of all arrays the kernel reads or writes."""
        names: set[str] = set()

        def walk(expr: Expr) -> None:
            if isinstance(expr, Load):
                names.add(expr.array)
            elif isinstance(expr, LoadIndirect):
                names.add(expr.array)
                names.add(expr.pointer.index_array)
            elif isinstance(expr, BinOp):
                walk(expr.lhs)
                walk(expr.rhs)

        for statement in self.statements:
            if isinstance(statement, Store):
                names.add(statement.array)
                if isinstance(statement.index, Indirect):
                    names.add(statement.index.index_array)
                walk(statement.expr)
            elif isinstance(statement, ScalarUpdate):
                walk(statement.expr)
        return names

    def max_element_index(self, array: str) -> int:
        """Largest affine element index the kernel can touch in ``array``.

        Indirect accesses are bounded by the index array's contents and
        are validated by the suite builder instead.
        """
        worst = -1

        def consider(name: str, index) -> None:
            nonlocal worst
            if name != array or not isinstance(index, Affine):
                return
            worst = max(worst, index.at(self.iterations - 1), index.at(0))

        def walk(expr: Expr) -> None:
            if isinstance(expr, Load):
                consider(expr.array, expr.index)
            elif isinstance(expr, LoadIndirect):
                consider(expr.pointer.index_array, expr.pointer.index)
            elif isinstance(expr, BinOp):
                walk(expr.lhs)
                walk(expr.rhs)

        for statement in self.statements:
            if isinstance(statement, Store):
                consider(statement.array, statement.index)
                if isinstance(statement.index, Indirect):
                    consider(statement.index.index_array, statement.index.index)
                walk(statement.expr)
            elif isinstance(statement, ScalarUpdate):
                walk(statement.expr)
        return worst
