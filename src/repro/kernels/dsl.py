"""A kernel description language for loop-nest workloads.

The paper's benchmark is the first 14 Lawrence Livermore Loops compiled
for PIPE (section 5).  We regenerate them with a tiny compiler instead of
hand-writing 14 assembly files: each kernel is described as statements
over arrays, named float constants, and loop-carried scalars, with array
indices that are *affine* in the loop variable (``mult * i + offset``) or
*indirect* through an integer index array (needed for the particle-in-cell
loops 13 and 14).

Beyond what the Livermore loops require, the DSL also expresses general
loop nests so that arbitrary generated workloads (stencils, reductions,
branchy control, pointer-chasing) compile to PIPE assembly:

* *float expressions*: array loads, constants, scalars, and the four FPU
  operations;
* *integer expressions* (:class:`IntExpr`): literals, loop variables,
  integer loop-carried scalars, loads from integer arrays, and the
  machine's ALU operations with exact 32-bit wrap-around semantics;
* *statements*: stores to (affine, indirect, or computed-index) array
  elements, float/integer scalar updates, bounded nested :class:`Loop`
  blocks over named index variables, and :class:`If` conditionals on
  integer expressions;
* every kernel still has an implicit outer loop ``i = 0 ..
  iterations-1``; :class:`Affine` indices refer to that ``i``, while
  nested loop variables are referenced by name via :class:`IndexRef`.

Kernels made only of the original constructs ("classic" kernels — see
:meth:`Kernel.is_classic`) compile through the original software-pipelined
code generator, byte-identical to before; anything using the extended
constructs takes the structured lowering path.

Semantics are defined twice — by the code generator
(:mod:`repro.kernels.codegen`) and by a pure-Python float32-exact
interpreter (:mod:`repro.kernels.reference`) — and the test suite holds
them to bit-identical results.  :func:`validate_kernel` rejects
malformed kernels (undeclared names, bad trip counts, out-of-range
indices) with named-kernel, named-statement diagnostics before either
semantics runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Affine",
    "ArrayDecl",
    "BinOp",
    "Computed",
    "ConstRef",
    "Expr",
    "If",
    "IndexRef",
    "Indirect",
    "IntBinOp",
    "IntConst",
    "IntExpr",
    "IntLoad",
    "IntScalarRef",
    "IntScalarUpdate",
    "IntStore",
    "Kernel",
    "KernelValidationError",
    "Load",
    "LoadIndirect",
    "Loop",
    "OUTER_LOOP_VAR",
    "ScalarRef",
    "ScalarUpdate",
    "Statement",
    "Store",
    "add",
    "div",
    "mul",
    "sub",
    "validate_kernel",
]

#: Name of the implicit outer loop variable every kernel iterates.
OUTER_LOOP_VAR = "i"


@dataclass(frozen=True)
class Affine:
    """Element index ``mult * i + offset`` of the loop variable ``i``."""

    mult: int = 1
    offset: int = 0

    def __post_init__(self) -> None:
        if self.mult < 0:
            raise ValueError("negative index strides are not supported")

    def at(self, i: int) -> int:
        return self.mult * i + self.offset


@dataclass(frozen=True)
class Indirect:
    """Element index ``index_array[affine(i)] + offset`` (PIC loops)."""

    index_array: str
    index: Affine
    offset: int = 0


@dataclass(frozen=True)
class Computed:
    """Element index computed by an arbitrary integer expression.

    The expression must evaluate to an in-range element index; the
    generator guarantees this by masking with ``length - 1`` of
    power-of-two arrays, and the reference interpreter rejects any
    violation at run time.
    """

    expr: "IntExpr"


@dataclass(frozen=True)
class ArrayDecl:
    """A shared data array.

    ``kind`` is ``"float"`` (float32 data) or ``"int"`` (element indices
    for the indirect loops).  ``init`` supplies the initial contents;
    shorter inits are cycled to fill ``length``.
    """

    name: str
    length: int
    kind: str = "float"
    init: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in ("float", "int"):
            raise ValueError(f"array kind must be float or int, not {self.kind!r}")
        if self.length <= 0:
            raise ValueError("array length must be positive")

    def initial_values(self) -> list:
        if not self.init:
            return [0] * self.length
        values = []
        for position in range(self.length):
            values.append(self.init[position % len(self.init)])
        return values


# ----------------------------------------------------------------------
# Integer expressions (loop variables, pointers, scalar arithmetic)
# ----------------------------------------------------------------------
class IntExpr:
    """Base class for integer-valued expressions.

    Integer semantics are the machine's: 32-bit unsigned wrap-around,
    shift counts masked to 5 bits, signed comparisons yielding 0/1 —
    the reference interpreter mirrors :mod:`repro.cpu.alu` exactly.
    """


@dataclass(frozen=True)
class IntConst(IntExpr):
    """A literal integer (must fit a signed 16-bit immediate)."""

    value: int

    def __post_init__(self) -> None:
        if not -0x8000 <= self.value <= 0x7FFF:
            raise ValueError(
                f"integer literal {self.value} does not fit a 16-bit "
                "signed immediate"
            )


@dataclass(frozen=True)
class IndexRef(IntExpr):
    """The current value of a loop variable (``i`` or a nested var)."""

    var: str = OUTER_LOOP_VAR


@dataclass(frozen=True)
class IntScalarRef(IntExpr):
    """An integer loop-carried scalar (held in a register)."""

    name: str


@dataclass(frozen=True)
class IntLoad(IntExpr):
    """An integer array element at a computed element index."""

    array: str
    index: IntExpr


#: Integer operations and the ALU mnemonic family each lowers to.
INT_OPS = ("+", "-", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<=")


@dataclass(frozen=True)
class IntBinOp(IntExpr):
    """One ALU operation.  Comparisons yield 0/1; ``<`` and ``<=`` are
    signed, matching ``slt``/``sle``."""

    op: str
    lhs: IntExpr
    rhs: IntExpr

    def __post_init__(self) -> None:
        if self.op not in INT_OPS:
            raise ValueError(f"unknown integer operation {self.op!r}")


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for float-valued expressions."""


@dataclass(frozen=True)
class Load(Expr):
    """A float array element, affine- or computed-indexed."""

    array: str
    index: Affine | Computed = field(default_factory=Affine)


@dataclass(frozen=True)
class LoadIndirect(Expr):
    """A float array element, indirectly indexed (``a[ix[...] + off]``)."""

    array: str
    pointer: Indirect


@dataclass(frozen=True)
class ConstRef(Expr):
    """A named float constant of the kernel."""

    name: str


@dataclass(frozen=True)
class ScalarRef(Expr):
    """A loop-carried scalar (held in a register across iterations)."""

    name: str


@dataclass(frozen=True)
class BinOp(Expr):
    """One FPU operation.  ``op`` is one of ``+ - * /``."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise ValueError(f"unknown FPU operation {self.op!r}")

    @property
    def commutative(self) -> bool:
        return self.op in ("+", "*")


# Convenience constructors so loop definitions read like the Fortran.
def add(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("+", lhs, rhs)


def sub(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("-", lhs, rhs)


def mul(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("*", lhs, rhs)


def div(lhs: Expr, rhs: Expr) -> BinOp:
    return BinOp("/", lhs, rhs)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class Statement:
    """Base class for per-iteration statements."""


@dataclass(frozen=True)
class Store(Statement):
    """``array[index] = expr`` (index affine, indirect, or computed)."""

    array: str
    index: Affine | Indirect | Computed
    expr: Expr


@dataclass(frozen=True)
class ScalarUpdate(Statement):
    """``scalar = expr`` (the expression may reference the old value)."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class IntScalarUpdate(Statement):
    """``int_scalar = int_expr`` (pointer chasing lives here)."""

    name: str
    expr: IntExpr


@dataclass(frozen=True)
class IntStore(Statement):
    """``int_array[index] = int_expr`` (index affine or computed)."""

    array: str
    index: Affine | Computed
    expr: IntExpr


@dataclass(frozen=True)
class Loop(Statement):
    """A bounded nested loop: ``for var in 0 .. trips-1: body``."""

    var: str
    trips: int
    body: tuple[Statement, ...]


@dataclass(frozen=True)
class If(Statement):
    """``if cond != 0: then else: orelse`` on an integer condition."""

    cond: IntExpr
    then: tuple[Statement, ...]
    orelse: tuple[Statement, ...] = ()


def _iter_statements(statements) -> "list[Statement]":
    """Flatten a statement tree, recursing into Loop/If blocks."""
    out: list[Statement] = []
    for statement in statements:
        out.append(statement)
        if isinstance(statement, Loop):
            out.extend(_iter_statements(statement.body))
        elif isinstance(statement, If):
            out.extend(_iter_statements(statement.then))
            out.extend(_iter_statements(statement.orelse))
    return out


def _walk_expr(expr, visit) -> None:
    """Call ``visit`` on ``expr`` and every sub-expression (float or int)."""
    visit(expr)
    if isinstance(expr, BinOp):
        _walk_expr(expr.lhs, visit)
        _walk_expr(expr.rhs, visit)
    elif isinstance(expr, IntBinOp):
        _walk_expr(expr.lhs, visit)
        _walk_expr(expr.rhs, visit)
    elif isinstance(expr, IntLoad):
        _walk_expr(expr.index, visit)
    elif isinstance(expr, Load) and isinstance(expr.index, Computed):
        _walk_expr(expr.index.expr, visit)
    elif isinstance(expr, LoadIndirect):
        pass  # Indirect carries no sub-expressions


def _statement_exprs(statement) -> "list":
    """Top-level expressions of one statement (not recursing into blocks)."""
    if isinstance(statement, Store):
        exprs = [statement.expr]
        if isinstance(statement.index, Computed):
            exprs.append(statement.index.expr)
        return exprs
    if isinstance(statement, IntStore):
        exprs = [statement.expr]
        if isinstance(statement.index, Computed):
            exprs.append(statement.index.expr)
        return exprs
    if isinstance(statement, (ScalarUpdate, IntScalarUpdate)):
        return [statement.expr]
    if isinstance(statement, If):
        return [statement.cond]
    return []


@dataclass(frozen=True)
class Kernel:
    """One kernel: constants, scalars, and the (possibly nested) body.

    The implicit outer loop iterates ``i = 0 .. iterations-1``; nested
    :class:`Loop` statements introduce further named index variables.
    """

    number: int
    name: str
    iterations: int
    statements: tuple[Statement, ...]
    consts: dict[str, float] = field(default_factory=dict)
    scalars: dict[str, float] = field(default_factory=dict)
    int_scalars: dict[str, int] = field(default_factory=dict)
    tag: str | None = None

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ValueError("kernel must iterate at least once")
        if not self.statements:
            raise ValueError("kernel body is empty")

    @property
    def label(self) -> str:
        return self.tag if self.tag is not None else f"ll{self.number}"

    # ------------------------------------------------------------------
    @property
    def is_classic(self) -> bool:
        """True if the kernel uses only the original Livermore subset.

        Classic kernels (straight-line Store/ScalarUpdate bodies over
        affine/indirect indices, no integer expressions) compile through
        the software-pipelined code generator exactly as before.
        """
        if self.int_scalars:
            return False
        for statement in _iter_statements(self.statements):
            if isinstance(statement, (Loop, If, IntStore, IntScalarUpdate)):
                return False
            if isinstance(statement, Store) and isinstance(
                statement.index, Computed
            ):
                return False
            for expr in _statement_exprs(statement):
                classic = [True]

                def check(node, classic=classic) -> None:
                    if isinstance(node, IntExpr):
                        classic[0] = False
                    elif isinstance(node, Load) and isinstance(
                        node.index, Computed
                    ):
                        classic[0] = False

                _walk_expr(expr, check)
                if not classic[0]:
                    return False
        return True

    def all_statements(self) -> "list[Statement]":
        """Every statement in the kernel, flattened across blocks."""
        return _iter_statements(self.statements)

    def referenced_arrays(self) -> set[str]:
        """Names of all arrays the kernel reads or writes."""
        names: set[str] = set()

        def visit(node) -> None:
            if isinstance(node, (Load, IntLoad)):
                names.add(node.array)
            elif isinstance(node, LoadIndirect):
                names.add(node.array)
                names.add(node.pointer.index_array)

        for statement in self.all_statements():
            if isinstance(statement, (Store, IntStore)):
                names.add(statement.array)
                if isinstance(statement.index, Indirect):
                    names.add(statement.index.index_array)
            for expr in _statement_exprs(statement):
                _walk_expr(expr, visit)
        return names

    def max_element_index(self, array: str) -> int:
        """Largest affine element index the kernel can touch in ``array``.

        Indirect and computed accesses are bounded dynamically (by the
        index array's contents / the generator's masking) and validated
        by :func:`validate_kernel` and the reference interpreter.
        """
        worst = -1

        def consider(name: str, index) -> None:
            nonlocal worst
            if name != array or not isinstance(index, Affine):
                return
            worst = max(worst, index.at(self.iterations - 1), index.at(0))

        def visit(node) -> None:
            if isinstance(node, Load):
                consider(node.array, node.index)
            elif isinstance(node, LoadIndirect):
                consider(node.pointer.index_array, node.pointer.index)

        for statement in self.all_statements():
            if isinstance(statement, (Store, IntStore)):
                consider(statement.array, statement.index)
                if isinstance(statement.index, Indirect):
                    consider(statement.index.index_array, statement.index.index)
            for expr in _statement_exprs(statement):
                _walk_expr(expr, visit)
        return worst


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class KernelValidationError(ValueError):
    """A kernel is malformed.

    The message always names the kernel and — for statement-level
    problems — the statement's path within the body (e.g.
    ``statements[2].then[0]``), so a failure in a 100-kernel generated
    suite points at the exact culprit.
    """


class _Validator:
    def __init__(self, kernel: Kernel, arrays: dict[str, ArrayDecl]):
        self.kernel = kernel
        self.arrays = arrays
        self.written_int_arrays: set[str] = set()

    def fail(self, path: str, message: str) -> None:
        raise KernelValidationError(
            f"kernel '{self.kernel.label}', {path}: {message}"
        )

    # -- declarations ---------------------------------------------------
    def check_array(self, path: str, name: str, kind: str) -> ArrayDecl:
        decl = self.arrays.get(name)
        if decl is None:
            self.fail(path, f"references undeclared array '{name}'")
        if decl.kind != kind:
            self.fail(
                path,
                f"array '{name}' is declared {decl.kind} but used as {kind}",
            )
        return decl

    def check_affine(self, path: str, name: str, index: Affine) -> None:
        decl = self.arrays.get(name)
        if decl is None:
            self.fail(path, f"references undeclared array '{name}'")
        worst = max(index.at(0), index.at(self.kernel.iterations - 1))
        if worst >= decl.length:
            self.fail(
                path,
                f"affine access {name}[{worst}] out of range "
                f"(array length {decl.length})",
            )

    def check_indirect(self, path: str, array: str, pointer: Indirect) -> None:
        target = self.check_array(path, array, kind="float")
        index_decl = self.check_array(path, pointer.index_array, kind="int")
        self.check_affine(path, pointer.index_array, pointer.index)
        if pointer.index_array in self.written_int_arrays:
            return  # contents are dynamic; the interpreter bounds-checks
        used = min(
            index_decl.length,
            max(
                pointer.index.at(0),
                pointer.index.at(self.kernel.iterations - 1),
            )
            + 1,
        )
        for value in index_decl.initial_values()[:used]:
            element = int(value) + pointer.offset
            if not 0 <= element < target.length:
                self.fail(
                    path,
                    f"out-of-range indirect index: {pointer.index_array} "
                    f"holds {int(value)}, so {array}[{element}] is outside "
                    f"the array's {target.length} elements",
                )

    # -- expressions ----------------------------------------------------
    def check_int_expr(self, path: str, expr: IntExpr, loop_vars: set[str]):
        if isinstance(expr, IntConst):
            return
        if isinstance(expr, IndexRef):
            if expr.var not in loop_vars:
                self.fail(
                    path,
                    f"references loop variable '{expr.var}' which is not "
                    f"in scope (visible: {sorted(loop_vars)})",
                )
            return
        if isinstance(expr, IntScalarRef):
            if expr.name not in self.kernel.int_scalars:
                self.fail(
                    path,
                    f"references undeclared integer scalar '{expr.name}'",
                )
            return
        if isinstance(expr, IntLoad):
            self.check_array(path, expr.array, kind="int")
            self.check_int_expr(path, expr.index, loop_vars)
            return
        if isinstance(expr, IntBinOp):
            self.check_int_expr(path, expr.lhs, loop_vars)
            self.check_int_expr(path, expr.rhs, loop_vars)
            return
        self.fail(path, f"unknown integer expression {expr!r}")

    def check_float_expr(self, path: str, expr: Expr, loop_vars: set[str]):
        if isinstance(expr, Load):
            if isinstance(expr.index, Computed):
                self.check_array(path, expr.array, kind="float")
                self.check_int_expr(path, expr.index.expr, loop_vars)
            else:
                self.check_array(path, expr.array, kind="float")
                self.check_affine(path, expr.array, expr.index)
            return
        if isinstance(expr, LoadIndirect):
            self.check_indirect(path, expr.array, expr.pointer)
            return
        if isinstance(expr, ConstRef):
            if expr.name not in self.kernel.consts:
                self.fail(
                    path, f"references undeclared constant '{expr.name}'"
                )
            return
        if isinstance(expr, ScalarRef):
            if expr.name not in self.kernel.scalars:
                self.fail(
                    path, f"references undeclared scalar '{expr.name}'"
                )
            return
        if isinstance(expr, BinOp):
            self.check_float_expr(path, expr.lhs, loop_vars)
            self.check_float_expr(path, expr.rhs, loop_vars)
            return
        self.fail(path, f"unknown float expression {expr!r}")

    # -- statements -----------------------------------------------------
    def check_block(self, prefix: str, statements, loop_vars: set[str]):
        for position, statement in enumerate(statements):
            path = f"{prefix}[{position}]"
            kind = type(statement).__name__
            if isinstance(statement, Store):
                where = f"{path} (Store to '{statement.array}')"
                self.check_array(where, statement.array, kind="float")
                if isinstance(statement.index, Affine):
                    self.check_affine(where, statement.array, statement.index)
                elif isinstance(statement.index, Indirect):
                    self.check_indirect(where, statement.array, statement.index)
                elif isinstance(statement.index, Computed):
                    self.check_int_expr(where, statement.index.expr, loop_vars)
                else:
                    self.fail(where, f"unknown index form {statement.index!r}")
                self.check_float_expr(where, statement.expr, loop_vars)
            elif isinstance(statement, IntStore):
                where = f"{path} (IntStore to '{statement.array}')"
                self.check_array(where, statement.array, kind="int")
                self.written_int_arrays.add(statement.array)
                if isinstance(statement.index, Affine):
                    self.check_affine(where, statement.array, statement.index)
                elif isinstance(statement.index, Computed):
                    self.check_int_expr(where, statement.index.expr, loop_vars)
                else:
                    self.fail(where, f"unknown index form {statement.index!r}")
                self.check_int_expr(where, statement.expr, loop_vars)
            elif isinstance(statement, ScalarUpdate):
                where = f"{path} (ScalarUpdate of '{statement.name}')"
                if statement.name not in self.kernel.scalars:
                    self.fail(
                        where,
                        f"updates undeclared scalar '{statement.name}'",
                    )
                self.check_float_expr(where, statement.expr, loop_vars)
            elif isinstance(statement, IntScalarUpdate):
                where = f"{path} (IntScalarUpdate of '{statement.name}')"
                if statement.name not in self.kernel.int_scalars:
                    self.fail(
                        where,
                        f"updates undeclared integer scalar '{statement.name}'",
                    )
                self.check_int_expr(where, statement.expr, loop_vars)
            elif isinstance(statement, Loop):
                where = f"{path} (Loop over '{statement.var}')"
                if not isinstance(statement.trips, int) or isinstance(
                    statement.trips, bool
                ):
                    self.fail(
                        where,
                        f"trip count must be an integer, got "
                        f"{statement.trips!r}",
                    )
                if statement.trips <= 0:
                    self.fail(
                        where,
                        f"trip count must be positive, got {statement.trips}",
                    )
                if statement.var in loop_vars:
                    self.fail(
                        where,
                        f"loop variable '{statement.var}' shadows an "
                        "enclosing loop variable",
                    )
                if not statement.body:
                    self.fail(where, "loop body is empty")
                self.check_block(
                    f"{path}.body",
                    statement.body,
                    loop_vars | {statement.var},
                )
            elif isinstance(statement, If):
                where = f"{path} (If)"
                self.check_int_expr(where, statement.cond, loop_vars)
                if not statement.then and not statement.orelse:
                    self.fail(where, "both branches are empty")
                self.check_block(f"{path}.then", statement.then, loop_vars)
                self.check_block(f"{path}.orelse", statement.orelse, loop_vars)
            else:
                self.fail(path, f"unknown statement type {kind}")


def validate_kernel(kernel: Kernel, arrays) -> None:
    """Validate ``kernel`` against ``arrays`` (a list of declarations
    or a name → :class:`ArrayDecl` mapping).

    Raises :class:`KernelValidationError` — a :class:`ValueError`
    subclass whose message names the kernel and the offending statement
    — for undeclared arrays/constants/scalars, unknown loop variables,
    zero or negative trip counts, empty bodies, out-of-range affine
    accesses, and statically out-of-range indirect indices.
    """
    if not isinstance(arrays, dict):
        arrays = {decl.name: decl for decl in arrays}
    overlap = set(kernel.scalars) & set(kernel.int_scalars)
    if overlap:
        raise KernelValidationError(
            f"kernel '{kernel.label}', declarations: names "
            f"{sorted(overlap)} are both float and integer scalars"
        )
    validator = _Validator(kernel, arrays)
    # First pass records which int arrays the kernel writes (their
    # contents become dynamic, so indirect accesses through them are
    # bounds-checked by the interpreter instead of statically).
    for statement in kernel.all_statements():
        if isinstance(statement, IntStore):
            validator.written_int_arrays.add(statement.array)
    validator.check_block("statements", kernel.statements, {OUTER_LOOP_VAR})
