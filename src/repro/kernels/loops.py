"""The first 14 Lawrence Livermore Loops, in the kernel DSL.

The paper's benchmark (section 5) is the first 14 Livermore loops
compiled as one program, executing 150,575 instructions in total, with
the inner-loop code footprints of Table I.  We reproduce the loops'
arithmetic structure — the mix of affine and strided array accesses,
loop-carried recurrences, long equation-of-state expressions, and the
indirect (particle-in-cell) accesses of loops 13/14 — scaled to a shared
data segment that fits the PIPE address space (array bases must fit in
15-bit displacements).

Where the original kernel has nested or irregular control (the ICCG
halving passes of LL2, the triangular loop of LL6, the multi-phase PIC
loops), we use the standard single-inner-loop restriction with the same
per-iteration memory and FPU behaviour; DESIGN.md records this
substitution.  Iteration counts are calibrated so that the assembled
program executes on the order of the paper's 150k instructions and each
inner loop's byte size lands near its Table I row.

All loops share the global arrays (``x``, ``y``, ``z``, ...) exactly as
the original Fortran program shares its COMMON block, so each loop reads
whatever state earlier loops left behind — the reference interpreter
replays the same order, keeping validation bit-exact.
"""

from __future__ import annotations

from .dsl import (
    Affine,
    ArrayDecl,
    ConstRef,
    Indirect,
    Kernel,
    Load,
    LoadIndirect,
    ScalarRef,
    ScalarUpdate,
    Store,
    add,
    mul,
    sub,
)

__all__ = [
    "PAPER_INNER_LOOP_BYTES",
    "PAPER_TOTAL_INSTRUCTIONS",
    "make_kernels",
    "make_shared_arrays",
]

#: Table I — "Inner Loops sizes" (bytes), for comparison reports.
PAPER_INNER_LOOP_BYTES: dict[int, int] = {
    1: 116, 2: 204, 3: 64, 4: 80, 5: 76, 6: 72, 7: 288,
    8: 732, 9: 272, 10: 260, 11: 56, 12: 56, 13: 328, 14: 224,
}

#: Section 5 — instructions executed in one run of the benchmark program.
PAPER_TOTAL_INSTRUCTIONS = 150_575


# ----------------------------------------------------------------------
# Deterministic data initialisation
# ----------------------------------------------------------------------
class _Lcg:
    """A tiny deterministic generator for initial array contents."""

    def __init__(self, seed: int):
        self.state = seed & 0x7FFFFFFF

    def next_float(self, low: float, high: float) -> float:
        self.state = (1103515245 * self.state + 12345) & 0x7FFFFFFF
        return low + (self.state / 0x7FFFFFFF) * (high - low)

    def next_int(self, low: int, high: int) -> int:
        self.state = (1103515245 * self.state + 12345) & 0x7FFFFFFF
        return low + self.state % (high - low + 1)


# Array dimensions.  VEC covers the 1-D loops; PX_COLS×PX_ROWS covers the
# 13-column prediction tables of LL9/LL10; GRID covers the PIC loops.
VEC = 704
U_LEN = 400
PX_COLS = 13
PX_ROWS = 130
PX_LEN = PX_COLS * PX_ROWS + PX_COLS
GRID = 256


def make_shared_arrays(seed: int = 20260707) -> list[ArrayDecl]:
    """The shared data segment (the Fortran COMMON block analogue)."""
    rng = _Lcg(seed)

    def floats(count: int, low: float = 0.01, high: float = 0.99) -> tuple:
        return tuple(rng.next_float(low, high) for _ in range(count))

    # Particle "cells": indices into the GRID-sized arrays, leaving room
    # for the +1 neighbour accesses of LL13/LL14.
    indices = tuple(rng.next_int(0, GRID - 2) for _ in range(GRID))
    return [
        ArrayDecl("x", VEC, "float", floats(VEC)),
        ArrayDecl("y", VEC, "float", floats(VEC)),
        ArrayDecl("z", VEC, "float", floats(VEC)),
        ArrayDecl("u", U_LEN, "float", floats(U_LEN)),
        ArrayDecl("v", VEC, "float", floats(VEC)),
        ArrayDecl("w", VEC, "float", floats(VEC)),
        ArrayDecl("px", PX_LEN, "float", floats(PX_LEN)),
        ArrayDecl("ex", GRID, "float", floats(GRID)),
        ArrayDecl("rh", GRID, "float", floats(GRID)),
        ArrayDecl("vx", GRID, "float", floats(GRID, 0.01, 0.2)),
        ArrayDecl("xx", GRID, "float", floats(GRID, 0.01, 0.2)),
        ArrayDecl("ix", GRID, "int", indices),
    ]


# ----------------------------------------------------------------------
# Kernel definitions
# ----------------------------------------------------------------------
def _i(offset: int = 0, mult: int = 1) -> Affine:
    return Affine(mult=mult, offset=offset)


def make_kernels(scale: float = 1.0) -> list[Kernel]:
    """The 14 kernels, iteration counts scaled by ``scale``.

    ``scale=1.0`` gives the calibrated benchmark; smaller scales make
    fast test suites.
    """

    def n(iterations: int) -> int:
        return max(2, round(iterations * scale))

    kernels: list[Kernel] = []

    # LL1 — hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])
    kernels.append(
        Kernel(
            number=1,
            name="hydro fragment",
            iterations=n(374),
            consts={"q": 0.5, "r": 0.21, "t": 0.0372},
            statements=(
                Store(
                    "x",
                    _i(),
                    add(
                        ConstRef("q"),
                        mul(
                            Load("y", _i()),
                            add(
                                mul(ConstRef("r"), Load("z", _i(10))),
                                mul(ConstRef("t"), Load("z", _i(11))),
                            ),
                        ),
                    ),
                ),
            ),
        )
    )

    # LL2 — ICCG excerpt (one halving pass, stride-2 gather):
    # x[i] = z[i] - v[2i]*x[2i+1] - v[2i+1]*x[2i+2]
    kernels.append(
        Kernel(
            number=2,
            name="ICCG excerpt",
            iterations=n(304),
            statements=(
                Store(
                    "x",
                    _i(),
                    sub(
                        sub(
                            Load("z", _i()),
                            mul(Load("v", _i(0, 2)), Load("x", _i(1, 2))),
                        ),
                        mul(Load("v", _i(1, 2)), Load("x", _i(2, 2))),
                    ),
                ),
            ),
        )
    )

    # LL3 — inner product: q += z[k]*x[k]
    kernels.append(
        Kernel(
            number=3,
            name="inner product",
            iterations=n(702),
            scalars={"q3": 0.0},
            statements=(
                ScalarUpdate(
                    "q3", add(ScalarRef("q3"), mul(Load("z", _i()), Load("x", _i())))
                ),
            ),
        )
    )

    # LL4 — banded linear equations (band update):
    # x[i] = x[i] - y[i]*x[i+5]
    kernels.append(
        Kernel(
            number=4,
            name="banded linear equations",
            iterations=n(655),
            statements=(
                Store(
                    "x",
                    _i(),
                    sub(Load("x", _i()), mul(Load("y", _i()), Load("x", _i(5)))),
                ),
            ),
        )
    )

    # LL5 — tri-diagonal elimination, below diagonal (true recurrence):
    # x[i+1] = z[i+1]*(y[i+1] - x[i])
    kernels.append(
        Kernel(
            number=5,
            name="tri-diagonal elimination",
            iterations=n(655),
            statements=(
                Store(
                    "x",
                    _i(1),
                    mul(Load("z", _i(1)), sub(Load("y", _i(1)), Load("x", _i()))),
                ),
            ),
        )
    )

    # LL6 — general linear recurrence equations (inner step):
    # w[i+1] = w[i+1] + y[i]*w[i]
    kernels.append(
        Kernel(
            number=6,
            name="general linear recurrence",
            iterations=n(655),
            statements=(
                Store(
                    "w",
                    _i(1),
                    add(Load("w", _i(1)), mul(Load("y", _i()), Load("w", _i()))),
                ),
            ),
        )
    )

    # LL7 — equation of state fragment (the long expression):
    # x[k] = u[k] + r*(z[k] + r*y[k])
    #      + t*(u[k+3] + r*(u[k+2] + r*u[k+1])
    #           + t*(u[k+6] + q*(u[k+5] + q*u[k+4])))
    r, t, q = ConstRef("r"), ConstRef("t"), ConstRef("q")
    kernels.append(
        Kernel(
            number=7,
            name="equation of state fragment",
            iterations=n(129),
            consts={"r": 0.48, "t": 0.37, "q": 0.25},
            statements=(
                Store(
                    "x",
                    _i(),
                    add(
                        add(
                            Load("u", _i()),
                            mul(r, add(Load("z", _i()), mul(r, Load("y", _i())))),
                        ),
                        mul(
                            t,
                            add(
                                add(
                                    Load("u", _i(3)),
                                    mul(
                                        r,
                                        add(Load("u", _i(2)), mul(r, Load("u", _i(1)))),
                                    ),
                                ),
                                mul(
                                    t,
                                    add(
                                        Load("u", _i(6)),
                                        mul(
                                            q,
                                            add(
                                                Load("u", _i(5)),
                                                mul(q, Load("u", _i(4))),
                                            ),
                                        ),
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        )
    )

    # LL8 — ADI integration: three plane updates per point.  Plane 2 of
    # each field lives at offset P within the same array.
    P = 320
    a11, a12, a13 = ConstRef("a11"), ConstRef("a12"), ConstRef("a13")
    a21, a22, a23 = ConstRef("a21"), ConstRef("a22"), ConstRef("a23")
    a31, a32, a33 = ConstRef("a31"), ConstRef("a32"), ConstRef("a33")
    sig = ConstRef("sig")

    def du(array: str):
        return sub(Load(array, _i(2)), Load(array, _i()))

    kernels.append(
        Kernel(
            number=8,
            name="ADI integration",
            iterations=n(64),
            consts={
                "a11": 0.032, "a12": 0.051, "a13": 0.019,
                "a21": 0.041, "a22": 0.026, "a23": 0.061,
                "a31": 0.024, "a32": 0.045, "a33": 0.037,
                "sig": 0.5,
            },
            statements=(
                Store(
                    "u",
                    _i(P + 1),
                    add(
                        add(
                            add(Load("u", _i(1)), mul(a11, du("u"))),
                            add(mul(a12, du("v")), mul(a13, du("w"))),
                        ),
                        mul(
                            sig,
                            sub(
                                Load("u", _i(2)),
                                add(Load("u", _i(1)), Load("u", _i())),
                            ),
                        ),
                    ),
                ),
                Store(
                    "v",
                    _i(P + 1),
                    add(
                        add(Load("v", _i(1)), mul(a21, du("u"))),
                        add(mul(a22, du("v")), mul(a23, du("w"))),
                    ),
                ),
                Store(
                    "w",
                    _i(P + 1),
                    add(
                        add(Load("w", _i(1)), mul(a31, du("u"))),
                        add(mul(a32, du("v")), mul(a33, du("w"))),
                    ),
                ),
            ),
        )
    )

    # LL9 — integrate predictors (one row of the 13-column table):
    # px[13i] = dm28*px[13i+12] + dm27*px[13i+11] + dm26*px[13i+10]
    #         + c0*(px[13i+4] + px[13i+5]) + px[13i+2]
    def col(k: int) -> Load:
        return Load("px", _i(k, PX_COLS))

    kernels.append(
        Kernel(
            number=9,
            name="integrate predictors",
            iterations=n(129),
            consts={"dm26": 0.058, "dm27": 0.037, "dm28": 0.026, "c0": 0.183},
            statements=(
                Store(
                    "px",
                    _i(0, PX_COLS),
                    add(
                        add(
                            add(
                                mul(ConstRef("dm28"), col(12)),
                                mul(ConstRef("dm27"), col(11)),
                            ),
                            add(
                                mul(ConstRef("dm26"), col(10)),
                                mul(ConstRef("c0"), add(col(4), col(5))),
                            ),
                        ),
                        col(2),
                    ),
                ),
            ),
        )
    )

    # LL10 — difference predictors (rolling differences down a row).
    # Column 10 plays the part of the cx input column.
    kernels.append(
        Kernel(
            number=10,
            name="difference predictors",
            iterations=n(129),
            scalars={"ar": 0.0, "br": 0.0},
            statements=(
                ScalarUpdate("ar", col(10)),
                ScalarUpdate("br", sub(ScalarRef("ar"), col(4))),
                Store("px", _i(4, PX_COLS), ScalarRef("ar")),
                ScalarUpdate("ar", sub(ScalarRef("br"), col(5))),
                Store("px", _i(5, PX_COLS), ScalarRef("br")),
                ScalarUpdate("br", sub(ScalarRef("ar"), col(6))),
                Store("px", _i(6, PX_COLS), ScalarRef("ar")),
                ScalarUpdate("ar", sub(ScalarRef("br"), col(7))),
                Store("px", _i(7, PX_COLS), ScalarRef("br")),
                Store("px", _i(8, PX_COLS), ScalarRef("ar")),
            ),
        )
    )

    # LL11 — first sum (prefix sum recurrence): x[i+1] = x[i] + y[i+1]
    kernels.append(
        Kernel(
            number=11,
            name="first sum",
            iterations=n(702),
            statements=(
                Store("x", _i(1), add(Load("x", _i()), Load("y", _i(1)))),
            ),
        )
    )

    # LL12 — first difference: x[i] = y[i+1] - y[i]
    kernels.append(
        Kernel(
            number=12,
            name="first difference",
            iterations=n(702),
            statements=(
                Store("x", _i(), sub(Load("y", _i(1)), Load("y", _i()))),
            ),
        )
    )

    # LL13 — 2-D particle in cell: gather from the field at the particle's
    # cell, advance the particle, scatter charge back to the grid.
    cell = Indirect("ix", _i())
    cell1 = Indirect("ix", _i(), offset=1)
    kernels.append(
        Kernel(
            number=13,
            name="2-D particle in cell",
            iterations=n(175),
            consts={"flx": 0.017},
            statements=(
                Store(
                    "vx", _i(), add(Load("vx", _i()), LoadIndirect("ex", cell))
                ),
                Store(
                    "xx",
                    _i(),
                    add(Load("xx", _i()), mul(Load("vx", _i()), ConstRef("flx"))),
                ),
                Store(
                    "rh", cell, add(LoadIndirect("rh", cell), Load("vx", _i()))
                ),
                Store(
                    "rh", cell1, add(LoadIndirect("rh", cell1), Load("xx", _i()))
                ),
            ),
        )
    )

    # LL14 — 1-D particle in cell: gather, push, deposit.
    kernels.append(
        Kernel(
            number=14,
            name="1-D particle in cell",
            iterations=n(234),
            consts={"flx": 0.023},
            statements=(
                Store(
                    "vx", _i(), add(Load("vx", _i()), LoadIndirect("ex", cell))
                ),
                Store(
                    "xx",
                    _i(),
                    add(Load("xx", _i()), mul(Load("vx", _i()), ConstRef("flx"))),
                ),
                Store("rh", cell, add(LoadIndirect("rh", cell), ConstRef("flx"))),
            ),
        )
    )

    return kernels
