"""Seeded random well-formed kernel generation.

Every workload this module emits is simultaneously a new scenario for
the paper's fetch-strategy comparison and a differential fuzz test of
the engine ladder: the generated kernel compiles through
:class:`~repro.kernels.codegen.StructuredCompiler` to a real PIPE
program *and* executes in the float32-exact reference interpreter, and
the two must agree bit-for-bit.

Design rules:

* **Pure-hash randomness.**  All choices derive from a splitmix64
  stream (:class:`HashRand`) seeded by the caller — no ``random``
  module, no global state, no platform dependence.  The same seed and
  budget always produce the same kernel, byte for byte.
* **Well-formed by construction.**  Array lengths are powers of two and
  every computed (data-dependent) element index is masked with
  ``length - 1`` at the top level, so pointer-chasing accesses are
  in-bounds no matter what values the chased cells hold.  Affine
  accesses are bounded by choosing iteration counts against the array
  length.  Indirect (classic-style) accesses go through a read-only
  index array whose initial contents are in-range by construction and
  which the generator never writes.
* **Fits the structured compiler's register budget.**  The generator
  keeps loop depth + scalar counts inside the six-register pool and
  estimates expression scratch pressure with the same accounting the
  compiler uses; if a candidate still fails to compile or validate, it
  deterministically retries with a smaller shape derived from the same
  seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .codegen import CompileError, compile_kernel
from .dsl import (
    Affine,
    ArrayDecl,
    BinOp,
    Computed,
    ConstRef,
    Expr,
    If,
    IndexRef,
    Indirect,
    IntBinOp,
    IntConst,
    IntExpr,
    IntLoad,
    IntScalarRef,
    IntScalarUpdate,
    IntStore,
    Kernel,
    KernelValidationError,
    Load,
    LoadIndirect,
    Loop,
    OUTER_LOOP_VAR,
    ScalarRef,
    ScalarUpdate,
    Statement,
    Store,
    validate_kernel,
)

__all__ = [
    "BUDGETS",
    "GeneratedWorkload",
    "HashRand",
    "ShapeBudget",
    "generate_workload",
]

_MASK64 = 0xFFFFFFFFFFFFFFFF


class HashRand:
    """A splitmix64 stream: tiny, fast, and fully deterministic.

    Used instead of :mod:`random` so generated kernels are stable
    across Python versions and immune to global-state leakage.
    """

    def __init__(self, seed: int):
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        return low + self.next_u64() % (high - low + 1)

    def choice(self, items):
        return items[self.next_u64() % len(items)]

    def weighted(self, pairs):
        """Pick from ``[(item, weight), ...]`` by integer weights."""
        total = sum(weight for _, weight in pairs)
        point = self.next_u64() % total
        for item, weight in pairs:
            if point < weight:
                return item
            point -= weight
        raise AssertionError("unreachable")  # pragma: no cover

    def chance(self, numerator: int, denominator: int) -> bool:
        return self.next_u64() % denominator < numerator

    def f32_small(self) -> float:
        """A small exact binary fraction (representable in float32)."""
        mantissa = self.randint(1, 255)
        exponent = self.randint(-4, 2)
        sign = -1.0 if self.chance(1, 4) else 1.0
        return sign * mantissa * (2.0**exponent) / 16.0


@dataclass(frozen=True)
class ShapeBudget:
    """Size/shape envelope one generated kernel is sampled from.

    All bounds are inclusive.  ``float_array_length`` and
    ``int_array_length`` must be powers of two (computed indices are
    masked with ``length - 1``).
    """

    name: str
    max_outer_iterations: int = 10  #: outer trip count in [2, this]
    max_loop_depth: int = 2  #: 1 = outer loop only
    max_trips: int = 5  #: nested-loop trip counts in [2, this]
    max_block_statements: int = 4  #: per block (body of kernel/loop/if)
    max_total_statements: int = 12  #: whole-kernel statement budget
    max_float_expr_depth: int = 2  #: BinOp nesting
    max_int_expr_depth: int = 2  #: IntBinOp nesting below the mask
    num_float_arrays: int = 3
    num_int_arrays: int = 2
    float_array_length: int = 64
    int_array_length: int = 16
    max_consts: int = 2
    max_float_scalars: int = 1
    max_int_scalars: int = 1

    def __post_init__(self) -> None:
        for length in (self.float_array_length, self.int_array_length):
            if length & (length - 1):
                raise ValueError(f"array length {length} is not a power of two")


#: Named budgets for the CLI / CI.  "default" is the fuzzing workhorse;
#: "tiny" keeps programs small enough for per-seed trace comparison in
#: tier-1; "deep" stresses nesting and expression pressure.
BUDGETS = {
    "tiny": ShapeBudget(
        name="tiny",
        max_outer_iterations=6,
        max_loop_depth=2,
        max_trips=3,
        max_block_statements=3,
        max_total_statements=7,
        num_float_arrays=2,
        num_int_arrays=1,
        float_array_length=32,
        int_array_length=8,
    ),
    "default": ShapeBudget(name="default"),
    "deep": ShapeBudget(
        name="deep",
        max_outer_iterations=8,
        max_loop_depth=3,
        max_trips=4,
        max_block_statements=3,
        max_total_statements=16,
        max_float_expr_depth=3,
        num_float_arrays=4,
        num_int_arrays=2,
    ),
}


@dataclass(frozen=True)
class GeneratedWorkload:
    """One generated kernel plus the array declarations it runs over."""

    seed: int
    budget: str
    kernel: Kernel
    arrays: tuple[ArrayDecl, ...]


class _KernelBuilder:
    """Samples one kernel from a budget using a HashRand stream."""

    def __init__(self, rand: HashRand, budget: ShapeBudget):
        self.rand = rand
        self.budget = budget
        self.statements_left = budget.max_total_statements

        # ---- declarations ------------------------------------------------
        self.float_arrays = [f"fa{n}" for n in range(budget.num_float_arrays)]
        self.int_arrays = [f"ia{n}" for n in range(budget.num_int_arrays)]
        #: read-only in-range index array for classic indirect accesses
        self.index_array = "idx"
        self.float_mask = budget.float_array_length - 1
        self.int_mask = budget.int_array_length - 1

        self.consts = {
            f"c{n}": rand.f32_small()
            for n in range(rand.randint(1, budget.max_consts))
        }
        self.scalars = {
            f"s{n}": rand.f32_small()
            for n in range(rand.randint(0, budget.max_float_scalars))
        }
        self.int_scalars = {
            f"k{n}": rand.randint(0, self.float_mask)
            for n in range(rand.randint(0, budget.max_int_scalars))
        }
        self.iterations = rand.randint(2, budget.max_outer_iterations)

        # The structured compiler's pool is six registers; the outer
        # variable, nested variables, and every scalar each take one,
        # and at least three must remain as scratch for the deepest
        # expression shapes the budget allows.
        self.register_slack = 6 - 3 - 1  # pool - scratch floor - outer var
        self.register_slack -= len(self.scalars) + len(self.int_scalars)
        self.loop_counter = 0

    # ------------------------------------------------------------------
    # Integer expressions
    # ------------------------------------------------------------------
    def _int_leaf(self, loop_vars: list[str]) -> IntExpr:
        options = [(IndexRef(self.rand.choice(loop_vars)), 4)]
        options.append((IntConst(self.rand.randint(0, 7)), 2))
        if self.int_scalars:
            options.append(
                (IntScalarRef(self.rand.choice(sorted(self.int_scalars))), 3)
            )
        return self.rand.weighted(options)

    def _int_expr(self, loop_vars: list[str], depth: int) -> IntExpr:
        if depth <= 0 or self.rand.chance(1, 3):
            return self._int_leaf(loop_vars)
        op = self.rand.choice(("+", "-", "&", "|", "^", "<<", ">>"))
        if self.rand.chance(1, 2):
            rhs: IntExpr = IntConst(self.rand.randint(0, 7))
        else:
            rhs = self._int_leaf(loop_vars)
        lhs = self._int_expr(loop_vars, depth - 1)
        return IntBinOp(op, lhs, rhs)

    def _masked_index(self, loop_vars: list[str], mask: int) -> Computed:
        """A computed element index, masked in-bounds by construction."""
        inner = self._int_expr(loop_vars, self.budget.max_int_expr_depth)
        if self.rand.chance(1, 4):
            # pointer-chase: index through an int array, then mask
            inner = IntLoad(
                self.rand.choice(self.int_arrays + [self.index_array]),
                IntBinOp("&", inner, IntConst(self.int_mask)),
            )
        return Computed(IntBinOp("&", inner, IntConst(mask)))

    def _condition(self, loop_vars: list[str]) -> IntExpr:
        op = self.rand.choice(("==", "!=", "<", "<="))
        lhs = self._int_expr(loop_vars, 1)
        rhs = IntConst(self.rand.randint(0, self.iterations))
        return IntBinOp(op, lhs, rhs)

    # ------------------------------------------------------------------
    # Float expressions
    # ------------------------------------------------------------------
    def _affine(self) -> Affine:
        mult = self.rand.weighted(((1, 6), (2, 2), (3, 1)))
        limit = (self.budget.float_array_length - 1) - mult * (
            self.iterations - 1
        )
        offset = self.rand.randint(0, max(0, min(2, limit)))
        return Affine(mult, offset)

    def _float_leaf(self, loop_vars: list[str]) -> Expr:
        options: list[tuple[Expr, int]] = [
            (Load(self.rand.choice(self.float_arrays), self._affine()), 4),
            (
                Load(
                    self.rand.choice(self.float_arrays),
                    self._masked_index(loop_vars, self.float_mask),
                ),
                3,
            ),
            (ConstRef(self.rand.choice(sorted(self.consts))), 2),
        ]
        if self.scalars:
            options.append((ScalarRef(self.rand.choice(sorted(self.scalars))), 3))
        if self.rand.chance(1, 3):
            options.append(
                (
                    LoadIndirect(
                        self.rand.choice(self.float_arrays),
                        Indirect(self.index_array, self._indirect_affine()),
                    ),
                    2,
                )
            )
        return self.rand.weighted(options)

    def _indirect_affine(self) -> Affine:
        limit = (self.budget.int_array_length - 1) - (self.iterations - 1)
        return Affine(1, self.rand.randint(0, max(0, min(2, limit))))

    def _float_expr(self, loop_vars: list[str], depth: int) -> Expr:
        if depth <= 0 or self.rand.chance(1, 3):
            return self._float_leaf(loop_vars)
        op = self.rand.weighted((("+", 4), ("*", 4), ("-", 2), ("/", 1)))
        return BinOp(
            op,
            self._float_expr(loop_vars, depth - 1),
            self._float_expr(loop_vars, depth - 1),
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _statement(self, loop_vars: list[str], depth: int) -> Statement:
        self.statements_left -= 1
        kinds = [("store", 5), ("int_store", 2)]
        if self.scalars:
            kinds.append(("scalar", 3))
        if self.int_scalars:
            kinds.append(("int_scalar", 3))
        if depth < self.budget.max_loop_depth and self.register_slack > 0:
            kinds.append(("loop", 3))
        kinds.append(("if", 3))
        kind = self.rand.weighted(kinds)

        if kind == "store":
            array = self.rand.choice(self.float_arrays)
            index_kind = self.rand.weighted(
                (("affine", 4), ("computed", 3), ("indirect", 1))
            )
            if index_kind == "affine":
                index: Affine | Computed | Indirect = self._affine()
            elif index_kind == "computed":
                index = self._masked_index(loop_vars, self.float_mask)
            else:
                index = Indirect(self.index_array, self._indirect_affine())
            expr = self._float_expr(loop_vars, self.budget.max_float_expr_depth)
            return Store(array, index, expr)
        if kind == "int_store":
            array = self.rand.choice(self.int_arrays)
            index = self._masked_index(loop_vars, self.int_mask)
            value = IntBinOp(
                "&",
                self._int_expr(loop_vars, self.budget.max_int_expr_depth),
                IntConst(self.int_mask),
            )
            return IntStore(array, index, value)
        if kind == "scalar":
            name = self.rand.choice(sorted(self.scalars))
            expr = self._float_expr(loop_vars, self.budget.max_float_expr_depth)
            if self.rand.chance(2, 3):  # reductions dominate
                expr = BinOp(self.rand.choice(("+", "*")), ScalarRef(name), expr)
            return ScalarUpdate(name, expr)
        if kind == "int_scalar":
            name = self.rand.choice(sorted(self.int_scalars))
            if self.rand.chance(1, 2):
                # pointer chase: k = chase[k & mask] & mask
                value: IntExpr = IntBinOp(
                    "&",
                    IntLoad(
                        self.rand.choice(self.int_arrays + [self.index_array]),
                        IntBinOp("&", IntScalarRef(name), IntConst(self.int_mask)),
                    ),
                    IntConst(self.float_mask),
                )
            else:
                value = IntBinOp(
                    "&",
                    self._int_expr(loop_vars, self.budget.max_int_expr_depth),
                    IntConst(self.float_mask),
                )
            return IntScalarUpdate(name, value)
        if kind == "loop":
            self.register_slack -= 1
            self.loop_counter += 1
            var = f"j{self.loop_counter}"
            trips = self.rand.randint(2, self.budget.max_trips)
            body = self._block(loop_vars + [var], depth + 1, minimum=1)
            self.register_slack += 1  # sibling loops may reuse the slot
            return Loop(var, trips, body)
        assert kind == "if"
        cond = self._condition(loop_vars)
        then = self._block(loop_vars, depth + 1, minimum=1)
        orelse: tuple[Statement, ...] = ()
        if self.rand.chance(1, 2) and self.statements_left > 0:
            orelse = self._block(loop_vars, depth + 1, minimum=1)
        return If(cond, then, orelse)

    def _block(
        self, loop_vars: list[str], depth: int, minimum: int
    ) -> tuple[Statement, ...]:
        count = self.rand.randint(
            minimum, max(minimum, self.budget.max_block_statements)
        )
        out = []
        for _ in range(count):
            if self.statements_left <= 0 and len(out) >= minimum:
                break
            out.append(self._statement(loop_vars, depth))
        return tuple(out)

    # ------------------------------------------------------------------
    def build(self, seed: int) -> tuple[Kernel, tuple[ArrayDecl, ...]]:
        statements = self._block([OUTER_LOOP_VAR], depth=1, minimum=2)
        kernel = Kernel(
            number=0,
            name=f"generated seed={seed}",
            iterations=self.iterations,
            statements=statements,
            consts=self.consts,
            scalars=self.scalars,
            int_scalars=self.int_scalars,
            tag=f"gen{seed}",
        )
        arrays = self._arrays()
        return kernel, arrays

    def _arrays(self) -> tuple[ArrayDecl, ...]:
        rand = self.rand
        decls = []
        for name in self.float_arrays:
            init = tuple(
                rand.f32_small() for _ in range(min(16, self.budget.float_array_length))
            )
            decls.append(
                ArrayDecl(name, self.budget.float_array_length, "float", init)
            )
        for name in self.int_arrays:
            init = tuple(
                rand.randint(0, self.int_mask)
                for _ in range(self.budget.int_array_length)
            )
            decls.append(
                ArrayDecl(name, self.budget.int_array_length, "int", init)
            )
        # idx: read-only, every value a valid element of every float array
        idx_init = tuple(
            rand.randint(0, self.budget.float_array_length - 1)
            for _ in range(self.budget.int_array_length)
        )
        decls.append(
            ArrayDecl(
                self.index_array, self.budget.int_array_length, "int", idx_init
            )
        )
        return tuple(decls)


_MAX_ATTEMPTS = 32


def generate_workload(
    seed: int, budget: ShapeBudget | str = "default"
) -> GeneratedWorkload:
    """Generate one well-formed kernel + arrays from ``seed``.

    Deterministic: the same (seed, budget) pair always returns the same
    workload.  The result is guaranteed to validate and compile — the
    generator retries with deterministically shrunken shapes in the
    (rare) case a sample exceeds the compiler's register budget.
    """
    if isinstance(budget, str):
        try:
            budget = BUDGETS[budget]
        except KeyError:
            raise ValueError(
                f"unknown budget {budget!r}; choose from {sorted(BUDGETS)}"
            ) from None
    for attempt in range(_MAX_ATTEMPTS):
        # Fold the attempt into the stream seed so retries explore new
        # shapes while staying a pure function of (seed, budget).
        rand = HashRand((seed << 8) ^ attempt ^ 0xC0FFEE)
        shrunk = budget
        if attempt:
            shrunk = replace(
                budget,
                max_loop_depth=1,
                max_float_expr_depth=1,
                max_int_expr_depth=1,
                max_int_scalars=0,
                max_float_scalars=min(1, budget.max_float_scalars),
            )
        builder = _KernelBuilder(rand, shrunk)
        kernel, arrays = builder.build(seed)
        try:
            validate_kernel(kernel, list(arrays))
            compile_kernel(kernel)
        except (KernelValidationError, CompileError):
            continue
        return GeneratedWorkload(
            seed=seed, budget=budget.name, kernel=kernel, arrays=arrays
        )
    raise AssertionError(  # pragma: no cover - shrunken shapes always fit
        f"seed {seed}: no valid kernel within {_MAX_ATTEMPTS} attempts"
    )
