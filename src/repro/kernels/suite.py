"""Build kernel-suite programs (the paper's 14-loop workload and beyond).

Section 5: "The 14 loops were compiled as one large program, so that
each loop would run until finished and then fall through to the next
loop.  This has the effect of flushing the cache every few thousand
cycles, since it is guaranteed that at the beginning of each new loop no
part of it will be in the cache."

:func:`build_kernel_suite` is the general builder: it validates every
kernel against the shared array declarations (with named-kernel,
named-statement diagnostics), compiles each one, lays them out back to
back, appends the shared data segment, assembles the result, and returns
the program together with the metadata the analysis layer needs
(inner-loop markers, per-kernel regions, the kernel/array definitions
for reference validation).  :func:`build_livermore_suite` builds the
paper's fixed 14-loop benchmark on top of it; generated fuzz workloads
(:mod:`repro.kernels.generate`) go through the same path.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from ..asm import assemble
from ..asm.program import Program
from ..isa.encoding import InstructionFormat
from ..memory.fpu import FPU_BASE
from .codegen import CompiledKernel, compile_kernel
from .dsl import ArrayDecl, Kernel, validate_kernel
from .loops import make_kernels, make_shared_arrays
from .reference import f32

__all__ = [
    "KernelSuite",
    "LivermoreSuite",
    "build_kernel_suite",
    "build_livermore_program",
    "build_livermore_suite",
    "cached_livermore_suite",
]

_FLOATS_PER_LINE = 8


@dataclass
class KernelSuite:
    """An assembled kernel program plus everything needed to analyse it."""

    program: Program
    kernels: list[Kernel]
    arrays: list[ArrayDecl]
    compiled: list[CompiledKernel]
    source: str

    # ------------------------------------------------------------------
    def inner_loop_bytes(self, number: int) -> int:
        """Size of kernel ``number``'s inner loop (our Table I column)."""
        label = f"ll{number}"
        return self.program.code_span(f"{label}.inner.begin", f"{label}.inner.end")

    def regions(self) -> list[tuple[str, int, int]]:
        """(label, begin, end) of every kernel's inner loop."""
        out = []
        for kernel in self.kernels:
            label = kernel.label
            out.append(
                (
                    label,
                    self.program.marker(f"{label}.inner.begin"),
                    self.program.marker(f"{label}.inner.end"),
                )
            )
        return out

    def initial_reference_arrays(self) -> dict[str, list]:
        """Float32-rounded initial array contents for the interpreter."""
        arrays: dict[str, list] = {}
        for decl in self.arrays:
            values = decl.initial_values()
            if decl.kind == "float":
                arrays[decl.name] = [f32(float(v)) for v in values]
            else:
                arrays[decl.name] = [int(v) for v in values]
        return arrays

    def array_base(self, name: str) -> int:
        return self.program.symbol(name)

    def scalar_result_address(self, kernel_label: str, position: int = 0) -> int:
        return self.program.symbol(f"{kernel_label}.result") + 4 * position

    def int_scalar_result_address(
        self, kernel_label: str, position: int = 0
    ) -> int:
        return self.program.symbol(f"{kernel_label}.iresult") + 4 * position


#: Historical name — the Livermore benchmark was the only suite once.
LivermoreSuite = KernelSuite


def _emit_array(decl: ArrayDecl) -> list[str]:
    lines = ["        .align 4", f"{decl.name}:"]
    values = decl.initial_values()
    directive = ".float" if decl.kind == "float" else ".word"
    for start in range(0, len(values), _FLOATS_PER_LINE):
        chunk = values[start : start + _FLOATS_PER_LINE]
        if decl.kind == "float":
            rendered = ", ".join(repr(float(v)) for v in chunk)
        else:
            rendered = ", ".join(str(int(v)) for v in chunk)
        lines.append(f"        {directive} {rendered}")
    return lines


def build_kernel_suite(
    kernels: list[Kernel],
    arrays: list[ArrayDecl],
    fmt: InstructionFormat = InstructionFormat.FIXED32,
    source_name: str = "kernels.s",
    banner: str = "Kernel suite for the PIPE-like processor.",
) -> KernelSuite:
    """Validate, compile, lay out, and assemble a list of kernels.

    The kernels run back to back over the shared ``arrays`` data segment
    — aliasing between kernels is intentional (the Livermore program
    depends on it, and generated suites inherit the shape).  Raises
    :class:`~repro.kernels.dsl.KernelValidationError` with a
    named-kernel, named-statement message for malformed kernels, and
    ``ValueError`` for layout problems (duplicate labels, image
    overflowing into the FPU window).
    """
    if not kernels:
        raise ValueError("a kernel suite needs at least one kernel")
    seen: set[str] = set()
    for kernel in kernels:
        if kernel.label in seen:
            raise ValueError(f"duplicate kernel label '{kernel.label}'")
        seen.add(kernel.label)
        validate_kernel(kernel, arrays)

    compiled = [compile_kernel(kernel) for kernel in kernels]

    lines: list[str] = [
        f"; {banner}",
        "; Generated by repro.kernels.suite — do not edit.",
        "        .entry start",
        "start:",
        f"        li r6, {FPU_BASE & 0xFFFF}",
        f"        lih r6, {FPU_BASE >> 16}",
    ]
    for item in compiled:
        lines.append("")
        lines.extend(item.text_lines)
    lines.append("")
    lines.append("        halt")
    lines.append("")
    lines.append("; ---- data segment ----")
    for item in compiled:
        lines.extend(item.data)
    for decl in arrays:
        lines.extend(_emit_array(decl))
    source = "\n".join(lines) + "\n"

    program = assemble(source, fmt=fmt, source_name=source_name)
    if program.memory_size > FPU_BASE:
        raise ValueError(
            f"suite image ({program.memory_size} bytes) collides with "
            f"the FPU window at {FPU_BASE:#x}; shrink the arrays"
        )
    return KernelSuite(
        program=program,
        kernels=list(kernels),
        arrays=list(arrays),
        compiled=compiled,
        source=source,
    )


def build_livermore_suite(
    fmt: InstructionFormat = InstructionFormat.FIXED32,
    scale: float = 1.0,
    seed: int = 20260707,
    loops: tuple[int, ...] | None = None,
) -> KernelSuite:
    """Compile, lay out, and assemble the 14-loop benchmark.

    ``loops`` restricts the program to the named kernel numbers (e.g.
    ``(3,)`` builds a single-loop program — handy for compact traces);
    ``None`` keeps all 14.
    """
    kernels = make_kernels(scale=scale)
    if loops is not None:
        wanted = {f"ll{number}" for number in loops}
        known = {kernel.label for kernel in kernels}
        missing = wanted - known
        if missing:
            raise ValueError(f"unknown Livermore loop(s): {sorted(missing)}")
        kernels = [kernel for kernel in kernels if kernel.label in wanted]
    arrays = make_shared_arrays(seed=seed)
    return build_kernel_suite(
        kernels,
        arrays,
        fmt=fmt,
        source_name="livermore.s",
        banner="Livermore Loops 1-14 for the PIPE-like processor.",
    )


@functools.lru_cache(maxsize=8)
def _cached_suite(
    fmt: InstructionFormat,
    scale: float,
    seed: int,
    loops: tuple[int, ...] | None = None,
) -> KernelSuite:
    return build_livermore_suite(fmt=fmt, scale=scale, seed=seed, loops=loops)


def build_livermore_program(
    fmt: InstructionFormat = InstructionFormat.FIXED32,
    scale: float = 1.0,
    seed: int = 20260707,
    loops: tuple[int, ...] | None = None,
) -> Program:
    """The assembled benchmark program (cached across callers).

    Callers must treat the returned program as read-only; simulators copy
    the image before running.
    """
    return _cached_suite(fmt, scale, seed, loops).program


def cached_livermore_suite(
    fmt: InstructionFormat = InstructionFormat.FIXED32,
    scale: float = 1.0,
    seed: int = 20260707,
    loops: tuple[int, ...] | None = None,
) -> KernelSuite:
    """Cached variant of :func:`build_livermore_suite` for tests/benches."""
    return _cached_suite(fmt, scale, seed, loops)
