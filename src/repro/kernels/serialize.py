"""JSON round-trip for kernels and array declarations.

Minimized fuzz reproducers are committed to ``tests/corpus/`` as JSON
files; this module is the single definition of that format.  Every DSL
node serializes to ``{"t": <type name>, ...fields}``, so a corpus file
is readable in a diff and stable across refactors that don't change the
DSL itself.

The format is strict on load: unknown node types, missing fields, and
malformed values raise :class:`SerializeError` with the offending path,
because a corpus entry that silently deserializes wrongly would pin the
wrong regression.
"""

from __future__ import annotations

import json

from .dsl import (
    Affine,
    ArrayDecl,
    BinOp,
    Computed,
    ConstRef,
    Expr,
    If,
    IndexRef,
    Indirect,
    IntBinOp,
    IntConst,
    IntExpr,
    IntLoad,
    IntScalarRef,
    IntScalarUpdate,
    IntStore,
    Kernel,
    Load,
    LoadIndirect,
    Loop,
    ScalarRef,
    ScalarUpdate,
    Statement,
    Store,
)

__all__ = [
    "SerializeError",
    "kernel_from_dict",
    "kernel_to_dict",
    "workload_from_json",
    "workload_to_json",
]

FORMAT_VERSION = 1


class SerializeError(ValueError):
    """A corpus document is malformed."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _encode(node) -> dict:
    if isinstance(node, Affine):
        return {"t": "Affine", "mult": node.mult, "offset": node.offset}
    if isinstance(node, Indirect):
        return {
            "t": "Indirect",
            "index_array": node.index_array,
            "index": _encode(node.index),
            "offset": node.offset,
        }
    if isinstance(node, Computed):
        return {"t": "Computed", "expr": _encode(node.expr)}
    if isinstance(node, IntConst):
        return {"t": "IntConst", "value": node.value}
    if isinstance(node, IndexRef):
        return {"t": "IndexRef", "var": node.var}
    if isinstance(node, IntScalarRef):
        return {"t": "IntScalarRef", "name": node.name}
    if isinstance(node, IntLoad):
        return {"t": "IntLoad", "array": node.array, "index": _encode(node.index)}
    if isinstance(node, IntBinOp):
        return {
            "t": "IntBinOp",
            "op": node.op,
            "lhs": _encode(node.lhs),
            "rhs": _encode(node.rhs),
        }
    if isinstance(node, Load):
        return {"t": "Load", "array": node.array, "index": _encode(node.index)}
    if isinstance(node, LoadIndirect):
        return {
            "t": "LoadIndirect",
            "array": node.array,
            "pointer": _encode(node.pointer),
        }
    if isinstance(node, ConstRef):
        return {"t": "ConstRef", "name": node.name}
    if isinstance(node, ScalarRef):
        return {"t": "ScalarRef", "name": node.name}
    if isinstance(node, BinOp):
        return {
            "t": "BinOp",
            "op": node.op,
            "lhs": _encode(node.lhs),
            "rhs": _encode(node.rhs),
        }
    if isinstance(node, Store):
        return {
            "t": "Store",
            "array": node.array,
            "index": _encode(node.index),
            "expr": _encode(node.expr),
        }
    if isinstance(node, IntStore):
        return {
            "t": "IntStore",
            "array": node.array,
            "index": _encode(node.index),
            "expr": _encode(node.expr),
        }
    if isinstance(node, ScalarUpdate):
        return {"t": "ScalarUpdate", "name": node.name, "expr": _encode(node.expr)}
    if isinstance(node, IntScalarUpdate):
        return {
            "t": "IntScalarUpdate",
            "name": node.name,
            "expr": _encode(node.expr),
        }
    if isinstance(node, Loop):
        return {
            "t": "Loop",
            "var": node.var,
            "trips": node.trips,
            "body": [_encode(s) for s in node.body],
        }
    if isinstance(node, If):
        return {
            "t": "If",
            "cond": _encode(node.cond),
            "then": [_encode(s) for s in node.then],
            "orelse": [_encode(s) for s in node.orelse],
        }
    raise SerializeError(f"cannot serialize {type(node).__name__}")


def kernel_to_dict(kernel: Kernel) -> dict:
    return {
        "number": kernel.number,
        "name": kernel.name,
        "tag": kernel.tag,
        "iterations": kernel.iterations,
        "consts": dict(kernel.consts),
        "scalars": dict(kernel.scalars),
        "int_scalars": dict(kernel.int_scalars),
        "statements": [_encode(s) for s in kernel.statements],
    }


def _array_to_dict(decl: ArrayDecl) -> dict:
    return {
        "name": decl.name,
        "length": decl.length,
        "kind": decl.kind,
        "init": list(decl.init),
    }


def workload_to_json(
    kernel: Kernel,
    arrays,
    *,
    seed: int | None = None,
    note: str = "",
) -> str:
    """Serialize one workload (kernel + arrays) to pretty-printed JSON."""
    document = {
        "format": FORMAT_VERSION,
        "seed": seed,
        "note": note,
        "kernel": kernel_to_dict(kernel),
        "arrays": [_array_to_dict(decl) for decl in arrays],
    }
    return json.dumps(document, indent=1, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _need(raw: dict, key: str, path: str):
    if key not in raw:
        raise SerializeError(f"{path}: missing field {key!r}")
    return raw[key]


def _decode(raw, path: str):
    if not isinstance(raw, dict):
        raise SerializeError(f"{path}: expected an object, got {type(raw).__name__}")
    kind = _need(raw, "t", path)
    try:
        if kind == "Affine":
            return Affine(_need(raw, "mult", path), _need(raw, "offset", path))
        if kind == "Indirect":
            return Indirect(
                _need(raw, "index_array", path),
                _decode(_need(raw, "index", path), f"{path}.index"),
                _need(raw, "offset", path),
            )
        if kind == "Computed":
            return Computed(_decode(_need(raw, "expr", path), f"{path}.expr"))
        if kind == "IntConst":
            return IntConst(_need(raw, "value", path))
        if kind == "IndexRef":
            return IndexRef(_need(raw, "var", path))
        if kind == "IntScalarRef":
            return IntScalarRef(_need(raw, "name", path))
        if kind == "IntLoad":
            return IntLoad(
                _need(raw, "array", path),
                _decode(_need(raw, "index", path), f"{path}.index"),
            )
        if kind == "IntBinOp":
            return IntBinOp(
                _need(raw, "op", path),
                _decode(_need(raw, "lhs", path), f"{path}.lhs"),
                _decode(_need(raw, "rhs", path), f"{path}.rhs"),
            )
        if kind == "Load":
            return Load(
                _need(raw, "array", path),
                _decode(_need(raw, "index", path), f"{path}.index"),
            )
        if kind == "LoadIndirect":
            return LoadIndirect(
                _need(raw, "array", path),
                _decode(_need(raw, "pointer", path), f"{path}.pointer"),
            )
        if kind == "ConstRef":
            return ConstRef(_need(raw, "name", path))
        if kind == "ScalarRef":
            return ScalarRef(_need(raw, "name", path))
        if kind == "BinOp":
            return BinOp(
                _need(raw, "op", path),
                _decode(_need(raw, "lhs", path), f"{path}.lhs"),
                _decode(_need(raw, "rhs", path), f"{path}.rhs"),
            )
        if kind == "Store":
            return Store(
                _need(raw, "array", path),
                _decode(_need(raw, "index", path), f"{path}.index"),
                _decode(_need(raw, "expr", path), f"{path}.expr"),
            )
        if kind == "IntStore":
            return IntStore(
                _need(raw, "array", path),
                _decode(_need(raw, "index", path), f"{path}.index"),
                _decode(_need(raw, "expr", path), f"{path}.expr"),
            )
        if kind == "ScalarUpdate":
            return ScalarUpdate(
                _need(raw, "name", path),
                _decode(_need(raw, "expr", path), f"{path}.expr"),
            )
        if kind == "IntScalarUpdate":
            return IntScalarUpdate(
                _need(raw, "name", path),
                _decode(_need(raw, "expr", path), f"{path}.expr"),
            )
        if kind == "Loop":
            return Loop(
                _need(raw, "var", path),
                _need(raw, "trips", path),
                tuple(
                    _decode(item, f"{path}.body[{n}]")
                    for n, item in enumerate(_need(raw, "body", path))
                ),
            )
        if kind == "If":
            return If(
                _decode(_need(raw, "cond", path), f"{path}.cond"),
                tuple(
                    _decode(item, f"{path}.then[{n}]")
                    for n, item in enumerate(_need(raw, "then", path))
                ),
                tuple(
                    _decode(item, f"{path}.orelse[{n}]")
                    for n, item in enumerate(_need(raw, "orelse", path))
                ),
            )
    except SerializeError:
        raise
    except (TypeError, ValueError) as error:
        raise SerializeError(f"{path}: {error}") from error
    raise SerializeError(f"{path}: unknown node type {kind!r}")


def kernel_from_dict(raw: dict, path: str = "kernel") -> Kernel:
    try:
        return Kernel(
            number=_need(raw, "number", path),
            name=_need(raw, "name", path),
            tag=raw.get("tag"),
            iterations=_need(raw, "iterations", path),
            consts=dict(_need(raw, "consts", path)),
            scalars=dict(_need(raw, "scalars", path)),
            int_scalars=dict(_need(raw, "int_scalars", path)),
            statements=tuple(
                _decode(item, f"{path}.statements[{n}]")
                for n, item in enumerate(_need(raw, "statements", path))
            ),
        )
    except SerializeError:
        raise
    except (TypeError, ValueError) as error:
        raise SerializeError(f"{path}: {error}") from error


def workload_from_json(text: str) -> tuple[Kernel, list[ArrayDecl], dict]:
    """Parse a corpus document → (kernel, arrays, metadata).

    ``metadata`` carries the document's ``seed`` and ``note`` fields.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializeError(f"not valid JSON: {error}") from error
    if not isinstance(document, dict):
        raise SerializeError("top level must be an object")
    version = document.get("format")
    if version != FORMAT_VERSION:
        raise SerializeError(
            f"unsupported corpus format {version!r} (expected {FORMAT_VERSION})"
        )
    kernel = kernel_from_dict(_need(document, "kernel", "document"))
    arrays = []
    for n, raw in enumerate(_need(document, "arrays", "document")):
        path = f"arrays[{n}]"
        try:
            arrays.append(
                ArrayDecl(
                    name=_need(raw, "name", path),
                    length=_need(raw, "length", path),
                    kind=_need(raw, "kind", path),
                    init=tuple(_need(raw, "init", path)),
                )
            )
        except SerializeError:
            raise
        except (TypeError, ValueError) as error:
            raise SerializeError(f"{path}: {error}") from error
    metadata = {"seed": document.get("seed"), "note": document.get("note", "")}
    return kernel, arrays, metadata
