"""A float32-exact reference interpreter for the kernel DSL.

Executes kernels directly on Python lists, applying *exactly* the same
arithmetic as the simulated FPU (:func:`repro.memory.fpu.float32_op` on
bit patterns), in the same statement order.  The test suite runs the
compiled PIPE program and this interpreter over identical initial data
and requires **bit-identical** array and scalar results — any divergence
means the compiler, the simulator, or the interpreter is wrong.

The interpreter is also the tool that validates indirect index bounds
before a suite is assembled.
"""

from __future__ import annotations

from ..memory.fpu import bits_to_float, float32_op, float_to_bits
from .dsl import (
    Affine,
    BinOp,
    ConstRef,
    Expr,
    Indirect,
    Kernel,
    Load,
    LoadIndirect,
    ScalarRef,
    ScalarUpdate,
    Store,
)

__all__ = ["f32", "run_kernel_reference", "run_suite_reference"]

_OP_NAMES = {"+": "add", "-": "sub", "*": "mul", "/": "div"}


def f32(value: float) -> float:
    """Round a Python float to the nearest IEEE-754 single."""
    return bits_to_float(float_to_bits(value))


def _binop(op: str, lhs: float, rhs: float) -> float:
    bits = float32_op(_OP_NAMES[op], float_to_bits(lhs), float_to_bits(rhs))
    return bits_to_float(bits)


class _Context:
    def __init__(self, kernel: Kernel, arrays: dict[str, list]):
        self.arrays = arrays
        self.consts = {name: f32(value) for name, value in kernel.consts.items()}
        self.scalars = {name: f32(value) for name, value in kernel.scalars.items()}
        self.i = 0

    def resolve_index(self, array: str, index: Affine | Indirect) -> int:
        if isinstance(index, Affine):
            element = index.at(self.i)
        else:
            pointer_base = self.arrays[index.index_array][index.index.at(self.i)]
            element = int(pointer_base) + index.offset
        if not 0 <= element < len(self.arrays[array]):
            raise IndexError(
                f"kernel access {array}[{element}] out of range "
                f"(length {len(self.arrays[array])}, i={self.i})"
            )
        return element

    def evaluate(self, expr: Expr) -> float:
        if isinstance(expr, Load):
            return self.arrays[expr.array][self.resolve_index(expr.array, expr.index)]
        if isinstance(expr, LoadIndirect):
            return self.arrays[expr.array][
                self.resolve_index(expr.array, expr.pointer)
            ]
        if isinstance(expr, ConstRef):
            return self.consts[expr.name]
        if isinstance(expr, ScalarRef):
            return self.scalars[expr.name]
        if isinstance(expr, BinOp):
            lhs = self.evaluate(expr.lhs)
            rhs = self.evaluate(expr.rhs)
            return _binop(expr.op, lhs, rhs)
        raise AssertionError(f"unhandled expression {expr!r}")  # pragma: no cover


def run_kernel_reference(kernel: Kernel, arrays: dict[str, list]) -> dict[str, float]:
    """Run one kernel in place over ``arrays``; returns final scalars.

    ``arrays`` maps array names to mutable lists.  Float arrays must
    already contain float32-rounded values (use :func:`f32`).
    """
    context = _Context(kernel, arrays)
    for i in range(kernel.iterations):
        context.i = i
        for statement in kernel.statements:
            if isinstance(statement, Store):
                value = context.evaluate(statement.expr)
                element = context.resolve_index(statement.array, statement.index)
                arrays[statement.array][element] = value
            elif isinstance(statement, ScalarUpdate):
                context.scalars[statement.name] = context.evaluate(statement.expr)
            else:  # pragma: no cover
                raise AssertionError(f"unhandled statement {statement!r}")
    return dict(context.scalars)


def run_suite_reference(
    kernels: list[Kernel], arrays: dict[str, list]
) -> dict[str, dict[str, float]]:
    """Run kernels back to back over shared arrays (the benchmark shape).

    Returns each kernel's final scalars keyed by kernel label.  Array
    aliasing across kernels is intentional and mirrors the compiled
    program exactly.
    """
    results: dict[str, dict[str, float]] = {}
    for kernel in kernels:
        results[kernel.label] = run_kernel_reference(kernel, arrays)
    return results
