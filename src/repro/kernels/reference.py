"""A float32-exact reference interpreter for the kernel DSL.

Executes kernels directly on Python lists, applying *exactly* the same
arithmetic as the simulated machine — :func:`repro.memory.fpu.float32_op`
on bit patterns for the FPU, and 32-bit wrap-around ALU semantics for
the integer expressions — in the same statement order.  The test suite
runs the compiled PIPE program and this interpreter over identical
initial data and requires **bit-identical** array and scalar results —
any divergence means the compiler, the simulator, or the interpreter is
wrong.

The interpreter is also the tool that validates index bounds that
cannot be proven statically (computed indices, indirect accesses
through written index arrays) before a suite is trusted.
"""

from __future__ import annotations

from ..memory.fpu import bits_to_float, float32_op, float_to_bits
from .dsl import (
    Affine,
    BinOp,
    Computed,
    ConstRef,
    Expr,
    If,
    IndexRef,
    Indirect,
    IntBinOp,
    IntConst,
    IntExpr,
    IntLoad,
    IntScalarRef,
    IntScalarUpdate,
    IntStore,
    Kernel,
    Load,
    LoadIndirect,
    Loop,
    OUTER_LOOP_VAR,
    ScalarRef,
    ScalarUpdate,
    Store,
)

__all__ = [
    "f32",
    "int32",
    "run_kernel_reference",
    "run_suite_reference",
]

_OP_NAMES = {"+": "add", "-": "sub", "*": "mul", "/": "div"}

_MASK32 = 0xFFFFFFFF


def f32(value: float) -> float:
    """Round a Python float to the nearest IEEE-754 single."""
    return bits_to_float(float_to_bits(value))


def int32(value: int) -> int:
    """Wrap any integer into unsigned 32-bit representation."""
    return value & _MASK32


def _signed(value: int) -> int:
    value &= _MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def _binop(op: str, lhs: float, rhs: float) -> float:
    bits = float32_op(_OP_NAMES[op], float_to_bits(lhs), float_to_bits(rhs))
    return bits_to_float(bits)


def _int_binop(op: str, lhs: int, rhs: int) -> int:
    """Exactly :func:`repro.cpu.alu.alu_operate` for the DSL's ops."""
    if op == "+":
        return int32(lhs + rhs)
    if op == "-":
        return int32(lhs - rhs)
    if op == "&":
        return lhs & rhs
    if op == "|":
        return lhs | rhs
    if op == "^":
        return lhs ^ rhs
    if op == "<<":
        return int32(lhs << (rhs & 31))
    if op == ">>":
        return int32(lhs) >> (rhs & 31)
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    if op == "<":
        return int(_signed(lhs) < _signed(rhs))
    if op == "<=":
        return int(_signed(lhs) <= _signed(rhs))
    raise AssertionError(f"unhandled integer op {op!r}")  # pragma: no cover


class _Context:
    def __init__(self, kernel: Kernel, arrays: dict[str, list]):
        self.arrays = arrays
        self.consts = {name: f32(value) for name, value in kernel.consts.items()}
        self.scalars = {name: f32(value) for name, value in kernel.scalars.items()}
        self.int_scalars = {
            name: int32(value) for name, value in kernel.int_scalars.items()
        }
        self.loop_vars: dict[str, int] = {OUTER_LOOP_VAR: 0}

    @property
    def i(self) -> int:
        return self.loop_vars[OUTER_LOOP_VAR]

    @i.setter
    def i(self, value: int) -> None:
        self.loop_vars[OUTER_LOOP_VAR] = value

    def resolve_index(
        self, array: str, index: Affine | Indirect | Computed
    ) -> int:
        if isinstance(index, Affine):
            element = index.at(self.i)
        elif isinstance(index, Computed):
            element = self.evaluate_int(index.expr)
        else:
            pointer_base = self.arrays[index.index_array][index.index.at(self.i)]
            element = int(pointer_base) + index.offset
        if not 0 <= element < len(self.arrays[array]):
            raise IndexError(
                f"kernel access {array}[{element}] out of range "
                f"(length {len(self.arrays[array])}, i={self.i})"
            )
        return element

    # ------------------------------------------------------------------
    def evaluate_int(self, expr: IntExpr) -> int:
        if isinstance(expr, IntConst):
            return int32(expr.value)
        if isinstance(expr, IndexRef):
            return self.loop_vars[expr.var]
        if isinstance(expr, IntScalarRef):
            return self.int_scalars[expr.name]
        if isinstance(expr, IntLoad):
            element = self.resolve_index(expr.array, Computed(expr.index))
            return int32(int(self.arrays[expr.array][element]))
        if isinstance(expr, IntBinOp):
            lhs = self.evaluate_int(expr.lhs)
            rhs = self.evaluate_int(expr.rhs)
            return _int_binop(expr.op, lhs, rhs)
        raise AssertionError(f"unhandled int expression {expr!r}")

    def evaluate(self, expr: Expr) -> float:
        if isinstance(expr, Load):
            return self.arrays[expr.array][self.resolve_index(expr.array, expr.index)]
        if isinstance(expr, LoadIndirect):
            return self.arrays[expr.array][
                self.resolve_index(expr.array, expr.pointer)
            ]
        if isinstance(expr, ConstRef):
            return self.consts[expr.name]
        if isinstance(expr, ScalarRef):
            return self.scalars[expr.name]
        if isinstance(expr, BinOp):
            lhs = self.evaluate(expr.lhs)
            rhs = self.evaluate(expr.rhs)
            return _binop(expr.op, lhs, rhs)
        raise AssertionError(f"unhandled expression {expr!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    def execute_block(self, statements) -> None:
        for statement in statements:
            self.execute(statement)

    def execute(self, statement) -> None:
        if isinstance(statement, Store):
            value = self.evaluate(statement.expr)
            element = self.resolve_index(statement.array, statement.index)
            self.arrays[statement.array][element] = value
        elif isinstance(statement, IntStore):
            value = self.evaluate_int(statement.expr)
            element = self.resolve_index(statement.array, statement.index)
            self.arrays[statement.array][element] = value
        elif isinstance(statement, ScalarUpdate):
            self.scalars[statement.name] = self.evaluate(statement.expr)
        elif isinstance(statement, IntScalarUpdate):
            self.int_scalars[statement.name] = self.evaluate_int(statement.expr)
        elif isinstance(statement, Loop):
            outer = self.loop_vars.get(statement.var)
            for trip in range(statement.trips):
                self.loop_vars[statement.var] = trip
                self.execute_block(statement.body)
            if outer is None:
                del self.loop_vars[statement.var]
            else:  # pragma: no cover - shadowing is rejected by validation
                self.loop_vars[statement.var] = outer
        elif isinstance(statement, If):
            if self.evaluate_int(statement.cond) != 0:
                self.execute_block(statement.then)
            else:
                self.execute_block(statement.orelse)
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {statement!r}")


def run_kernel_reference(kernel: Kernel, arrays: dict[str, list]) -> dict[str, float]:
    """Run one kernel in place over ``arrays``; returns final scalars.

    ``arrays`` maps array names to mutable lists.  Float arrays must
    already contain float32-rounded values (use :func:`f32`).  The
    returned mapping holds the kernel's float scalars followed by its
    integer scalars (names are disjoint by validation).
    """
    context = _Context(kernel, arrays)
    for i in range(kernel.iterations):
        context.i = i
        context.execute_block(kernel.statements)
    results: dict[str, float] = dict(context.scalars)
    results.update(context.int_scalars)
    return results


def run_suite_reference(
    kernels: list[Kernel], arrays: dict[str, list]
) -> dict[str, dict[str, float]]:
    """Run kernels back to back over shared arrays (the benchmark shape).

    Returns each kernel's final scalars keyed by kernel label.  Array
    aliasing across kernels is intentional and mirrors the compiled
    program exactly.
    """
    results: dict[str, dict[str, float]] = {}
    for kernel in kernels:
        results[kernel.label] = run_kernel_reference(kernel, arrays)
    return results
