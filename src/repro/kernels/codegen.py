"""Code generation: kernel DSL → PIPE assembly.

This is a miniature version of the PIPE compiler the paper used.  Two
lowering paths share one emission substrate:

**The classic path** (:class:`KernelCompiler`) lowers the original
Livermore subset — a single straight-line inner loop over affine /
indirect indices — with the idioms the architecture is built around:

* array accesses become single ``ld``/``st`` instructions off induction
  registers (``r0`` holds ``4*i``; additional induction registers are
  kept for non-unit strides, strength-reduced in the delay slots);
* every FPU operation is a store pair to the memory-mapped FPU followed
  by a load of the result, so each float multiply/add generates the high
  data-request rate the paper's evaluation depends on (section 5);
* intermediate values ride the architectural load-data queue (register
  7) wherever FIFO order allows, and are popped to scratch registers
  only when a second pending value would break queue order — the
  compiler simulates the LDQ symbolically during emission and *asserts*
  the FIFO discipline, so a miscompile fails loudly at build time;
* loops end in a prepare-to-branch whose delay slots are filled with the
  tail of the loop body plus the induction updates, exactly the style
  section 3.1.3 describes (the compiler "can easily generate code with
  an average of 4 instructions ... after a branch").

**The structured path** (:class:`StructuredCompiler`) lowers the
extended DSL — nested :class:`~repro.kernels.dsl.Loop` blocks,
:class:`~repro.kernels.dsl.If` conditionals, integer scalar arithmetic,
and computed (pointer-chasing) indices.  It trades the classic path's
software pipelining for generality: loop variables live in registers
counting up, every backedge is an ``lbr``/``pbrne`` pair with zero delay
slots, conditionals branch forward through branch register ``b1``, and
addresses are computed with explicit shift/add sequences.  The same
symbolic LDQ model guards queue order, and the same FPU store-pair idiom
keeps generated workloads data-request-heavy.

:func:`compile_kernel` picks the path from
:meth:`~repro.kernels.dsl.Kernel.is_classic`, so the 14 Livermore loops
compile byte-identically to before.

Register convention (visible set r0–r7):

====  =======================================================
r0    classic: primary induction ``4*i``; structured: pool
r1    classic: trip counter; structured: pool
r2-5  pool: inductions/loop vars, scalars, constants, scratch
r6    FPU window base (set once by the suite preamble)
r7    the architectural queue register
====  =======================================================

Branch registers: the classic path loads ``b0`` once per kernel; the
structured path reloads ``b1`` immediately before every prepare-to-
branch (backedges and forward skips alike), so arbitrarily nested
control flow needs only the one register.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..memory.fpu import FPU_BASE
from .dsl import (
    Affine,
    BinOp,
    Computed,
    ConstRef,
    Expr,
    If,
    IndexRef,
    Indirect,
    IntBinOp,
    IntConst,
    IntExpr,
    IntLoad,
    IntScalarRef,
    IntScalarUpdate,
    IntStore,
    Kernel,
    Load,
    LoadIndirect,
    Loop,
    OUTER_LOOP_VAR,
    ScalarRef,
    ScalarUpdate,
    Statement,
    Store,
)

__all__ = [
    "CompileError",
    "CompiledKernel",
    "KernelCompiler",
    "StructuredCompiler",
    "FPU_BASE_REGISTER",
    "compile_kernel",
]

#: Register that permanently holds the FPU window base for the whole program.
FPU_BASE_REGISTER = 6

_POOL = (2, 3, 4, 5)
_WORD = 4
_FPU_OPA_OFF = 0x00
_FPU_TRIG_OFF = {"+": 0x04, "-": 0x08, "*": 0x0C, "/": 0x10}
_FPU_RESULT_OFF = 0x20
_MAX_DELAY = 7

#: Branch register the structured path reloads before every PBR.
_STRUCT_BRANCH_REG = 1

#: rr/ri mnemonics for each integer DSL operation.
_INT_OP_MNEMONICS = {
    "+": ("add", "addi"),
    "-": ("sub", "subi"),
    "&": ("and", "andi"),
    "|": ("or", "ori"),
    "^": ("xor", "xori"),
    "<<": ("sll", "slli"),
    ">>": ("srl", "srli"),
    "==": ("seq", "seqi"),
    "!=": ("sne", "snei"),
    "<": ("slt", "slti"),
    "<=": ("sle", "slei"),
}

#: Ops whose immediate form zero-extends — the immediate must be
#: non-negative for the raw-16-bit pattern to equal the DSL's 32-bit
#: constant semantics.
_ZERO_EXTENDED_IMM_OPS = ("&", "|", "^")


class CompileError(Exception):
    """The kernel does not fit the compiler's register budget/shape."""


@dataclass
class CompiledKernel:
    """Assembly text plus bookkeeping for one kernel."""

    kernel: Kernel
    preamble: list[str]
    loop_body: list[str]  #: everything between the inner-loop markers
    epilogue: list[str]
    data: list[str]

    @property
    def text_lines(self) -> list[str]:
        label = self.kernel.label
        lines = [f"{label}:"]
        lines += [f"        {line}" for line in self.preamble]
        lines.append(f"        .marker {label}.inner.begin")
        lines.append(f"{label}.loop:")
        lines += [f"        {line}" for line in self.loop_body]
        lines.append(f"        .marker {label}.inner.end")
        lines += [f"        {line}" for line in self.epilogue]
        return lines

    @property
    def body_instruction_count(self) -> int:
        return sum(1 for line in self.loop_body if not line.endswith(":"))


@dataclass
class _Value:
    """Where an evaluated FP expression's value currently lives."""

    kind: str  #: "ldq" (pending in the load data queue) or "reg"
    reg: int | None = None
    temp: bool = False  #: reg is a scratch to free after consumption
    tag: str = ""  #: symbolic LDQ tag (FIFO assertion)


@dataclass
class _IntValue:
    """Where an evaluated integer expression's value lives (a register)."""

    reg: int
    temp: bool = False


class _EmitterBase:
    """Shared emission machinery: lines, scratch pool, symbolic LDQ.

    Subclasses define the addressing scheme by implementing ``_eval``,
    ``_feed_simple``, and ``_is_simple``; the FPU binop strategy
    (:meth:`_eval_binop`) is common to both paths.
    """

    kernel: Kernel
    label: str

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.label = kernel.label
        self.lines: list[str] = []
        self._ldq_model: deque[str] = deque()
        self._tag_counter = 0
        self._scratch_free: list[int] = []

    # ------------------------------------------------------------------
    # Emission helpers (with a symbolic LDQ model asserting FIFO order)
    # ------------------------------------------------------------------
    def _emit(self, line: str) -> None:
        self.lines.append(line)

    def _fresh_tag(self, hint: str) -> str:
        self._tag_counter += 1
        return f"{hint}#{self._tag_counter}"

    def _emit_load(self, base_reg: int, displacement: str, hint: str) -> str:
        """Emit ``ld`` and push its tag on the symbolic LDQ."""
        tag = self._fresh_tag(hint)
        self._emit(f"ld r{base_reg}, {displacement}")
        self._ldq_model.append(tag)
        return tag

    def _assert_pop(self, expected_tag: str, what: str) -> None:
        if not self._ldq_model:
            raise CompileError(f"{self.label}: {what} pops an empty LDQ")
        head = self._ldq_model.popleft()
        if head != expected_tag:
            raise CompileError(
                f"{self.label}: LDQ order violation — {what} expected "
                f"{expected_tag} but the queue head is {head}"
            )

    def _emit_qtoq(self, expected_tag: str) -> None:
        self._assert_pop(expected_tag, "qtoq")
        self._emit("qtoq")

    def _emit_popq(self, reg: int, expected_tag: str) -> None:
        self._assert_pop(expected_tag, f"popq r{reg}")
        self._emit(f"popq r{reg}")

    def _alloc_scratch(self) -> int:
        if not self._scratch_free:
            raise CompileError(
                f"{self.label}: out of scratch registers — the expression "
                "tree is too deep for the pool; split the statement"
            )
        return self._scratch_free.pop(0)

    def _free_scratch(self, reg: int) -> None:
        self._scratch_free.insert(0, reg)

    # ------------------------------------------------------------------
    # FPU expression evaluation (shared strategy)
    # ------------------------------------------------------------------
    def _is_simple(self, expr: Expr) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _feed_simple(self, expr: Expr) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _eval(self, expr: Expr) -> _Value:  # pragma: no cover - abstract
        raise NotImplementedError

    def _consume(self, value: _Value) -> None:
        """Push an already-evaluated value onto the SDQ."""
        if value.kind == "ldq":
            self._emit_qtoq(value.tag)
        else:
            assert value.reg is not None
            self._emit(f"pushq r{value.reg}")
            if value.temp:
                self._free_scratch(value.reg)

    def _force_reg(self, value: _Value) -> _Value:
        """Ensure the value is in a register (popping the LDQ if pending)."""
        if value.kind == "reg":
            return value
        scratch = self._alloc_scratch()
        self._emit_popq(scratch, value.tag)
        return _Value(kind="reg", reg=scratch, temp=True)

    def _emit_fpu_store(self, offset: int) -> None:
        disp = str(offset) if offset else "0"
        self._emit(f"st r{FPU_BASE_REGISTER}, {disp}")

    def _eval_binop(self, node: BinOp) -> _Value:
        lhs, rhs = node.lhs, node.rhs
        lhs_simple = self._is_simple(lhs)
        rhs_simple = self._is_simple(rhs)
        trigger = _FPU_TRIG_OFF[node.op]

        if lhs_simple and rhs_simple:
            self._emit_fpu_store(_FPU_OPA_OFF)
            self._feed_simple(lhs)
            self._emit_fpu_store(trigger)
            self._feed_simple(rhs)
        elif not lhs_simple and rhs_simple:
            left = self._eval(lhs)  # pending at the LDQ head
            self._emit_fpu_store(_FPU_OPA_OFF)
            self._consume(left)
            self._emit_fpu_store(trigger)
            self._feed_simple(rhs)
        elif lhs_simple and not rhs_simple:
            if node.commutative:
                right = self._eval(rhs)
                self._emit_fpu_store(_FPU_OPA_OFF)
                self._consume(right)
                self._emit_fpu_store(trigger)
                self._feed_simple(lhs)
            else:
                right = self._force_reg(self._eval(rhs))
                self._emit_fpu_store(_FPU_OPA_OFF)
                self._feed_simple(lhs)
                self._emit_fpu_store(trigger)
                self._consume(right)
        else:
            left = self._force_reg(self._eval(lhs))
            right = self._eval(rhs)
            self._emit_fpu_store(_FPU_OPA_OFF)
            self._consume(left)
            self._emit_fpu_store(trigger)
            self._consume(right)
        tag = self._emit_load(FPU_BASE_REGISTER, str(_FPU_RESULT_OFF), "fpu")
        return _Value(kind="ldq", tag=tag)


class KernelCompiler(_EmitterBase):
    """Compiles one classic kernel.  Instantiate per kernel; single use."""

    def __init__(self, kernel: Kernel):
        super().__init__(kernel)

        # ---- register assignment ----------------------------------------
        pool = list(_POOL)
        self.induction_regs: dict[int, int] = {}  # mult -> register
        for mult in sorted(self._distinct_mults()):
            if not pool:
                raise CompileError(
                    f"{self.label}: too many distinct strides for the pool"
                )
            self.induction_regs[mult] = pool.pop(0)
        self.scalar_regs: dict[str, int] = {}
        for name in kernel.scalars:
            if not pool:
                raise CompileError(f"{self.label}: too many loop-carried scalars")
            self.scalar_regs[name] = pool.pop(0)
        # Constants: keep them in registers when the pool allows at least
        # two scratch registers; otherwise address them via a pool base.
        self.const_regs: dict[str, int] = {}
        self.const_pool_reg: int | None = None
        self.const_order = list(kernel.consts)
        if kernel.consts:
            if len(kernel.consts) <= max(0, len(pool) - 2):
                for name in self.const_order:
                    self.const_regs[name] = pool.pop(0)
            else:
                if not pool:
                    raise CompileError(f"{self.label}: no register for const pool")
                self.const_pool_reg = pool.pop(0)
        self._scratch_free = pool

    # ------------------------------------------------------------------
    # Shape analysis
    # ------------------------------------------------------------------
    def _distinct_mults(self) -> set[int]:
        mults: set[int] = set()

        def note(index) -> None:
            if isinstance(index, Affine):
                if index.mult == 0:
                    raise CompileError(
                        f"{self.label}: loop-invariant array accesses must be "
                        "hoisted into scalars (mult=0 unsupported)"
                    )
                if index.mult != 1:
                    mults.add(index.mult)
            elif isinstance(index, Indirect):
                note(index.index)

        def walk(expr: Expr) -> None:
            if isinstance(expr, Load):
                note(expr.index)
            elif isinstance(expr, LoadIndirect):
                note(expr.pointer)
            elif isinstance(expr, BinOp):
                walk(expr.lhs)
                walk(expr.rhs)

        for statement in self.kernel.statements:
            if isinstance(statement, Store):
                note(statement.index)
                walk(statement.expr)
            else:
                assert isinstance(statement, ScalarUpdate)
                walk(statement.expr)
        return mults

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def _affine_operand(self, array: str, index: Affine) -> tuple[int, str]:
        """(base register, displacement expression) for an affine access."""
        reg = 0 if index.mult == 1 else self.induction_regs[index.mult]
        byte_offset = _WORD * index.offset
        if byte_offset == 0:
            return reg, array
        if byte_offset > 0:
            return reg, f"{array}+{byte_offset}"
        return reg, f"{array}-{-byte_offset}"

    def _emit_indirect_address(self, array: str, pointer: Indirect) -> int:
        """Compute ``&array[ix[...] + offset]`` into a scratch register."""
        base_reg, disp = self._affine_operand(pointer.index_array, pointer.index)
        tag = self._emit_load(base_reg, disp, "index")
        scratch = self._alloc_scratch()
        self._emit_popq(scratch, tag)
        self._emit(f"slli r{scratch}, r{scratch}, 2")
        byte_offset = _WORD * pointer.offset
        target = array if byte_offset == 0 else f"{array}+{byte_offset}"
        self._emit(f"addi r{scratch}, r{scratch}, {target}")
        return scratch

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _is_simple(self, expr: Expr) -> bool:
        """Simple expressions feed an FPU operand without popping the LDQ."""
        if isinstance(expr, Load) and isinstance(expr.index, Affine):
            return True
        if isinstance(expr, ScalarRef):
            return True
        if isinstance(expr, ConstRef):
            return True  # register or pool-relative load, both push-only
        return False

    def _feed_simple(self, expr: Expr) -> None:
        """Evaluate a simple expression and push its value onto the SDQ.

        Must be called immediately after the matching FPU ``st`` so the
        store pair stays adjacent.
        """
        if isinstance(expr, Load):
            base_reg, disp = self._affine_operand(expr.array, expr.index)
            tag = self._emit_load(base_reg, disp, expr.array)
            self._emit_qtoq(tag)
        elif isinstance(expr, ConstRef):
            if expr.name not in self.kernel.consts:
                raise CompileError(
                    f"{self.label}: references undeclared constant "
                    f"'{expr.name}'"
                )
            reg = self.const_regs.get(expr.name)
            if reg is not None:
                self._emit(f"pushq r{reg}")
            else:
                assert self.const_pool_reg is not None
                offset = _WORD * self.const_order.index(expr.name)
                tag = self._emit_load(self.const_pool_reg, str(offset), expr.name)
                self._emit_qtoq(tag)
        elif isinstance(expr, ScalarRef):
            self._emit(f"pushq r{self.scalar_regs[expr.name]}")
        else:  # pragma: no cover - guarded by _is_simple
            raise AssertionError(f"{expr!r} is not simple")

    def _eval(self, expr: Expr) -> _Value:
        """Evaluate ``expr``; the result is pending in the LDQ or a reg."""
        if isinstance(expr, Load):
            base_reg, disp = self._affine_operand(expr.array, expr.index)
            tag = self._emit_load(base_reg, disp, expr.array)
            return _Value(kind="ldq", tag=tag)
        if isinstance(expr, LoadIndirect):
            scratch = self._emit_indirect_address(expr.array, expr.pointer)
            tag = self._emit_load(scratch, "0", f"{expr.array}[ind]")
            self._free_scratch(scratch)
            return _Value(kind="ldq", tag=tag)
        if isinstance(expr, ConstRef):
            if expr.name not in self.kernel.consts:
                raise CompileError(
                    f"{self.label}: references undeclared constant "
                    f"'{expr.name}'"
                )
            reg = self.const_regs.get(expr.name)
            if reg is not None:
                return _Value(kind="reg", reg=reg)
            assert self.const_pool_reg is not None
            offset = _WORD * self.const_order.index(expr.name)
            tag = self._emit_load(self.const_pool_reg, str(offset), expr.name)
            return _Value(kind="ldq", tag=tag)
        if isinstance(expr, ScalarRef):
            return _Value(kind="reg", reg=self.scalar_regs[expr.name])
        if isinstance(expr, BinOp):
            return self._eval_binop(expr)
        raise AssertionError(f"unhandled expression {expr!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _emit_statement(self, statement: Statement) -> None:
        if isinstance(statement, Store):
            if isinstance(statement.index, Indirect):
                address_reg = self._emit_indirect_address(
                    statement.array, statement.index
                )
                value = self._eval(statement.expr)
                self._emit(f"st r{address_reg}, 0")
                self._consume(value)
                self._free_scratch(address_reg)
            else:
                value = self._eval(statement.expr)
                base_reg, disp = self._affine_operand(
                    statement.array, statement.index
                )
                self._emit(f"st r{base_reg}, {disp}")
                self._consume(value)
        elif isinstance(statement, ScalarUpdate):
            value = self._eval(statement.expr)
            target = self.scalar_regs[statement.name]
            if value.kind == "ldq":
                self._emit_popq(target, value.tag)
            else:
                assert value.reg is not None
                if value.reg != target:
                    self._emit(f"mov r{target}, r{value.reg}")
                if value.temp:
                    self._free_scratch(value.reg)
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {statement!r}")

    # ------------------------------------------------------------------
    # Whole-kernel compilation
    # ------------------------------------------------------------------
    def compile(self) -> CompiledKernel:
        kernel = self.kernel
        label = self.label

        # ---- preamble ---------------------------------------------------
        preamble: list[str] = ["li r0, 0"]
        load_tags: list[str] = []
        pop_lines: list[str] = []
        self.lines = preamble  # temporarily collect into the preamble
        for position, name in enumerate(self.const_order):
            reg = self.const_regs.get(name)
            if reg is None:
                continue
            offset = _WORD * position
            disp = f"{label}.consts+{offset}" if offset else f"{label}.consts"
            load_tags.append(self._emit_load(0, disp, name))
            pop_lines.append((reg, load_tags[-1]))
        for position, name in enumerate(kernel.scalars):
            offset = _WORD * position
            disp = f"{label}.sinit+{offset}" if offset else f"{label}.sinit"
            load_tags.append(self._emit_load(0, disp, name))
            pop_lines.append((self.scalar_regs[name], load_tags[-1]))
        for reg, tag in pop_lines:
            self._emit_popq(reg, tag)
        if self.const_pool_reg is not None:
            preamble.append(f"la r{self.const_pool_reg}, {label}.consts")
        preamble.append(f"li r1, {kernel.iterations}")
        for mult, reg in sorted(self.induction_regs.items()):
            preamble.append(f"li r{reg}, 0")
        preamble.append(f"lbr b0, {label}.loop")

        # ---- loop body ----------------------------------------------------
        body: list[str] = []
        self.lines = body
        for statement in kernel.statements:
            self._emit_statement(statement)
        if self._ldq_model:
            raise CompileError(
                f"{label}: values left pending in the LDQ at end of body: "
                f"{list(self._ldq_model)}"
            )

        increments = ["addi r0, r0, 4"]
        for mult, reg in sorted(self.induction_regs.items()):
            increments.append(f"addi r{reg}, r{reg}, {4 * mult}")
        tail_budget = _MAX_DELAY - len(increments)
        if tail_budget < 0:
            raise CompileError(f"{label}: too many induction updates for delay slots")
        tail_count = min(tail_budget, len(body), 4)
        delay = tail_count + len(increments)
        split = len(body) - tail_count
        loop_body = (
            body[:split]
            + ["subi r1, r1, 1", f"pbrne b0, r1, {delay}"]
            + body[split:]
            + increments
        )

        # ---- epilogue: write back scalar results ---------------------------
        epilogue: list[str] = []
        if kernel.scalars:
            epilogue.append("li r0, 0")
            for position, name in enumerate(kernel.scalars):
                offset = _WORD * position
                disp = f"{label}.result+{offset}" if offset else f"{label}.result"
                epilogue.append(f"st r0, {disp}")
                epilogue.append(f"pushq r{self.scalar_regs[name]}")

        # ---- data ----------------------------------------------------------
        data: list[str] = ["        .align 4"]
        if kernel.consts:
            values = ", ".join(repr(float(kernel.consts[n])) for n in self.const_order)
            data.append(f"{label}.consts: .float {values}")
        if kernel.scalars:
            values = ", ".join(repr(float(v)) for v in kernel.scalars.values())
            data.append(f"{label}.sinit: .float {values}")
            data.append(f"{label}.result: .space {4 * len(kernel.scalars)}")

        return CompiledKernel(
            kernel=kernel,
            preamble=preamble,
            loop_body=loop_body,
            epilogue=epilogue,
            data=data,
        )


class StructuredCompiler(_EmitterBase):
    """Compiles one extended kernel with general control flow.

    Instantiate per kernel; single use.  The lowering is deliberately
    simple and uniform — correctness and queue discipline over cycle
    counts — since structured kernels exist to diversify workloads and
    fuzz the engines, not to reproduce the paper's figures.
    """

    def __init__(self, kernel: Kernel):
        super().__init__(kernel)
        if kernel.iterations > 0x7FFF:
            raise CompileError(
                f"{self.label}: {kernel.iterations} iterations do not fit "
                "a 16-bit trip-count immediate"
            )
        self._block_counter = 0

        # ---- register assignment ----------------------------------------
        # Loop variables (outer ``i`` first, nested vars in first-seen
        # order), then float scalars, then integer scalars; the rest of
        # r0-r5 is scratch.  Two scratch registers is the floor for the
        # expression strategies below.
        pool = [0, 1, 2, 3, 4, 5]
        self.var_regs: dict[str, int] = {}
        for var in [OUTER_LOOP_VAR] + self._nested_loop_vars():
            if var in self.var_regs:
                continue
            if not pool:
                raise CompileError(
                    f"{self.label}: too many nested loop variables for the "
                    "register pool"
                )
            self.var_regs[var] = pool.pop(0)
        self.scalar_regs: dict[str, int] = {}
        for name in kernel.scalars:
            if not pool:
                raise CompileError(f"{self.label}: too many loop-carried scalars")
            self.scalar_regs[name] = pool.pop(0)
        self.int_scalar_regs: dict[str, int] = {}
        for name in kernel.int_scalars:
            if not pool:
                raise CompileError(
                    f"{self.label}: too many integer loop-carried scalars"
                )
            self.int_scalar_regs[name] = pool.pop(0)
        if len(pool) < 2:
            raise CompileError(
                f"{self.label}: fewer than two scratch registers left "
                f"({len(pool)}) — reduce loop depth or scalar count"
            )
        self._scratch_free = pool
        self.const_order = list(kernel.consts)

    def _nested_loop_vars(self) -> list[str]:
        ordered: list[str] = []
        for statement in self.kernel.all_statements():
            if isinstance(statement, Loop) and statement.var not in ordered:
                ordered.append(statement.var)
        return ordered

    def _fresh_block(self, hint: str) -> str:
        self._block_counter += 1
        return f"{self.label}.{hint}{self._block_counter}"

    # ------------------------------------------------------------------
    # Integer expression evaluation
    # ------------------------------------------------------------------
    def _free_int(self, value: _IntValue) -> None:
        if value.temp:
            self._free_scratch(value.reg)

    def _eval_int(self, expr: IntExpr) -> _IntValue:
        """Evaluate an integer expression into a register.

        Integer evaluation never leaves values pending in the LDQ (loads
        are popped immediately), so it is safe anywhere the symbolic
        queue model is empty — which the statement emitters guarantee.
        """
        if isinstance(expr, IntConst):
            reg = self._alloc_scratch()
            self._emit(f"li r{reg}, {expr.value}")
            return _IntValue(reg=reg, temp=True)
        if isinstance(expr, IndexRef):
            return _IntValue(reg=self.var_regs[expr.var])
        if isinstance(expr, IntScalarRef):
            return _IntValue(reg=self.int_scalar_regs[expr.name])
        if isinstance(expr, IntLoad):
            index = self._eval_int(expr.index)
            address = index.reg if index.temp else self._alloc_scratch()
            self._emit(f"slli r{address}, r{index.reg}, 2")
            self._emit(f"addi r{address}, r{address}, {expr.array}")
            tag = self._emit_load(address, "0", f"{expr.array}[int]")
            self._emit_popq(address, tag)
            return _IntValue(reg=address, temp=True)
        if isinstance(expr, IntBinOp):
            return self._eval_int_binop(expr)
        raise AssertionError(f"unhandled int expression {expr!r}")

    def _eval_int_binop(self, node: IntBinOp) -> _IntValue:
        rr_op, ri_op = _INT_OP_MNEMONICS[node.op]
        # Immediate form when the right operand is a literal whose
        # encoding matches the DSL's 32-bit semantics.
        if isinstance(node.rhs, IntConst) and (
            node.op not in _ZERO_EXTENDED_IMM_OPS or node.rhs.value >= 0
        ):
            left = self._eval_int(node.lhs)
            dest = left.reg if left.temp else self._alloc_scratch()
            self._emit(f"{ri_op} r{dest}, r{left.reg}, {node.rhs.value}")
            return _IntValue(reg=dest, temp=True)
        left = self._eval_int(node.lhs)
        right = self._eval_int(node.rhs)
        if left.temp:
            dest = left.reg
        elif right.temp:
            dest = right.reg
        else:
            dest = self._alloc_scratch()
        self._emit(f"{rr_op} r{dest}, r{left.reg}, r{right.reg}")
        if left.temp and dest != left.reg:  # pragma: no cover - defensive
            self._free_scratch(left.reg)
        if right.temp and dest != right.reg:
            self._free_scratch(right.reg)
        return _IntValue(reg=dest, temp=True)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def _emit_scaled(self, source_reg: int, factor: int) -> int:
        """Compute ``factor * source_reg`` into a fresh scratch register.

        ``factor`` is decomposed into shifts and adds (the ISA has no
        integer multiply).
        """
        if factor <= 0:
            raise CompileError(
                f"{self.label}: cannot scale by non-positive factor {factor}"
            )
        dest = self._alloc_scratch()
        bits = [position for position in range(32) if factor >> position & 1]
        first = bits.pop(0)
        if first:
            self._emit(f"slli r{dest}, r{source_reg}, {first}")
        else:
            self._emit(f"mov r{dest}, r{source_reg}")
        for position in bits:
            part = self._alloc_scratch()
            self._emit(f"slli r{part}, r{source_reg}, {position}")
            self._emit(f"add r{dest}, r{dest}, r{part}")
            self._free_scratch(part)
        return dest

    @staticmethod
    def _symbol_plus(array: str, byte_offset: int) -> str:
        if byte_offset == 0:
            return array
        if byte_offset > 0:
            return f"{array}+{byte_offset}"
        return f"{array}-{-byte_offset}"

    def _emit_address(self, array: str, index) -> int:
        """Compute ``&array[index]`` into a scratch register.

        Must be called with the symbolic LDQ empty (integer loads pop
        immediately).
        """
        if isinstance(index, Affine):
            var_reg = self.var_regs[OUTER_LOOP_VAR]
            # byte offset = (4 * mult) * i, folded into one scaling pass
            address = self._emit_scaled(var_reg, _WORD * index.mult)
            target = self._symbol_plus(array, _WORD * index.offset)
            self._emit(f"addi r{address}, r{address}, {target}")
            return address
        if isinstance(index, Computed):
            element = self._eval_int(index.expr)
            address = element.reg if element.temp else self._alloc_scratch()
            self._emit(f"slli r{address}, r{element.reg}, 2")
            self._emit(f"addi r{address}, r{address}, {array}")
            return address
        if isinstance(index, Indirect):
            pointer_address = self._emit_address(
                index.index_array, index.index
            )
            tag = self._emit_load(pointer_address, "0", "index")
            self._emit_popq(pointer_address, tag)
            self._emit(f"slli r{pointer_address}, r{pointer_address}, 2")
            target = self._symbol_plus(array, _WORD * index.offset)
            self._emit(f"addi r{pointer_address}, r{pointer_address}, {target}")
            return pointer_address
        raise AssertionError(f"unhandled index form {index!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Float expression evaluation
    # ------------------------------------------------------------------
    def _is_simple(self, expr: Expr) -> bool:
        """Simple expressions push exactly one value without popping
        pending LDQ entries; all structured leaves qualify."""
        return isinstance(expr, (Load, LoadIndirect, ConstRef, ScalarRef))

    def _feed_simple(self, expr: Expr) -> None:
        value = self._eval(expr)
        self._consume(value)

    def _eval(self, expr: Expr) -> _Value:
        if isinstance(expr, Load):
            address = self._emit_address(expr.array, expr.index)
            tag = self._emit_load(address, "0", expr.array)
            self._free_scratch(address)
            return _Value(kind="ldq", tag=tag)
        if isinstance(expr, LoadIndirect):
            address = self._emit_address(expr.array, expr.pointer)
            tag = self._emit_load(address, "0", f"{expr.array}[ind]")
            self._free_scratch(address)
            return _Value(kind="ldq", tag=tag)
        if isinstance(expr, ConstRef):
            if expr.name not in self.kernel.consts:
                raise CompileError(
                    f"{self.label}: references undeclared constant "
                    f"'{expr.name}'"
                )
            offset = _WORD * self.const_order.index(expr.name)
            disp = (
                f"{self.label}.consts+{offset}"
                if offset
                else f"{self.label}.consts"
            )
            zero = self._alloc_scratch()
            self._emit(f"li r{zero}, 0")
            tag = self._emit_load(zero, disp, expr.name)
            self._free_scratch(zero)
            return _Value(kind="ldq", tag=tag)
        if isinstance(expr, ScalarRef):
            return _Value(kind="reg", reg=self.scalar_regs[expr.name])
        if isinstance(expr, BinOp):
            return self._eval_binop(expr)
        raise AssertionError(f"unhandled expression {expr!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Statements and control flow
    # ------------------------------------------------------------------
    def _emit_branch(self, mnemonic: str, target_label: str, condition) -> None:
        """Reload ``b1`` and prepare a zero-delay branch."""
        self._emit(f"lbr b{_STRUCT_BRANCH_REG}, {target_label}")
        if condition is None:
            self._emit(f"pbra b{_STRUCT_BRANCH_REG}, 0")
        else:
            self._emit(f"{mnemonic} b{_STRUCT_BRANCH_REG}, r{condition}, 0")

    def _emit_label(self, label: str) -> None:
        self._emit(f"{label}:")

    def _emit_block(self, statements) -> None:
        for statement in statements:
            self._emit_statement(statement)
            if self._ldq_model:
                raise CompileError(
                    f"{self.label}: values left pending in the LDQ after "
                    f"{type(statement).__name__}: {list(self._ldq_model)}"
                )

    def _emit_statement(self, statement: Statement) -> None:
        if isinstance(statement, Store):
            address = self._emit_address(statement.array, statement.index)
            value = self._eval(statement.expr)
            self._emit(f"st r{address}, 0")
            self._consume(value)
            self._free_scratch(address)
        elif isinstance(statement, IntStore):
            address = self._emit_address(statement.array, statement.index)
            value = self._eval_int(statement.expr)
            self._emit(f"st r{address}, 0")
            self._emit(f"pushq r{value.reg}")
            self._free_int(value)
            self._free_scratch(address)
        elif isinstance(statement, ScalarUpdate):
            value = self._eval(statement.expr)
            target = self.scalar_regs[statement.name]
            if value.kind == "ldq":
                self._emit_popq(target, value.tag)
            else:
                assert value.reg is not None
                if value.reg != target:
                    self._emit(f"mov r{target}, r{value.reg}")
                if value.temp:
                    self._free_scratch(value.reg)
        elif isinstance(statement, IntScalarUpdate):
            value = self._eval_int(statement.expr)
            target = self.int_scalar_regs[statement.name]
            if value.reg != target:
                self._emit(f"mov r{target}, r{value.reg}")
            self._free_int(value)
        elif isinstance(statement, Loop):
            var_reg = self.var_regs[statement.var]
            head = self._fresh_block("for")
            self._emit(f"li r{var_reg}, 0")
            self._emit_label(head)
            self._emit_block(statement.body)
            self._emit(f"addi r{var_reg}, r{var_reg}, 1")
            test = self._alloc_scratch()
            self._emit(f"snei r{test}, r{var_reg}, {statement.trips}")
            self._emit_branch("pbrne", head, test)
            self._free_scratch(test)
        elif isinstance(statement, If):
            condition = self._eval_int(statement.cond)
            end = self._fresh_block("fi")
            target = self._fresh_block("else") if statement.orelse else end
            self._emit_branch("pbreq", target, condition.reg)
            self._free_int(condition)
            self._emit_block(statement.then)
            if statement.orelse:
                self._emit_branch("pbra", end, None)
                self._emit_label(target)
                self._emit_block(statement.orelse)
            self._emit_label(end)
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {statement!r}")

    # ------------------------------------------------------------------
    # Whole-kernel compilation
    # ------------------------------------------------------------------
    def compile(self) -> CompiledKernel:
        kernel = self.kernel
        label = self.label

        # ---- preamble ---------------------------------------------------
        preamble: list[str] = []
        self.lines = preamble
        for name, reg in self.int_scalar_regs.items():
            value = kernel.int_scalars[name] & 0xFFFFFFFF
            low, high = value & 0xFFFF, value >> 16
            signed_low = low - 0x10000 if low & 0x8000 else low
            self._emit(f"li r{reg}, {signed_low}")
            if (signed_low & 0xFFFFFFFF) >> 16 != high:
                self._emit(f"lih r{reg}, {high}")
        if kernel.scalars:
            zero = self._alloc_scratch()
            self._emit(f"li r{zero}, 0")
            pending: list[tuple[int, str]] = []
            for position, name in enumerate(kernel.scalars):
                offset = _WORD * position
                disp = f"{label}.sinit+{offset}" if offset else f"{label}.sinit"
                pending.append(
                    (self.scalar_regs[name], self._emit_load(zero, disp, name))
                )
            for reg, tag in pending:
                self._emit_popq(reg, tag)
            self._free_scratch(zero)
        outer_reg = self.var_regs[OUTER_LOOP_VAR]
        self._emit(f"li r{outer_reg}, 0")

        # ---- outer loop body --------------------------------------------
        body: list[str] = []
        self.lines = body
        self._emit_block(kernel.statements)
        self._emit(f"addi r{outer_reg}, r{outer_reg}, 1")
        test = self._alloc_scratch()
        self._emit(f"snei r{test}, r{outer_reg}, {kernel.iterations}")
        self._emit_branch("pbrne", f"{label}.loop", test)
        self._free_scratch(test)

        # ---- epilogue: write back scalar results -------------------------
        epilogue: list[str] = []
        self.lines = epilogue
        if kernel.scalars or kernel.int_scalars:
            zero = self._alloc_scratch()
            self._emit(f"li r{zero}, 0")
            for position, name in enumerate(kernel.scalars):
                offset = _WORD * position
                disp = f"{label}.result+{offset}" if offset else f"{label}.result"
                self._emit(f"st r{zero}, {disp}")
                self._emit(f"pushq r{self.scalar_regs[name]}")
            for position, name in enumerate(kernel.int_scalars):
                offset = _WORD * position
                disp = (
                    f"{label}.iresult+{offset}" if offset else f"{label}.iresult"
                )
                self._emit(f"st r{zero}, {disp}")
                self._emit(f"pushq r{self.int_scalar_regs[name]}")
            self._free_scratch(zero)

        # ---- data --------------------------------------------------------
        data: list[str] = ["        .align 4"]
        if kernel.consts:
            values = ", ".join(
                repr(float(kernel.consts[name])) for name in self.const_order
            )
            data.append(f"{label}.consts: .float {values}")
        if kernel.scalars:
            values = ", ".join(repr(float(v)) for v in kernel.scalars.values())
            data.append(f"{label}.sinit: .float {values}")
            data.append(f"{label}.result: .space {4 * len(kernel.scalars)}")
        if kernel.int_scalars:
            data.append(f"{label}.iresult: .space {4 * len(kernel.int_scalars)}")

        return CompiledKernel(
            kernel=kernel,
            preamble=preamble,
            loop_body=body,
            epilogue=epilogue,
            data=data,
        )


def compile_kernel(kernel: Kernel) -> CompiledKernel:
    """Compile one kernel to its assembly fragments.

    Classic kernels take the software-pipelined path (byte-identical to
    the original compiler); extended kernels take the structured path.
    """
    if kernel.is_classic:
        return KernelCompiler(kernel).compile()
    return StructuredCompiler(kernel).compile()
