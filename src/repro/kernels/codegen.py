"""Code generation: Livermore kernel DSL → PIPE assembly.

This is a miniature version of the PIPE compiler the paper used.  It
lowers each :class:`~repro.kernels.dsl.Kernel` to a single inner loop of
PIPE assembly with the idioms the architecture is built around:

* array accesses become single ``ld``/``st`` instructions off induction
  registers (``r0`` holds ``4*i``; additional induction registers are
  kept for non-unit strides, strength-reduced in the delay slots);
* every FPU operation is a store pair to the memory-mapped FPU followed
  by a load of the result, so each float multiply/add generates the high
  data-request rate the paper's evaluation depends on (section 5);
* intermediate values ride the architectural load-data queue (register
  7) wherever FIFO order allows, and are popped to scratch registers
  only when a second pending value would break queue order — the
  compiler simulates the LDQ symbolically during emission and *asserts*
  the FIFO discipline, so a miscompile fails loudly at build time;
* loops end in a prepare-to-branch whose delay slots are filled with the
  tail of the loop body plus the induction updates, exactly the style
  section 3.1.3 describes (the compiler "can easily generate code with
  an average of 4 instructions ... after a branch").

Register convention (visible set r0–r7):

====  =======================================================
r0    primary induction: byte offset ``4*i``
r1    trip counter, counting down to zero
r2-5  pool: extra inductions, scalars, constants, scratch
r6    FPU window base (set once by the suite preamble)
r7    the architectural queue register
====  =======================================================
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..memory.fpu import FPU_BASE
from .dsl import (
    Affine,
    BinOp,
    ConstRef,
    Expr,
    Indirect,
    Kernel,
    Load,
    LoadIndirect,
    ScalarRef,
    ScalarUpdate,
    Statement,
    Store,
)

__all__ = ["CompileError", "CompiledKernel", "KernelCompiler", "FPU_BASE_REGISTER"]

#: Register that permanently holds the FPU window base for the whole program.
FPU_BASE_REGISTER = 6

_POOL = (2, 3, 4, 5)
_WORD = 4
_FPU_OPA_OFF = 0x00
_FPU_TRIG_OFF = {"+": 0x04, "-": 0x08, "*": 0x0C, "/": 0x10}
_FPU_RESULT_OFF = 0x20
_MAX_DELAY = 7


class CompileError(Exception):
    """The kernel does not fit the compiler's register budget/shape."""


@dataclass
class CompiledKernel:
    """Assembly text plus bookkeeping for one kernel."""

    kernel: Kernel
    preamble: list[str]
    loop_body: list[str]  #: everything between the inner-loop markers
    epilogue: list[str]
    data: list[str]

    @property
    def text_lines(self) -> list[str]:
        label = self.kernel.label
        lines = [f"{label}:"]
        lines += [f"        {line}" for line in self.preamble]
        lines.append(f"        .marker {label}.inner.begin")
        lines.append(f"{label}.loop:")
        lines += [f"        {line}" for line in self.loop_body]
        lines.append(f"        .marker {label}.inner.end")
        lines += [f"        {line}" for line in self.epilogue]
        return lines

    @property
    def body_instruction_count(self) -> int:
        return len(self.loop_body)


@dataclass
class _Value:
    """Where an evaluated FP expression's value currently lives."""

    kind: str  #: "ldq" (pending in the load data queue) or "reg"
    reg: int | None = None
    temp: bool = False  #: reg is a scratch to free after consumption
    tag: str = ""  #: symbolic LDQ tag (FIFO assertion)


class KernelCompiler:
    """Compiles one kernel.  Instantiate per kernel; single use."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.label = kernel.label
        self.lines: list[str] = []
        self._ldq_model: deque[str] = deque()
        self._tag_counter = 0

        # ---- register assignment ----------------------------------------
        pool = list(_POOL)
        self.induction_regs: dict[int, int] = {}  # mult -> register
        for mult in sorted(self._distinct_mults()):
            if not pool:
                raise CompileError(
                    f"{self.label}: too many distinct strides for the pool"
                )
            self.induction_regs[mult] = pool.pop(0)
        self.scalar_regs: dict[str, int] = {}
        for name in kernel.scalars:
            if not pool:
                raise CompileError(f"{self.label}: too many loop-carried scalars")
            self.scalar_regs[name] = pool.pop(0)
        # Constants: keep them in registers when the pool allows at least
        # two scratch registers; otherwise address them via a pool base.
        self.const_regs: dict[str, int] = {}
        self.const_pool_reg: int | None = None
        self.const_order = list(kernel.consts)
        if kernel.consts:
            if len(kernel.consts) <= max(0, len(pool) - 2):
                for name in self.const_order:
                    self.const_regs[name] = pool.pop(0)
            else:
                if not pool:
                    raise CompileError(f"{self.label}: no register for const pool")
                self.const_pool_reg = pool.pop(0)
        self._scratch_free = pool

    # ------------------------------------------------------------------
    # Shape analysis
    # ------------------------------------------------------------------
    def _distinct_mults(self) -> set[int]:
        mults: set[int] = set()

        def note(index) -> None:
            if isinstance(index, Affine):
                if index.mult == 0:
                    raise CompileError(
                        f"{self.label}: loop-invariant array accesses must be "
                        "hoisted into scalars (mult=0 unsupported)"
                    )
                if index.mult != 1:
                    mults.add(index.mult)
            elif isinstance(index, Indirect):
                note(index.index)

        def walk(expr: Expr) -> None:
            if isinstance(expr, Load):
                note(expr.index)
            elif isinstance(expr, LoadIndirect):
                note(expr.pointer)
            elif isinstance(expr, BinOp):
                walk(expr.lhs)
                walk(expr.rhs)

        for statement in self.kernel.statements:
            if isinstance(statement, Store):
                note(statement.index)
                walk(statement.expr)
            else:
                assert isinstance(statement, ScalarUpdate)
                walk(statement.expr)
        return mults

    # ------------------------------------------------------------------
    # Emission helpers (with a symbolic LDQ model asserting FIFO order)
    # ------------------------------------------------------------------
    def _emit(self, line: str) -> None:
        self.lines.append(line)

    def _fresh_tag(self, hint: str) -> str:
        self._tag_counter += 1
        return f"{hint}#{self._tag_counter}"

    def _emit_load(self, base_reg: int, displacement: str, hint: str) -> str:
        """Emit ``ld`` and push its tag on the symbolic LDQ."""
        tag = self._fresh_tag(hint)
        self._emit(f"ld r{base_reg}, {displacement}")
        self._ldq_model.append(tag)
        return tag

    def _assert_pop(self, expected_tag: str, what: str) -> None:
        if not self._ldq_model:
            raise CompileError(f"{self.label}: {what} pops an empty LDQ")
        head = self._ldq_model.popleft()
        if head != expected_tag:
            raise CompileError(
                f"{self.label}: LDQ order violation — {what} expected "
                f"{expected_tag} but the queue head is {head}"
            )

    def _emit_qtoq(self, expected_tag: str) -> None:
        self._assert_pop(expected_tag, "qtoq")
        self._emit("qtoq")

    def _emit_popq(self, reg: int, expected_tag: str) -> None:
        self._assert_pop(expected_tag, f"popq r{reg}")
        self._emit(f"popq r{reg}")

    def _alloc_scratch(self) -> int:
        if not self._scratch_free:
            raise CompileError(
                f"{self.label}: out of scratch registers — the expression "
                "tree is too deep for the pool; split the statement"
            )
        return self._scratch_free.pop(0)

    def _free_scratch(self, reg: int) -> None:
        self._scratch_free.insert(0, reg)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def _affine_operand(self, array: str, index: Affine) -> tuple[int, str]:
        """(base register, displacement expression) for an affine access."""
        reg = 0 if index.mult == 1 else self.induction_regs[index.mult]
        byte_offset = _WORD * index.offset
        if byte_offset == 0:
            return reg, array
        if byte_offset > 0:
            return reg, f"{array}+{byte_offset}"
        return reg, f"{array}-{-byte_offset}"

    def _emit_indirect_address(self, array: str, pointer: Indirect) -> int:
        """Compute ``&array[ix[...] + offset]`` into a scratch register."""
        base_reg, disp = self._affine_operand(pointer.index_array, pointer.index)
        tag = self._emit_load(base_reg, disp, "index")
        scratch = self._alloc_scratch()
        self._emit_popq(scratch, tag)
        self._emit(f"slli r{scratch}, r{scratch}, 2")
        byte_offset = _WORD * pointer.offset
        target = array if byte_offset == 0 else f"{array}+{byte_offset}"
        self._emit(f"addi r{scratch}, r{scratch}, {target}")
        return scratch

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _is_simple(self, expr: Expr) -> bool:
        """Simple expressions feed an FPU operand without popping the LDQ."""
        if isinstance(expr, (Load, ScalarRef)):
            return True
        if isinstance(expr, ConstRef):
            return True  # register or pool-relative load, both push-only
        return False

    def _feed_simple(self, expr: Expr) -> None:
        """Evaluate a simple expression and push its value onto the SDQ.

        Must be called immediately after the matching FPU ``st`` so the
        store pair stays adjacent.
        """
        if isinstance(expr, Load):
            base_reg, disp = self._affine_operand(expr.array, expr.index)
            tag = self._emit_load(base_reg, disp, expr.array)
            self._emit_qtoq(tag)
        elif isinstance(expr, ConstRef):
            reg = self.const_regs.get(expr.name)
            if reg is not None:
                self._emit(f"pushq r{reg}")
            else:
                assert self.const_pool_reg is not None
                offset = _WORD * self.const_order.index(expr.name)
                tag = self._emit_load(self.const_pool_reg, str(offset), expr.name)
                self._emit_qtoq(tag)
        elif isinstance(expr, ScalarRef):
            self._emit(f"pushq r{self.scalar_regs[expr.name]}")
        else:  # pragma: no cover - guarded by _is_simple
            raise AssertionError(f"{expr!r} is not simple")

    def _consume(self, value: _Value) -> None:
        """Push an already-evaluated value onto the SDQ."""
        if value.kind == "ldq":
            self._emit_qtoq(value.tag)
        else:
            assert value.reg is not None
            self._emit(f"pushq r{value.reg}")
            if value.temp:
                self._free_scratch(value.reg)

    def _force_reg(self, value: _Value) -> _Value:
        """Ensure the value is in a register (popping the LDQ if pending)."""
        if value.kind == "reg":
            return value
        scratch = self._alloc_scratch()
        self._emit_popq(scratch, value.tag)
        return _Value(kind="reg", reg=scratch, temp=True)

    def _emit_fpu_store(self, offset: int) -> None:
        disp = str(offset) if offset else "0"
        self._emit(f"st r{FPU_BASE_REGISTER}, {disp}")

    def _eval(self, expr: Expr) -> _Value:
        """Evaluate ``expr``; the result is pending in the LDQ or a reg."""
        if isinstance(expr, Load):
            base_reg, disp = self._affine_operand(expr.array, expr.index)
            tag = self._emit_load(base_reg, disp, expr.array)
            return _Value(kind="ldq", tag=tag)
        if isinstance(expr, LoadIndirect):
            scratch = self._emit_indirect_address(expr.array, expr.pointer)
            tag = self._emit_load(scratch, "0", f"{expr.array}[ind]")
            self._free_scratch(scratch)
            return _Value(kind="ldq", tag=tag)
        if isinstance(expr, ConstRef):
            reg = self.const_regs.get(expr.name)
            if reg is not None:
                return _Value(kind="reg", reg=reg)
            assert self.const_pool_reg is not None
            offset = _WORD * self.const_order.index(expr.name)
            tag = self._emit_load(self.const_pool_reg, str(offset), expr.name)
            return _Value(kind="ldq", tag=tag)
        if isinstance(expr, ScalarRef):
            return _Value(kind="reg", reg=self.scalar_regs[expr.name])
        if isinstance(expr, BinOp):
            return self._eval_binop(expr)
        raise AssertionError(f"unhandled expression {expr!r}")  # pragma: no cover

    def _eval_binop(self, node: BinOp) -> _Value:
        lhs, rhs = node.lhs, node.rhs
        lhs_simple = self._is_simple(lhs)
        rhs_simple = self._is_simple(rhs)
        trigger = _FPU_TRIG_OFF[node.op]

        if lhs_simple and rhs_simple:
            self._emit_fpu_store(_FPU_OPA_OFF)
            self._feed_simple(lhs)
            self._emit_fpu_store(trigger)
            self._feed_simple(rhs)
        elif not lhs_simple and rhs_simple:
            left = self._eval(lhs)  # pending at the LDQ head
            self._emit_fpu_store(_FPU_OPA_OFF)
            self._consume(left)
            self._emit_fpu_store(trigger)
            self._feed_simple(rhs)
        elif lhs_simple and not rhs_simple:
            if node.commutative:
                right = self._eval(rhs)
                self._emit_fpu_store(_FPU_OPA_OFF)
                self._consume(right)
                self._emit_fpu_store(trigger)
                self._feed_simple(lhs)
            else:
                right = self._force_reg(self._eval(rhs))
                self._emit_fpu_store(_FPU_OPA_OFF)
                self._feed_simple(lhs)
                self._emit_fpu_store(trigger)
                self._consume(right)
        else:
            left = self._force_reg(self._eval(lhs))
            right = self._eval(rhs)
            self._emit_fpu_store(_FPU_OPA_OFF)
            self._consume(left)
            self._emit_fpu_store(trigger)
            self._consume(right)
        tag = self._emit_load(FPU_BASE_REGISTER, str(_FPU_RESULT_OFF), "fpu")
        return _Value(kind="ldq", tag=tag)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _emit_statement(self, statement: Statement) -> None:
        if isinstance(statement, Store):
            if isinstance(statement.index, Indirect):
                address_reg = self._emit_indirect_address(
                    statement.array, statement.index
                )
                value = self._eval(statement.expr)
                self._emit(f"st r{address_reg}, 0")
                self._consume(value)
                self._free_scratch(address_reg)
            else:
                value = self._eval(statement.expr)
                base_reg, disp = self._affine_operand(
                    statement.array, statement.index
                )
                self._emit(f"st r{base_reg}, {disp}")
                self._consume(value)
        elif isinstance(statement, ScalarUpdate):
            value = self._eval(statement.expr)
            target = self.scalar_regs[statement.name]
            if value.kind == "ldq":
                self._emit_popq(target, value.tag)
            else:
                assert value.reg is not None
                if value.reg != target:
                    self._emit(f"mov r{target}, r{value.reg}")
                if value.temp:
                    self._free_scratch(value.reg)
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {statement!r}")

    # ------------------------------------------------------------------
    # Whole-kernel compilation
    # ------------------------------------------------------------------
    def compile(self) -> CompiledKernel:
        kernel = self.kernel
        label = self.label

        # ---- preamble ---------------------------------------------------
        preamble: list[str] = ["li r0, 0"]
        load_tags: list[str] = []
        pop_lines: list[str] = []
        self.lines = preamble  # temporarily collect into the preamble
        for position, name in enumerate(self.const_order):
            reg = self.const_regs.get(name)
            if reg is None:
                continue
            offset = _WORD * position
            disp = f"{label}.consts+{offset}" if offset else f"{label}.consts"
            load_tags.append(self._emit_load(0, disp, name))
            pop_lines.append((reg, load_tags[-1]))
        for position, name in enumerate(kernel.scalars):
            offset = _WORD * position
            disp = f"{label}.sinit+{offset}" if offset else f"{label}.sinit"
            load_tags.append(self._emit_load(0, disp, name))
            pop_lines.append((self.scalar_regs[name], load_tags[-1]))
        for reg, tag in pop_lines:
            self._emit_popq(reg, tag)
        if self.const_pool_reg is not None:
            preamble.append(f"la r{self.const_pool_reg}, {label}.consts")
        preamble.append(f"li r1, {kernel.iterations}")
        for mult, reg in sorted(self.induction_regs.items()):
            preamble.append(f"li r{reg}, 0")
        preamble.append(f"lbr b0, {label}.loop")

        # ---- loop body ----------------------------------------------------
        body: list[str] = []
        self.lines = body
        for statement in kernel.statements:
            self._emit_statement(statement)
        if self._ldq_model:
            raise CompileError(
                f"{label}: values left pending in the LDQ at end of body: "
                f"{list(self._ldq_model)}"
            )

        increments = ["addi r0, r0, 4"]
        for mult, reg in sorted(self.induction_regs.items()):
            increments.append(f"addi r{reg}, r{reg}, {4 * mult}")
        tail_budget = _MAX_DELAY - len(increments)
        if tail_budget < 0:
            raise CompileError(f"{label}: too many induction updates for delay slots")
        tail_count = min(tail_budget, len(body), 4)
        delay = tail_count + len(increments)
        split = len(body) - tail_count
        loop_body = (
            body[:split]
            + ["subi r1, r1, 1", f"pbrne b0, r1, {delay}"]
            + body[split:]
            + increments
        )

        # ---- epilogue: write back scalar results ---------------------------
        epilogue: list[str] = []
        if kernel.scalars:
            epilogue.append("li r0, 0")
            for position, name in enumerate(kernel.scalars):
                offset = _WORD * position
                disp = f"{label}.result+{offset}" if offset else f"{label}.result"
                epilogue.append(f"st r0, {disp}")
                epilogue.append(f"pushq r{self.scalar_regs[name]}")

        # ---- data ----------------------------------------------------------
        data: list[str] = ["        .align 4"]
        if kernel.consts:
            values = ", ".join(repr(float(kernel.consts[n])) for n in self.const_order)
            data.append(f"{label}.consts: .float {values}")
        if kernel.scalars:
            values = ", ".join(repr(float(v)) for v in kernel.scalars.values())
            data.append(f"{label}.sinit: .float {values}")
            data.append(f"{label}.result: .space {4 * len(kernel.scalars)}")

        return CompiledKernel(
            kernel=kernel,
            preamble=preamble,
            loop_body=loop_body,
            epilogue=epilogue,
            data=data,
        )


def compile_kernel(kernel: Kernel) -> CompiledKernel:
    """Compile one kernel to its assembly fragments."""
    return KernelCompiler(kernel).compile()
