"""The benchmark workload: Livermore Loops 1-14 and their compiler.

* :mod:`repro.kernels.dsl` — the kernel description language;
* :mod:`repro.kernels.codegen` — DSL → PIPE assembly;
* :mod:`repro.kernels.loops` — the 14 loop definitions + shared arrays;
* :mod:`repro.kernels.reference` — float32-exact reference interpreter;
* :mod:`repro.kernels.suite` — assembles kernel suites into programs;
* :mod:`repro.kernels.generate` — seeded random well-formed kernels;
* :mod:`repro.kernels.serialize` — JSON round-trip for corpus files.
"""

from .codegen import (
    CompileError,
    CompiledKernel,
    KernelCompiler,
    StructuredCompiler,
    compile_kernel,
)
from .dsl import (
    Affine,
    ArrayDecl,
    BinOp,
    Computed,
    ConstRef,
    If,
    IndexRef,
    Indirect,
    IntBinOp,
    IntConst,
    IntLoad,
    IntScalarRef,
    IntScalarUpdate,
    IntStore,
    Kernel,
    KernelValidationError,
    Load,
    LoadIndirect,
    Loop,
    ScalarRef,
    ScalarUpdate,
    Store,
    add,
    div,
    mul,
    sub,
    validate_kernel,
)
from .loops import (
    PAPER_INNER_LOOP_BYTES,
    PAPER_TOTAL_INSTRUCTIONS,
    make_kernels,
    make_shared_arrays,
)
from .reference import f32, run_kernel_reference, run_suite_reference
from .suite import (
    KernelSuite,
    LivermoreSuite,
    build_kernel_suite,
    build_livermore_program,
    build_livermore_suite,
    cached_livermore_suite,
)

__all__ = [
    "Affine",
    "ArrayDecl",
    "BinOp",
    "CompileError",
    "CompiledKernel",
    "ConstRef",
    "Computed",
    "If",
    "IndexRef",
    "Indirect",
    "IntBinOp",
    "IntConst",
    "IntLoad",
    "IntScalarRef",
    "IntScalarUpdate",
    "IntStore",
    "Kernel",
    "KernelCompiler",
    "KernelSuite",
    "KernelValidationError",
    "LivermoreSuite",
    "Loop",
    "StructuredCompiler",
    "Load",
    "LoadIndirect",
    "PAPER_INNER_LOOP_BYTES",
    "PAPER_TOTAL_INSTRUCTIONS",
    "ScalarRef",
    "ScalarUpdate",
    "Store",
    "add",
    "build_kernel_suite",
    "build_livermore_program",
    "build_livermore_suite",
    "cached_livermore_suite",
    "compile_kernel",
    "div",
    "f32",
    "make_kernels",
    "make_shared_arrays",
    "mul",
    "run_kernel_reference",
    "run_suite_reference",
    "sub",
    "validate_kernel",
]
