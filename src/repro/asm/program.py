"""The :class:`Program` memory image produced by the assembler.

A program is a flat byte image together with:

* a symbol table (labels and ``.equ`` constants),
* the entry point,
* the instruction format it was encoded with,
* a *layout*: the address of every emitted instruction, in program order,
  which the analysis code uses to compute code footprints (Table I), and
* *markers*: named addresses emitted by ``.marker`` directives, used to
  delimit the inner loops of the Livermore kernels.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..isa.encoding import InstructionFormat
from ..isa.instruction import Instruction
from ..isa.predecode import PredecodedImage

__all__ = ["Program", "WORD_BYTES"]

#: Size of a machine word (and of a float32 datum) in bytes.
WORD_BYTES = 4


@dataclass
class Program:
    """An assembled memory image plus metadata.

    The image is addressed from 0; ``memory_size`` bounds all addresses the
    program may touch at run time (code, data, and anything it stores to,
    excluding memory-mapped device ranges, which are outside the image).
    """

    image: bytearray
    entry_point: int = 0
    fmt: InstructionFormat = InstructionFormat.FIXED32
    symbols: dict[str, int] = field(default_factory=dict)
    markers: dict[str, int] = field(default_factory=dict)
    layout: list[tuple[int, Instruction]] = field(default_factory=list)
    _predecoded: PredecodedImage | None = field(
        init=False, default=None, repr=False, compare=False
    )

    @property
    def memory_size(self) -> int:
        return len(self.image)

    @property
    def predecoded(self) -> PredecodedImage:
        """The shared decode table for this program's code image.

        Built once (seeded from the layout) and reused by every fetch
        frontend simulating this program, so hot loops never re-decode
        the same bytes.  Valid because the code image is read-only at
        run time — simulators mutate a private copy of the image.
        """
        if self._predecoded is None:
            self._predecoded = PredecodedImage(self.image, self.fmt, self.layout)
        return self._predecoded

    # ------------------------------------------------------------------
    # Word access helpers (little-endian, like the encodings)
    # ------------------------------------------------------------------
    def load_word(self, address: int) -> int:
        """Read a 32-bit unsigned word from the image."""
        self._check_range(address)
        return int.from_bytes(self.image[address : address + WORD_BYTES], "little")

    def store_word(self, address: int, value: int) -> None:
        """Write a 32-bit word (taken modulo 2**32) into the image."""
        self._check_range(address)
        self.image[address : address + WORD_BYTES] = (value & 0xFFFFFFFF).to_bytes(
            WORD_BYTES, "little"
        )

    def load_float(self, address: int) -> float:
        """Read a float32 datum from the image."""
        self._check_range(address)
        return struct.unpack("<f", self.image[address : address + WORD_BYTES])[0]

    def store_float(self, address: int, value: float) -> None:
        """Write a float32 datum into the image."""
        self._check_range(address)
        self.image[address : address + WORD_BYTES] = struct.pack("<f", value)

    def _check_range(self, address: int) -> None:
        if not 0 <= address <= len(self.image) - WORD_BYTES:
            raise IndexError(
                f"address {address:#x} outside program image of {len(self.image)} bytes"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def symbol(self, name: str) -> int:
        """Return a symbol's value, raising :class:`KeyError` if undefined."""
        return self.symbols[name]

    def marker(self, name: str) -> int:
        """Return a marker's address, raising :class:`KeyError` if absent."""
        return self.markers[name]

    def instruction_at(self, address: int) -> Instruction:
        """Decode the instruction stored at ``address``."""
        instruction, _size = self.predecoded.at(address)
        return instruction

    def code_span(self, begin_marker: str, end_marker: str) -> int:
        """Byte distance between two markers (e.g. an inner loop's size)."""
        return self.marker(end_marker) - self.marker(begin_marker)

    def instructions_between(self, begin: int, end: int) -> list[tuple[int, Instruction]]:
        """All laid-out instructions with ``begin <= address < end``."""
        return [(addr, instr) for addr, instr in self.layout if begin <= addr < end]

    def disassemble(self, begin: int | None = None, end: int | None = None) -> str:
        """Human-readable listing of the laid-out instructions in a range."""
        lines = []
        for address, instruction in self.layout:
            if begin is not None and address < begin:
                continue
            if end is not None and address >= end:
                continue
            lines.append(f"{address:#06x}: {instruction.disassemble()}")
        return "\n".join(lines)
