"""Assembler for the PIPE-like ISA.

The main entry point is :func:`repro.asm.assemble`, which turns assembly
source text into a :class:`repro.asm.program.Program` memory image ready to
run on either the functional simulator or the cycle-level simulator.
"""

from .assembler import Assembler, assemble
from .errors import AsmError
from .parser import parse_expression, parse_source
from .program import WORD_BYTES, Program

__all__ = [
    "AsmError",
    "Assembler",
    "Program",
    "WORD_BYTES",
    "assemble",
    "parse_expression",
    "parse_source",
]
