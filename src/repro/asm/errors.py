"""Assembler error types.

All assembler-facing failures raise :class:`AsmError`, which carries the
source name and line number so callers (and test suites) can pinpoint the
offending statement.
"""

from __future__ import annotations

__all__ = ["AsmError"]


class AsmError(Exception):
    """An error in assembly source, with location information."""

    def __init__(self, message: str, source: str = "<asm>", line: int | None = None):
        self.message = message
        self.source = source
        self.line = line
        location = source if line is None else f"{source}:{line}"
        super().__init__(f"{location}: {message}")
