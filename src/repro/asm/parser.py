"""Lexing and parsing of assembly source.

The surface syntax is deliberately small::

    ; full-line or trailing comment (also '#')
    label:                       ; define a label at the current address
    loop:   add r1, r2, r3       ; instruction with comma-separated operands
            ld  r5, 8
            pbrne b0, r1, 4
            .org 0x100           ; directives start with '.'
            .word 1, 2, buf+4
            .float 1.0, 2.5
            .space 64
            .align 4
            .equ N, 100*4
            .marker inner_begin  ; named address marker

Operands are register names or integer *expressions* over symbols with
``+ - * << >> ( )`` and unary minus.  Expressions are represented as ASTs
and evaluated later by the assembler, once symbol values are known.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .errors import AsmError

__all__ = [
    "Statement",
    "LabelDef",
    "InstructionStmt",
    "DirectiveStmt",
    "Operand",
    "RegisterOperand",
    "ExprOperand",
    "FloatOperand",
    "Expr",
    "NumberExpr",
    "SymbolExpr",
    "UnaryExpr",
    "BinaryExpr",
    "parse_source",
    "parse_expression",
]


# ----------------------------------------------------------------------
# Expression AST
# ----------------------------------------------------------------------
class Expr:
    """Base class for operand expressions."""

    def evaluate(self, symbols: dict[str, int]) -> int:
        raise NotImplementedError

    def free_symbols(self) -> set[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class NumberExpr(Expr):
    value: int

    def evaluate(self, symbols: dict[str, int]) -> int:
        return self.value

    def free_symbols(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class SymbolExpr(Expr):
    name: str

    def evaluate(self, symbols: dict[str, int]) -> int:
        if self.name not in symbols:
            raise KeyError(self.name)
        return symbols[self.name]

    def free_symbols(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class UnaryExpr(Expr):
    operator: str
    operand: Expr

    def evaluate(self, symbols: dict[str, int]) -> int:
        value = self.operand.evaluate(symbols)
        if self.operator == "-":
            return -value
        if self.operator == "~":
            return ~value
        raise AssertionError(f"unknown unary operator {self.operator!r}")

    def free_symbols(self) -> set[str]:
        return self.operand.free_symbols()


@dataclass(frozen=True)
class BinaryExpr(Expr):
    operator: str
    left: Expr
    right: Expr

    def evaluate(self, symbols: dict[str, int]) -> int:
        lhs = self.left.evaluate(symbols)
        rhs = self.right.evaluate(symbols)
        if self.operator == "+":
            return lhs + rhs
        if self.operator == "-":
            return lhs - rhs
        if self.operator == "*":
            return lhs * rhs
        if self.operator == "/":
            if rhs == 0:
                raise ZeroDivisionError("division by zero in assembly expression")
            return lhs // rhs
        if self.operator == "<<":
            return lhs << rhs
        if self.operator == ">>":
            return lhs >> rhs
        if self.operator == "&":
            return lhs & rhs
        if self.operator == "|":
            return lhs | rhs
        raise AssertionError(f"unknown binary operator {self.operator!r}")

    def free_symbols(self) -> set[str]:
        return self.left.free_symbols() | self.right.free_symbols()


# ----------------------------------------------------------------------
# Operands and statements
# ----------------------------------------------------------------------
class Operand:
    """Base class for parsed operands."""


@dataclass(frozen=True)
class RegisterOperand(Operand):
    kind: str  #: "data" or "branch"
    index: int


@dataclass(frozen=True)
class ExprOperand(Operand):
    expr: Expr


@dataclass(frozen=True)
class FloatOperand(Operand):
    """A floating-point literal; only legal in ``.float`` directives."""

    value: float


class Statement:
    """Base class for parsed statements; carries a source location."""

    source: str
    line: int


@dataclass(frozen=True)
class LabelDef(Statement):
    name: str
    source: str
    line: int


@dataclass(frozen=True)
class InstructionStmt(Statement):
    mnemonic: str
    operands: tuple[Operand, ...]
    source: str
    line: int


@dataclass(frozen=True)
class DirectiveStmt(Statement):
    name: str
    operands: tuple[Operand, ...] = field(default_factory=tuple)
    source: str = "<asm>"
    line: int = 0


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<float>\d+\.\d+([eE][-+]?\d+)?|\d+[eE][-+]?\d+)
  | (?P<number>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+)
  | (?P<name>\.?[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<op><<|>>|[-+*/()&|~])
  | (?P<comma>,)
  | (?P<colon>:)
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

_LABEL_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_.]*)\s*:(.*)$")


def _tokenize(text: str, source: str, line: int) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise AsmError(f"unexpected character {text[position]!r}", source, line)
        position = match.end()
        kind = match.lastgroup
        assert kind is not None
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    return tokens


# ----------------------------------------------------------------------
# Expression parser (precedence climbing)
# ----------------------------------------------------------------------
_PRECEDENCE = {"|": 1, "&": 2, "<<": 3, ">>": 3, "+": 4, "-": 4, "*": 5, "/": 5}


class _TokenStream:
    def __init__(self, tokens: list[tuple[str, str]], source: str, line: int):
        self.tokens = tokens
        self.index = 0
        self.source = source
        self.line = line

    def peek(self) -> tuple[str, str] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise AsmError("unexpected end of operand", self.source, self.line)
        self.index += 1
        return token

    def expect(self, text: str) -> None:
        token = self.next()
        if token[1] != text:
            raise AsmError(f"expected {text!r}, found {token[1]!r}", self.source, self.line)


def _parse_primary(stream: _TokenStream) -> Expr:
    kind, text = stream.next()
    if kind == "number":
        return NumberExpr(int(text, 0))
    if kind == "name":
        return SymbolExpr(text)
    if kind == "op" and text in ("-", "~"):
        return UnaryExpr(text, _parse_primary(stream))
    if kind == "op" and text == "(":
        inner = _parse_binary(stream, 0)
        stream.expect(")")
        return inner
    raise AsmError(f"unexpected token {text!r} in expression", stream.source, stream.line)


def _parse_binary(stream: _TokenStream, min_precedence: int) -> Expr:
    left = _parse_primary(stream)
    while True:
        token = stream.peek()
        if token is None or token[0] != "op" or token[1] not in _PRECEDENCE:
            return left
        operator = token[1]
        precedence = _PRECEDENCE[operator]
        if precedence < min_precedence:
            return left
        stream.next()
        right = _parse_binary(stream, precedence + 1)
        left = BinaryExpr(operator, left, right)


def parse_expression(text: str, source: str = "<expr>", line: int = 0) -> Expr:
    """Parse a standalone expression string into an AST."""
    stream = _TokenStream(_tokenize(text, source, line), source, line)
    expr = _parse_binary(stream, 0)
    trailing = stream.peek()
    if trailing is not None:
        raise AsmError(f"trailing tokens after expression: {trailing[1]!r}", source, line)
    return expr


# ----------------------------------------------------------------------
# Operand and statement parsing
# ----------------------------------------------------------------------
_REGISTER_NAME_RE = re.compile(r"^(?:[rb]\d+|q)$", re.IGNORECASE)


def _parse_operand(stream: _TokenStream) -> Operand:
    token = stream.peek()
    assert token is not None
    kind, text = token
    if kind == "float":
        stream.next()
        return FloatOperand(float(text))
    if kind == "op" and text == "-" and stream.index + 1 < len(stream.tokens):
        # Negative float literal (".float -1.5"): the tokenizer emits the
        # sign and the magnitude separately.
        next_kind, next_text = stream.tokens[stream.index + 1]
        if next_kind == "float":
            stream.next()
            stream.next()
            return FloatOperand(-float(next_text))
    if kind == "name" and _REGISTER_NAME_RE.match(text):
        from ..isa.registers import parse_register_name

        stream.next()
        reg_kind, index = parse_register_name(text)
        return RegisterOperand(reg_kind, index)
    return ExprOperand(_parse_binary(stream, 0))


def _parse_operand_list(stream: _TokenStream) -> tuple[Operand, ...]:
    operands: list[Operand] = []
    if stream.peek() is None:
        return tuple(operands)
    operands.append(_parse_operand(stream))
    while stream.peek() is not None:
        token = stream.next()
        if token[0] != "comma":
            raise AsmError(
                f"expected ',' between operands, found {token[1]!r}",
                stream.source,
                stream.line,
            )
        operands.append(_parse_operand(stream))
    return tuple(operands)


def _strip_comment(line_text: str) -> str:
    for comment_char in (";", "#"):
        index = line_text.find(comment_char)
        if index >= 0:
            line_text = line_text[:index]
    return line_text


def parse_source(text: str, source: str = "<asm>") -> list[Statement]:
    """Parse assembly source text into a statement list."""
    statements: list[Statement] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line_text = _strip_comment(raw_line).strip()
        # Peel off any leading labels (several may share a line).
        while True:
            match = _LABEL_RE.match(line_text)
            if match is None:
                break
            statements.append(LabelDef(match.group(1), source, line_number))
            line_text = match.group(2).strip()
        if not line_text:
            continue
        tokens = _tokenize(line_text, source, line_number)
        kind, first = tokens[0]
        if kind != "name":
            raise AsmError(f"expected mnemonic, found {first!r}", source, line_number)
        stream = _TokenStream(tokens[1:], source, line_number)
        operands = _parse_operand_list(stream)
        if first.startswith("."):
            statements.append(
                DirectiveStmt(first.lower(), operands, source, line_number)
            )
        else:
            statements.append(
                InstructionStmt(first.lower(), operands, source, line_number)
            )
    return statements
