"""A two-pass assembler for the PIPE-like ISA.

Pass 1 walks the statement list, sizing instructions and assigning
addresses to labels; pass 2 evaluates operand expressions against the
completed symbol table and encodes instructions and data into the image.

Besides the real instruction set (see :mod:`repro.isa.opcodes`) the
assembler accepts a few pseudo-instructions that expand to single real
instructions:

=========== ======================= ======================================
pseudo      expansion               meaning
=========== ======================= ======================================
``mov``     ``or rd, rs, rs``       register copy
``pushq``   ``or r7, rs, rs``       push a register onto the SDQ
``popq``    ``or rd, r7, r7``       pop the LDQ head into a register
``qtoq``    ``or r7, r7, r7``       move the LDQ head onto the SDQ
``la``      ``li rd, value``        load an address (must fit 15 bits)
=========== ======================= ======================================

Directives: ``.org``, ``.word``, ``.float``, ``.space``, ``.align``,
``.equ``, ``.marker``, ``.entry``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..isa.encoding import PARCEL_BYTES, InstructionFormat, encode_instruction
from ..isa.instruction import Instruction
from ..isa.opcodes import MAX_BRANCH_DELAY, OpClass, Opcode
from ..isa.registers import QUEUE_REGISTER
from .errors import AsmError
from .parser import (
    DirectiveStmt,
    ExprOperand,
    FloatOperand,
    InstructionStmt,
    LabelDef,
    Operand,
    RegisterOperand,
    Statement,
    parse_source,
)
from .program import WORD_BYTES, Program

__all__ = ["Assembler", "assemble"]

_PSEUDO_MNEMONICS = {"mov", "pushq", "popq", "qtoq", "la"}

_OPCODES_BY_MNEMONIC = {op.mnemonic: op for op in Opcode}


def _mnemonic_parcels(mnemonic: str) -> int:
    """Number of parcels the (possibly pseudo) mnemonic occupies."""
    if mnemonic in _PSEUDO_MNEMONICS:
        return 2 if mnemonic == "la" else 1
    op = _OPCODES_BY_MNEMONIC.get(mnemonic)
    if op is None:
        raise KeyError(mnemonic)
    return 2 if op.is_two_parcel else 1


@dataclass
class _EvaluatedOperands:
    """Operands of one instruction after expression evaluation."""

    data_regs: list[int]
    branch_regs: list[int]
    ints: list[int]


class Assembler:
    """Assembles source text into a :class:`~repro.asm.program.Program`.

    Parameters
    ----------
    fmt:
        Instruction format to encode with.  The paper's presented results
        use :attr:`InstructionFormat.FIXED32`.
    memory_size:
        Size of the produced memory image in bytes.  Defaults to the
        smallest multiple of 4 KiB that covers everything emitted, with at
        least 4 KiB of headroom.
    """

    def __init__(
        self,
        fmt: InstructionFormat = InstructionFormat.FIXED32,
        memory_size: int | None = None,
    ):
        self.fmt = fmt
        self.memory_size = memory_size

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def assemble(self, source: str, source_name: str = "<asm>") -> Program:
        statements = parse_source(source, source_name)
        symbols, markers, highest = self._pass_one(statements)
        return self._pass_two(statements, symbols, markers, highest)

    # ------------------------------------------------------------------
    # Pass 1: layout
    # ------------------------------------------------------------------
    def _instruction_size(self, stmt: InstructionStmt) -> int:
        try:
            parcels = _mnemonic_parcels(stmt.mnemonic)
        except KeyError:
            raise AsmError(
                f"unknown mnemonic {stmt.mnemonic!r}", stmt.source, stmt.line
            ) from None
        if self.fmt is InstructionFormat.FIXED32:
            return 2 * PARCEL_BYTES
        return parcels * PARCEL_BYTES

    def _code_alignment(self) -> int:
        return 2 * PARCEL_BYTES if self.fmt is InstructionFormat.FIXED32 else PARCEL_BYTES

    def _pass_one(
        self, statements: list[Statement]
    ) -> tuple[dict[str, int], dict[str, int], int]:
        symbols: dict[str, int] = {}
        markers: dict[str, int] = {}
        location = 0
        highest = 0

        def define(name: str, value: int, stmt: Statement) -> None:
            if name in symbols:
                raise AsmError(f"duplicate symbol {name!r}", stmt.source, stmt.line)
            symbols[name] = value

        for stmt in statements:
            if isinstance(stmt, LabelDef):
                location = _align_up(location, self._code_alignment())
                define(stmt.name, location, stmt)
            elif isinstance(stmt, InstructionStmt):
                location = _align_up(location, self._code_alignment())
                location += self._instruction_size(stmt)
            elif isinstance(stmt, DirectiveStmt):
                location = self._pass_one_directive(stmt, symbols, markers, location, define)
            else:  # pragma: no cover - parser produces only the above
                raise AssertionError(f"unknown statement {stmt!r}")
            highest = max(highest, location)
        return symbols, markers, highest

    def _pass_one_directive(self, stmt, symbols, markers, location, define) -> int:
        name = stmt.name
        if name == ".org":
            target = self._const_expr(stmt, 0, symbols)
            if target < location:
                raise AsmError(
                    f".org {target:#x} moves backwards past {location:#x}",
                    stmt.source,
                    stmt.line,
                )
            return target
        if name == ".align":
            return _align_up(location, self._const_expr(stmt, 0, symbols))
        if name == ".space":
            return location + self._const_expr(stmt, 0, symbols)
        if name == ".word":
            location = _align_up(location, WORD_BYTES)
            return location + WORD_BYTES * len(stmt.operands)
        if name == ".float":
            location = _align_up(location, WORD_BYTES)
            return location + WORD_BYTES * len(stmt.operands)
        if name == ".equ":
            if len(stmt.operands) != 2 or not isinstance(stmt.operands[0], ExprOperand):
                raise AsmError(".equ needs a name and a value", stmt.source, stmt.line)
            sym_expr = stmt.operands[0].expr
            from .parser import SymbolExpr

            if not isinstance(sym_expr, SymbolExpr):
                raise AsmError(".equ first operand must be a name", stmt.source, stmt.line)
            define(sym_expr.name, self._const_expr(stmt, 1, symbols), stmt)
            return location
        if name == ".marker":
            if len(stmt.operands) != 1 or not isinstance(stmt.operands[0], ExprOperand):
                raise AsmError(".marker needs a name", stmt.source, stmt.line)
            from .parser import SymbolExpr

            marker_expr = stmt.operands[0].expr
            if not isinstance(marker_expr, SymbolExpr):
                raise AsmError(".marker operand must be a name", stmt.source, stmt.line)
            if marker_expr.name in markers:
                raise AsmError(
                    f"duplicate marker {marker_expr.name!r}", stmt.source, stmt.line
                )
            markers[marker_expr.name] = _align_up(location, self._code_alignment())
            return location
        if name == ".entry":
            return location  # handled in pass 2
        raise AsmError(f"unknown directive {name!r}", stmt.source, stmt.line)

    def _const_expr(self, stmt: DirectiveStmt, index: int, symbols: dict[str, int]) -> int:
        """Evaluate a directive operand that must be resolvable in pass 1.

        Layout-affecting directives (``.org``, ``.space``, ``.align``,
        ``.equ``) may only reference symbols defined *before* them.
        """
        if index >= len(stmt.operands):
            raise AsmError(
                f"{stmt.name} missing operand {index + 1}", stmt.source, stmt.line
            )
        operand = stmt.operands[index]
        if not isinstance(operand, ExprOperand):
            raise AsmError(
                f"{stmt.name} operand must be an expression", stmt.source, stmt.line
            )
        try:
            return operand.expr.evaluate(symbols)
        except KeyError as exc:
            raise AsmError(
                f"{stmt.name} references undefined symbol {exc.args[0]!r} "
                "(layout directives cannot use forward references)",
                stmt.source,
                stmt.line,
            ) from None

    # ------------------------------------------------------------------
    # Pass 2: encoding
    # ------------------------------------------------------------------
    def _pass_two(
        self,
        statements: list[Statement],
        symbols: dict[str, int],
        markers: dict[str, int],
        highest: int,
    ) -> Program:
        size = self.memory_size
        if size is None:
            size = max(_align_up(highest + 4096, 4096), 4096)
        if highest > size:
            raise AsmError(
                f"program needs {highest} bytes but memory_size is only {size}"
            )
        image = bytearray(size)
        layout: list[tuple[int, Instruction]] = []
        entry_point = 0
        saw_entry = False
        location = 0

        for stmt in statements:
            if isinstance(stmt, LabelDef):
                location = _align_up(location, self._code_alignment())
            elif isinstance(stmt, InstructionStmt):
                location = _align_up(location, self._code_alignment())
                instruction = self._encode_statement(stmt, symbols)
                raw = encode_instruction(instruction, self.fmt)
                image[location : location + len(raw)] = raw
                layout.append((location, instruction))
                location += len(raw)
            elif isinstance(stmt, DirectiveStmt):
                if stmt.name == ".entry":
                    entry_point = self._eval_expr_operand(stmt, 0, symbols)
                    saw_entry = True
                elif stmt.name == ".org":
                    location = self._const_expr(stmt, 0, symbols)
                elif stmt.name == ".align":
                    location = _align_up(location, self._const_expr(stmt, 0, symbols))
                elif stmt.name == ".space":
                    location += self._const_expr(stmt, 0, symbols)
                elif stmt.name == ".word":
                    location = _align_up(location, WORD_BYTES)
                    for index in range(len(stmt.operands)):
                        value = self._eval_expr_operand(stmt, index, symbols)
                        image[location : location + WORD_BYTES] = (
                            value & 0xFFFFFFFF
                        ).to_bytes(WORD_BYTES, "little")
                        location += WORD_BYTES
                elif stmt.name == ".float":
                    location = _align_up(location, WORD_BYTES)
                    for operand in stmt.operands:
                        if isinstance(operand, FloatOperand):
                            value = operand.value
                        elif isinstance(operand, ExprOperand):
                            value = float(operand.expr.evaluate(symbols))
                        else:
                            raise AsmError(
                                ".float operands must be numbers", stmt.source, stmt.line
                            )
                        image[location : location + WORD_BYTES] = struct.pack("<f", value)
                        location += WORD_BYTES
                # .equ and .marker fully handled in pass 1

        if not saw_entry and "start" in symbols:
            entry_point = symbols["start"]
        return Program(
            image=image,
            entry_point=entry_point,
            fmt=self.fmt,
            symbols=dict(symbols),
            markers=dict(markers),
            layout=layout,
        )

    def _eval_expr_operand(
        self, stmt: DirectiveStmt, index: int, symbols: dict[str, int]
    ) -> int:
        if index >= len(stmt.operands):
            raise AsmError(
                f"{stmt.name} missing operand {index + 1}", stmt.source, stmt.line
            )
        operand = stmt.operands[index]
        if not isinstance(operand, ExprOperand):
            raise AsmError(
                f"{stmt.name} operand {index + 1} must be an expression",
                stmt.source,
                stmt.line,
            )
        try:
            return operand.expr.evaluate(symbols)
        except KeyError as exc:
            raise AsmError(
                f"undefined symbol {exc.args[0]!r}", stmt.source, stmt.line
            ) from None

    # ------------------------------------------------------------------
    # Instruction encoding
    # ------------------------------------------------------------------
    def _operand_values(
        self, stmt: InstructionStmt, symbols: dict[str, int]
    ) -> list[tuple[str, int]]:
        values: list[tuple[str, int]] = []
        for operand in stmt.operands:
            if isinstance(operand, RegisterOperand):
                values.append((operand.kind, operand.index))
            elif isinstance(operand, ExprOperand):
                try:
                    values.append(("int", operand.expr.evaluate(symbols)))
                except KeyError as exc:
                    raise AsmError(
                        f"undefined symbol {exc.args[0]!r}", stmt.source, stmt.line
                    ) from None
            else:
                raise AsmError(
                    "floating-point literals are only legal in .float",
                    stmt.source,
                    stmt.line,
                )
        return values

    def _expect(
        self, stmt: InstructionStmt, values: list[tuple[str, int]], pattern: str
    ) -> list[int]:
        """Check operand kinds against ``pattern`` (d/b/i) and return values."""
        kind_names = {"d": "data", "b": "branch", "i": "int"}
        if len(values) != len(pattern):
            raise AsmError(
                f"{stmt.mnemonic} expects {len(pattern)} operands, got {len(values)}",
                stmt.source,
                stmt.line,
            )
        out = []
        for position, (want, (kind, value)) in enumerate(zip(pattern, values), start=1):
            if kind != kind_names[want]:
                raise AsmError(
                    f"{stmt.mnemonic} operand {position} must be a "
                    f"{kind_names[want]} register"
                    if want != "i"
                    else f"{stmt.mnemonic} operand {position} must be an expression",
                    stmt.source,
                    stmt.line,
                )
            out.append(value)
        return out

    def _encode_statement(
        self, stmt: InstructionStmt, symbols: dict[str, int]
    ) -> Instruction:
        mnemonic = stmt.mnemonic
        values = self._operand_values(stmt, symbols)
        try:
            return self._build_instruction(stmt, mnemonic, values)
        except ValueError as exc:
            raise AsmError(str(exc), stmt.source, stmt.line) from None

    def _build_instruction(
        self, stmt: InstructionStmt, mnemonic: str, values: list[tuple[str, int]]
    ) -> Instruction:
        # Pseudo-instructions first.
        if mnemonic == "mov":
            rd, rs = self._expect(stmt, values, "dd")
            return Instruction.alu_rr(Opcode.OR, rd, rs, rs)
        if mnemonic == "pushq":
            (rs,) = self._expect(stmt, values, "d")
            return Instruction.alu_rr(Opcode.OR, QUEUE_REGISTER, rs, rs)
        if mnemonic == "popq":
            (rd,) = self._expect(stmt, values, "d")
            return Instruction.alu_rr(Opcode.OR, rd, QUEUE_REGISTER, QUEUE_REGISTER)
        if mnemonic == "qtoq":
            self._expect(stmt, values, "")
            return Instruction.alu_rr(
                Opcode.OR, QUEUE_REGISTER, QUEUE_REGISTER, QUEUE_REGISTER
            )
        if mnemonic == "la":
            rd, value = self._expect(stmt, values, "di")
            if not 0 <= value <= 0x7FFF:
                raise AsmError(
                    f"la value {value:#x} does not fit in 15 bits; "
                    "use li/lih explicitly",
                    stmt.source,
                    stmt.line,
                )
            return Instruction.alu_ri(Opcode.LI, rd, 0, value)

        op = _OPCODES_BY_MNEMONIC.get(mnemonic)
        if op is None:
            raise AsmError(f"unknown mnemonic {mnemonic!r}", stmt.source, stmt.line)
        cls = op.op_class
        if cls == OpClass.SYSTEM:
            self._expect(stmt, values, "")
            return Instruction(op)
        if cls == OpClass.ALU_RR:
            rd, rs1, rs2 = self._expect(stmt, values, "ddd")
            return Instruction.alu_rr(op, rd, rs1, rs2)
        if cls == OpClass.ALU_RI:
            if op in (Opcode.LI, Opcode.LIH):
                rd, imm = self._expect(stmt, values, "di")
                return Instruction.alu_ri(op, rd, 0, imm)
            rd, rs1, imm = self._expect(stmt, values, "ddi")
            return Instruction.alu_ri(op, rd, rs1, imm)
        if op == Opcode.LD:
            base, disp = self._expect(stmt, values, "di")
            return Instruction.load(base, disp)
        if op == Opcode.ST:
            base, disp = self._expect(stmt, values, "di")
            return Instruction.store(base, disp)
        if op == Opcode.LDX:
            base, index = self._expect(stmt, values, "dd")
            return Instruction.load_indexed(base, index)
        if op == Opcode.STX:
            base, index = self._expect(stmt, values, "dd")
            return Instruction.store_indexed(base, index)
        if op == Opcode.LBR:
            breg, address = self._expect(stmt, values, "bi")
            if not 0 <= address <= 0xFFFF:
                raise AsmError(
                    f"lbr target {address:#x} does not fit in 16 bits",
                    stmt.source,
                    stmt.line,
                )
            return Instruction.load_branch_register(breg, address)
        if op == Opcode.LBRR:
            breg, rs1 = self._expect(stmt, values, "bd")
            return Instruction(Opcode.LBRR, a=breg, b=rs1)
        if op == Opcode.PBRA:
            breg, delay = self._expect(stmt, values, "bi")
            self._check_delay(stmt, delay)
            return Instruction.branch(op, breg, 0, delay)
        if cls == OpClass.BRANCH:
            breg, cond_reg, delay = self._expect(stmt, values, "bdi")
            self._check_delay(stmt, delay)
            return Instruction.branch(op, breg, cond_reg, delay)
        raise AssertionError(f"unhandled opcode {op!r}")  # pragma: no cover

    def _check_delay(self, stmt: InstructionStmt, delay: int) -> None:
        if not 0 <= delay <= MAX_BRANCH_DELAY:
            raise AsmError(
                f"branch delay {delay} out of range 0..{MAX_BRANCH_DELAY}",
                stmt.source,
                stmt.line,
            )


def _align_up(value: int, alignment: int) -> int:
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    remainder = value % alignment
    return value if remainder == 0 else value + alignment - remainder


def assemble(
    source: str,
    fmt: InstructionFormat = InstructionFormat.FIXED32,
    memory_size: int | None = None,
    source_name: str = "<asm>",
) -> Program:
    """Assemble ``source`` and return the :class:`Program` image."""
    return Assembler(fmt=fmt, memory_size=memory_size).assemble(source, source_name)
