"""repro — a reproduction of Farrens & Pleszkun (ISCA 1989).

*Improving Performance of Small On-Chip Instruction Caches* evaluates the
PIPE single-chip processor's instruction-fetch strategy — a small
direct-mapped I-cache backed by an Instruction Queue (IQ) and an
Instruction Queue Buffer (IQB) — against a conventional always-prefetch
cache, using cycle-level simulation of the first 14 Lawrence Livermore
Loops.

This package contains everything needed to rerun that study:

* :mod:`repro.isa` — the PIPE-like instruction set;
* :mod:`repro.asm` — a two-pass assembler;
* :mod:`repro.kernels` — a kernel DSL, code generator, and the 14
  Livermore Loops;
* :mod:`repro.cpu` — architectural queues and the pipeline back-end;
* :mod:`repro.memory` — external memory, buses, and the memory-mapped FPU;
* :mod:`repro.frontend` — the PIPE and conventional fetch strategies;
* :mod:`repro.core` — configuration, the cycle-level simulator, sweeps;
* :mod:`repro.analysis` — table/figure regeneration for the paper's
  evaluation section.

Quickstart::

    from repro import simulate, MachineConfig
    from repro.kernels import build_livermore_program

    program = build_livermore_program()
    result = simulate(MachineConfig(), program)
    print(result.cycles)
"""

from __future__ import annotations

__version__ = "1.0.0"

# The public names are imported lazily (PEP 562) so that light-weight uses
# of one subpackage (e.g. just the assembler) do not pay for the rest.
_EXPORTS = {
    "FetchStrategy": ("repro.core.config", "FetchStrategy"),
    "MachineConfig": ("repro.core.config", "MachineConfig"),
    "PIPE_CONFIGURATIONS": ("repro.core.config", "PIPE_CONFIGURATIONS"),
    "PipeConfiguration": ("repro.core.config", "PipeConfiguration"),
    "PrefetchPolicy": ("repro.core.config", "PrefetchPolicy"),
    "SimulationResult": ("repro.core.results", "SimulationResult"),
    "Simulator": ("repro.core.simulator", "Simulator"),
    "simulate": ("repro.core.simulator", "simulate"),
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
