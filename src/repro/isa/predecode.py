"""Memoized instruction decode over a read-only code image.

Every fetch frontend decodes the byte stream on its way into the
decoder, and the PIPE control logic re-walks delay-slot regions when it
scans the IQ for branches.  The code image never changes during a run
(the data engine works on a private copy of the image), so each
``(address)`` decodes to the same instruction every time — across
cycles, across frontends, and across the many simulations of a sweep.

:class:`PredecodedImage` caches those decodes.  It is seeded from the
assembler's layout when one is available (every address the program can
legitimately execute) and falls back to decoding on demand for
addresses reached speculatively (e.g. a prefetch running past the end
of the code segment), including remembering *failed* decodes so a hot
wrong-path address is not re-raised from scratch each cycle.
"""

from __future__ import annotations

from .encoding import DecodeError, InstructionFormat, decode_instruction
from .instruction import Instruction

__all__ = ["PredecodedImage"]

#: Sentinel stored for addresses whose bytes do not decode.
_INVALID = None


class PredecodedImage:
    """A shared decode table for one immutable ``(image, fmt)`` pair."""

    __slots__ = ("image", "fmt", "_table")

    def __init__(
        self,
        image: bytes | bytearray,
        fmt: InstructionFormat,
        layout: list[tuple[int, Instruction]] | None = None,
    ):
        self.image = image
        self.fmt = fmt
        self._table: dict[int, tuple[Instruction, int] | None] = {}
        if layout:
            for address, instruction in layout:
                self._table[address] = (
                    instruction,
                    fmt.instruction_size(instruction),
                )

    def at(self, pc: int) -> tuple[Instruction, int]:
        """Decode the instruction at ``pc`` → ``(instruction, size)``.

        Raises :class:`~repro.isa.encoding.DecodeError` exactly as
        :func:`~repro.isa.encoding.decode_instruction` would.
        """
        entry = self._table.get(pc, False)
        if entry is False:
            try:
                entry = decode_instruction(self.image, pc, self.fmt)
            except DecodeError:
                entry = _INVALID
            self._table[pc] = entry
        if entry is _INVALID:
            raise DecodeError(f"no valid instruction at offset {pc}")
        return entry

    def delay_region_end(self, next_pc: int, delay: int) -> int:
        """Byte address just past the ``delay`` instructions at ``next_pc``.

        The memoized equivalent of
        :func:`repro.frontend.base.delay_region_end`.
        """
        pc = next_pc
        for _ in range(delay):
            _instruction, size = self.at(pc)
            pc += size
        return pc

    def __len__(self) -> int:
        return len(self._table)
