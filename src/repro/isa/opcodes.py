"""Opcode definitions for the PIPE-like instruction set.

The instruction set follows the description in section 3.1.1 of the paper:

* instructions come in **one-parcel** (16-bit) and **two-parcel** (32-bit)
  forms; the second parcel of a two-parcel instruction is a 16-bit immediate;
* the register fields occupy the same bit positions in every instruction,
  "greatly simplifying the decode logic";
* the presence of a branch is "determined by a single bit of the opcode"
  (section 4.2) so the I-fetch control logic can scan the instruction queue
  for prepare-to-branch instructions without a full decode.  We reserve the
  top bit of the 7-bit opcode field for exactly this purpose
  (:data:`BRANCH_CLASS_BIT`).

The concrete opcode assignments are ours — the paper does not publish an
opcode map — but every architectural property the simulation study relies on
(parcel sizes, the branch bit, queue-register semantics, PBR delay counts)
is preserved.
"""

from __future__ import annotations

import enum

__all__ = [
    "Opcode",
    "OpClass",
    "BRANCH_CLASS_BIT",
    "OPCODE_BITS",
    "BRANCH_CONDITIONS",
    "MAX_BRANCH_DELAY",
]

#: Width of the opcode field in the first parcel.
OPCODE_BITS = 7

#: Bit within the opcode field that marks the prepare-to-branch class.
#: The fetch logic tests only this bit when scanning the IQ for branches.
BRANCH_CLASS_BIT = 0x40

#: Largest delay-slot count expressible in a PBR instruction (3-bit field).
MAX_BRANCH_DELAY = 7


class OpClass(enum.Enum):
    """Coarse behavioural class of an opcode.

    The simulator dispatches on this class rather than on individual
    opcodes wherever possible.
    """

    ALU_RR = "alu_rr"  #: register-register ALU operation, writes rd
    ALU_RI = "alu_ri"  #: register-immediate ALU operation, writes rd
    LOAD = "load"  #: pushes an address on the Load Address Queue
    STORE = "store"  #: pushes an address on the Store Address Queue
    BRANCH = "branch"  #: prepare-to-branch family
    LBR = "lbr"  #: loads a branch register
    SYSTEM = "system"  #: NOP / HALT / EXCH


class Opcode(enum.IntEnum):
    """All opcodes, with encoding values.

    Values ``0x40`` and above belong to the branch class (their
    :data:`BRANCH_CLASS_BIT` is set).
    """

    # --- system ---------------------------------------------------------
    NOP = 0x00
    HALT = 0x01
    EXCH = 0x02  # swap foreground/background register banks

    # --- register-register ALU (one parcel) -----------------------------
    ADD = 0x04
    SUB = 0x05
    AND = 0x06
    OR = 0x07
    XOR = 0x08
    SLL = 0x09
    SRL = 0x0A
    SRA = 0x0B
    SEQ = 0x0C  # rd = (rs1 == rs2)
    SNE = 0x0D  # rd = (rs1 != rs2)
    SLT = 0x0E  # rd = (rs1 <  rs2), signed
    SLE = 0x0F  # rd = (rs1 <= rs2), signed

    # --- indexed memory (one parcel) -------------------------------------
    LDX = 0x10  # LAQ.push(rs1 + rs2)
    STX = 0x11  # SAQ.push(rs1 + rs2)

    # --- branch-register transport (one parcel) --------------------------
    LBRR = 0x12  # breg[a] = rs1

    # --- register-immediate ALU (two parcels) ----------------------------
    ADDI = 0x20
    SUBI = 0x21
    ANDI = 0x22
    ORI = 0x23
    XORI = 0x24
    SLLI = 0x25
    SRLI = 0x26
    SRAI = 0x27
    SEQI = 0x28
    SNEI = 0x29
    SLTI = 0x2A
    SLEI = 0x2B
    LI = 0x2C  # rd = sign_extend(imm16)
    LIH = 0x2D  # rd = (rd & 0xFFFF) | (imm16 << 16)

    # --- displacement memory (two parcels) -------------------------------
    LD = 0x30  # LAQ.push(rs1 + sext(imm16))
    ST = 0x31  # SAQ.push(rs1 + sext(imm16))

    # --- branch-register load (two parcels) ------------------------------
    LBR = 0x32  # breg[a] = imm16 (an absolute byte address)

    # --- prepare-to-branch class (one parcel, BRANCH_CLASS_BIT set) ------
    PBRA = 0x40  # unconditional
    PBREQ = 0x41  # taken if rs1 == 0
    PBRNE = 0x42  # taken if rs1 != 0
    PBRLT = 0x43  # taken if rs1 <  0 (signed)
    PBRGE = 0x44  # taken if rs1 >= 0 (signed)

    @property
    def is_branch(self) -> bool:
        """True for the PBR family — testable from the single branch bit."""
        return bool(self.value & BRANCH_CLASS_BIT)

    @property
    def op_class(self) -> OpClass:
        return _OP_CLASS[self]

    @property
    def is_two_parcel(self) -> bool:
        """True if the instruction carries a 16-bit immediate parcel."""
        return self in _TWO_PARCEL

    @property
    def writes_rd(self) -> bool:
        """True if the instruction writes its ``a`` field register."""
        return self.op_class in (OpClass.ALU_RR, OpClass.ALU_RI)

    @property
    def reads_rs1(self) -> bool:
        """True if the instruction reads the register in its ``b`` field."""
        return self in _READS_RS1

    @property
    def reads_rs2(self) -> bool:
        """True if the instruction reads the register in its ``c`` field."""
        return self.op_class == OpClass.ALU_RR or self in (Opcode.LDX, Opcode.STX)

    @property
    def mnemonic(self) -> str:
        return self.name.lower()


_OP_CLASS: dict[Opcode, OpClass] = {
    Opcode.NOP: OpClass.SYSTEM,
    Opcode.HALT: OpClass.SYSTEM,
    Opcode.EXCH: OpClass.SYSTEM,
    Opcode.ADD: OpClass.ALU_RR,
    Opcode.SUB: OpClass.ALU_RR,
    Opcode.AND: OpClass.ALU_RR,
    Opcode.OR: OpClass.ALU_RR,
    Opcode.XOR: OpClass.ALU_RR,
    Opcode.SLL: OpClass.ALU_RR,
    Opcode.SRL: OpClass.ALU_RR,
    Opcode.SRA: OpClass.ALU_RR,
    Opcode.SEQ: OpClass.ALU_RR,
    Opcode.SNE: OpClass.ALU_RR,
    Opcode.SLT: OpClass.ALU_RR,
    Opcode.SLE: OpClass.ALU_RR,
    Opcode.LDX: OpClass.LOAD,
    Opcode.STX: OpClass.STORE,
    Opcode.LBRR: OpClass.LBR,
    Opcode.ADDI: OpClass.ALU_RI,
    Opcode.SUBI: OpClass.ALU_RI,
    Opcode.ANDI: OpClass.ALU_RI,
    Opcode.ORI: OpClass.ALU_RI,
    Opcode.XORI: OpClass.ALU_RI,
    Opcode.SLLI: OpClass.ALU_RI,
    Opcode.SRLI: OpClass.ALU_RI,
    Opcode.SRAI: OpClass.ALU_RI,
    Opcode.SEQI: OpClass.ALU_RI,
    Opcode.SNEI: OpClass.ALU_RI,
    Opcode.SLTI: OpClass.ALU_RI,
    Opcode.SLEI: OpClass.ALU_RI,
    Opcode.LI: OpClass.ALU_RI,
    Opcode.LIH: OpClass.ALU_RI,
    Opcode.LD: OpClass.LOAD,
    Opcode.ST: OpClass.STORE,
    Opcode.LBR: OpClass.LBR,
    Opcode.PBRA: OpClass.BRANCH,
    Opcode.PBREQ: OpClass.BRANCH,
    Opcode.PBRNE: OpClass.BRANCH,
    Opcode.PBRLT: OpClass.BRANCH,
    Opcode.PBRGE: OpClass.BRANCH,
}

_TWO_PARCEL: frozenset[Opcode] = frozenset(
    op
    for op in Opcode
    if op.op_class == OpClass.ALU_RI or op in (Opcode.LD, Opcode.ST, Opcode.LBR)
)

# Instructions that read the register named in their ``b`` field.  LI only
# writes; LIH reads its *destination* (rd), which is handled specially by the
# executor.  PBRA ignores its condition register.
_READS_RS1: frozenset[Opcode] = frozenset(
    op
    for op in Opcode
    if op.op_class in (OpClass.ALU_RR, OpClass.LOAD, OpClass.STORE)
    or op in (Opcode.LBRR, Opcode.PBREQ, Opcode.PBRNE, Opcode.PBRLT, Opcode.PBRGE)
    or (op.op_class == OpClass.ALU_RI and op not in (Opcode.LI, Opcode.LIH))
)

#: The conditional members of the PBR family, mapped to predicate names.
BRANCH_CONDITIONS: dict[Opcode, str] = {
    Opcode.PBRA: "always",
    Opcode.PBREQ: "eq",
    Opcode.PBRNE: "ne",
    Opcode.PBRLT: "lt",
    Opcode.PBRGE: "ge",
}
