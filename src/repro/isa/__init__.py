"""The PIPE-like instruction set architecture.

This package defines the register model, opcode map, instruction value
type, and the two binary encodings (native 16/32-bit parcels and the fixed
32-bit format used for the paper's presented results).

See :mod:`repro.isa.opcodes` for the instruction list and
:mod:`repro.isa.encoding` for the memory layout.
"""

from .encoding import (
    PARCEL_BYTES,
    DecodeError,
    InstructionFormat,
    decode_instruction,
    encode_instruction,
    encode_program,
)
from .instruction import Instruction
from .opcodes import (
    BRANCH_CLASS_BIT,
    BRANCH_CONDITIONS,
    MAX_BRANCH_DELAY,
    OpClass,
    Opcode,
)
from .registers import (
    NUM_BRANCH_REGISTERS,
    NUM_DATA_REGISTERS,
    NUM_VISIBLE_REGISTERS,
    QUEUE_REGISTER,
    branch_register_name,
    data_register_name,
    parse_register_name,
)

__all__ = [
    "BRANCH_CLASS_BIT",
    "BRANCH_CONDITIONS",
    "DecodeError",
    "Instruction",
    "InstructionFormat",
    "MAX_BRANCH_DELAY",
    "NUM_BRANCH_REGISTERS",
    "NUM_DATA_REGISTERS",
    "NUM_VISIBLE_REGISTERS",
    "OpClass",
    "Opcode",
    "PARCEL_BYTES",
    "QUEUE_REGISTER",
    "branch_register_name",
    "data_register_name",
    "decode_instruction",
    "encode_instruction",
    "encode_program",
    "parse_register_name",
]
