"""Binary encoding of instructions.

Two encodings are supported, mirroring simulation parameter (1) of the
paper ("instruction format"):

* :attr:`InstructionFormat.PARCEL` — the native PIPE encoding.  An
  instruction is one or two 16-bit *parcels*; the second parcel of a
  two-parcel instruction holds a 16-bit immediate.
* :attr:`InstructionFormat.FIXED32` — the fixed 32-bit format used for all
  of the paper's presented results ("a different instruction format was
  chosen in order to make comparisons to other machines that only have one
  instruction format more realistic", section 6).  Every instruction
  occupies 4 bytes; one-parcel instructions are padded with a zero parcel.

First-parcel layout (bit 15 is the most significant)::

    15      9 8     6 5     3 2     0
    +--------+-------+-------+-------+
    | opcode |   a   |   b   |   c   |
    +--------+-------+-------+-------+

Parcels are stored little-endian.  Bit 15 of the first parcel is the
branch-class bit (see :data:`repro.isa.opcodes.BRANCH_CLASS_BIT`), so the
fetch logic can detect a PBR instruction by examining a single bit.
"""

from __future__ import annotations

import enum

from .instruction import Instruction
from .opcodes import Opcode

__all__ = [
    "InstructionFormat",
    "PARCEL_BYTES",
    "DecodeError",
    "encode_instruction",
    "decode_instruction",
    "encode_program",
]

#: Size of one parcel in bytes.
PARCEL_BYTES = 2

_OPCODE_SHIFT = 9
_A_SHIFT = 6
_B_SHIFT = 3
_FIELD_MASK = 0x7
_VALID_OPCODES = {op.value: op for op in Opcode}


class DecodeError(ValueError):
    """Raised when bytes do not decode to a valid instruction."""


class InstructionFormat(enum.Enum):
    """Selects how instructions are laid out in memory."""

    PARCEL = "parcel"
    FIXED32 = "fixed32"

    def instruction_size(self, instruction: Instruction) -> int:
        """Size in bytes that ``instruction`` occupies in this format."""
        if self is InstructionFormat.FIXED32:
            return 2 * PARCEL_BYTES
        return instruction.parcels * PARCEL_BYTES

    @property
    def max_instruction_size(self) -> int:
        """Upper bound on the byte size of any instruction."""
        return 2 * PARCEL_BYTES


def _pack_first_parcel(instruction: Instruction) -> int:
    return (
        (instruction.op.value << _OPCODE_SHIFT)
        | (instruction.a << _A_SHIFT)
        | (instruction.b << _B_SHIFT)
        | instruction.c
    )


def encode_instruction(
    instruction: Instruction, fmt: InstructionFormat = InstructionFormat.FIXED32
) -> bytes:
    """Encode one instruction to bytes in the given format."""
    first = _pack_first_parcel(instruction)
    parcels = [first]
    if instruction.op.is_two_parcel:
        parcels.append(instruction.imm)
    elif fmt is InstructionFormat.FIXED32:
        parcels.append(0)
    out = bytearray()
    for parcel in parcels:
        out += parcel.to_bytes(PARCEL_BYTES, "little")
    return bytes(out)


def decode_instruction(
    data: bytes, offset: int = 0, fmt: InstructionFormat = InstructionFormat.FIXED32
) -> tuple[Instruction, int]:
    """Decode one instruction from ``data`` at ``offset``.

    Returns ``(instruction, size_in_bytes)``.  Raises :class:`DecodeError`
    if the bytes are not a valid instruction (unknown opcode, truncated
    parcel, or ill-formed fields).
    """
    if offset + PARCEL_BYTES > len(data):
        raise DecodeError(f"truncated instruction at offset {offset}")
    first = int.from_bytes(data[offset : offset + PARCEL_BYTES], "little")
    op_value = first >> _OPCODE_SHIFT
    op = _VALID_OPCODES.get(op_value)
    if op is None:
        raise DecodeError(f"unknown opcode {op_value:#04x} at offset {offset}")
    a = (first >> _A_SHIFT) & _FIELD_MASK
    b = (first >> _B_SHIFT) & _FIELD_MASK
    c = first & _FIELD_MASK
    imm = 0
    size = PARCEL_BYTES
    if op.is_two_parcel:
        if offset + 2 * PARCEL_BYTES > len(data):
            raise DecodeError(f"truncated immediate parcel at offset {offset}")
        imm = int.from_bytes(
            data[offset + PARCEL_BYTES : offset + 2 * PARCEL_BYTES], "little"
        )
        size = 2 * PARCEL_BYTES
    elif fmt is InstructionFormat.FIXED32:
        size = 2 * PARCEL_BYTES
    try:
        instruction = Instruction(op, a=a, b=b, c=c, imm=imm)
    except ValueError as exc:  # ill-formed fields (e.g. branch delay > 7)
        raise DecodeError(str(exc)) from exc
    return instruction, size


def encode_program(
    instructions: list[Instruction],
    fmt: InstructionFormat = InstructionFormat.FIXED32,
) -> bytes:
    """Encode a straight-line sequence of instructions back to back."""
    out = bytearray()
    for instruction in instructions:
        out += encode_instruction(instruction, fmt)
    return bytes(out)
