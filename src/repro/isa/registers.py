"""Register model of the PIPE-like architecture.

The PIPE processor (Farrens & Pleszkun, ISCA 1989, section 3.1) provides:

* sixteen 32-bit data registers split into a *foreground* bank of 8 and a
  *background* bank of 8.  Instructions only name the 8 foreground registers
  (3-bit register fields); an ``EXCH`` instruction swaps the banks, which is
  how PIPE speeds up subroutine calls.
* register 7 (:data:`QUEUE_REGISTER`) is the *queue register*: reading it as
  a source pops the head of the Load Data Queue (LDQ); naming it as a
  destination pushes the result onto the Store Data Queue (SDQ).  R7 has no
  backing storage of its own.
* eight *branch registers* that hold branch-target addresses for the
  prepare-to-branch (PBR) instruction.

This module only defines names, ranges, and validation helpers; the actual
register *state* (including the foreground/background banks) lives in
:mod:`repro.cpu.state`.
"""

from __future__ import annotations

__all__ = [
    "NUM_VISIBLE_REGISTERS",
    "NUM_DATA_REGISTERS",
    "NUM_BRANCH_REGISTERS",
    "QUEUE_REGISTER",
    "data_register_name",
    "branch_register_name",
    "parse_register_name",
    "check_data_register",
    "check_branch_register",
]

#: Number of data registers an instruction can name (3-bit fields).
NUM_VISIBLE_REGISTERS = 8

#: Total number of physical data registers (foreground + background banks).
NUM_DATA_REGISTERS = 16

#: Number of branch registers available to PBR / LBR instructions.
NUM_BRANCH_REGISTERS = 8

#: The architectural queue register.  Reads pop the LDQ, writes push the SDQ.
QUEUE_REGISTER = 7


def data_register_name(index: int) -> str:
    """Return the assembly-language name of data register ``index``.

    The queue register gets its conventional alias ``q`` in disassembly-
    friendly form ``r7``; we keep ``r7`` as the canonical name because the
    paper consistently calls it "register 7".
    """
    check_data_register(index)
    return f"r{index}"


def branch_register_name(index: int) -> str:
    """Return the assembly-language name of branch register ``index``."""
    check_branch_register(index)
    return f"b{index}"


def check_data_register(index: int) -> None:
    """Raise :class:`ValueError` unless ``index`` names a visible register."""
    if not 0 <= index < NUM_VISIBLE_REGISTERS:
        raise ValueError(
            f"data register index {index!r} out of range 0..{NUM_VISIBLE_REGISTERS - 1}"
        )


def check_branch_register(index: int) -> None:
    """Raise :class:`ValueError` unless ``index`` names a branch register."""
    if not 0 <= index < NUM_BRANCH_REGISTERS:
        raise ValueError(
            f"branch register index {index!r} out of range 0..{NUM_BRANCH_REGISTERS - 1}"
        )


def parse_register_name(name: str) -> tuple[str, int]:
    """Parse a register name into a ``(kind, index)`` pair.

    ``kind`` is ``"data"`` for ``r0``..``r7`` (and the alias ``q`` for
    ``r7``) or ``"branch"`` for ``b0``..``b7``.

    Raises :class:`ValueError` for anything else.
    """
    text = name.strip().lower()
    if text == "q":
        return ("data", QUEUE_REGISTER)
    if len(text) >= 2 and text[0] in ("r", "b") and text[1:].isdigit():
        index = int(text[1:])
        if text[0] == "r":
            check_data_register(index)
            return ("data", index)
        check_branch_register(index)
        return ("branch", index)
    raise ValueError(f"not a register name: {name!r}")
