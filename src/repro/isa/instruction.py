"""The :class:`Instruction` value type and its disassembly.

An instruction is a plain immutable record of an opcode plus three 3-bit
fields (``a``, ``b``, ``c``) and an optional 16-bit immediate.  Field
meaning depends on the opcode class (the *positions* are fixed, per the
paper's decode-simplicity argument):

========  =========  =========  =========  =============
class     a          b          c          imm
========  =========  =========  =========  =============
ALU_RR    rd         rs1        rs2        —
ALU_RI    rd         rs1        —          16-bit value
LOAD/ST   —          rs1 base   rs2 index  displacement
LBR/LBRR  breg       rs1        —          address
BRANCH    breg       rs1 cond   delay      —
========  =========  =========  =========  =============
"""

from __future__ import annotations

from dataclasses import dataclass

from .opcodes import MAX_BRANCH_DELAY, OpClass, Opcode
from .registers import (
    branch_register_name,
    check_branch_register,
    check_data_register,
    data_register_name,
)

__all__ = ["Instruction"]

_FIELD_MASK = 0x7
_IMM_MIN = -(1 << 15)
_IMM_UMAX = (1 << 16) - 1


@dataclass(frozen=True)
class Instruction:
    """A decoded (or not-yet-encoded) instruction.

    ``imm`` is stored as the raw 16-bit pattern (0..65535); use
    :attr:`imm_signed` for the sign-extended view.  Constructors accept
    either signed or unsigned values in the representable range.
    """

    op: Opcode
    a: int = 0
    b: int = 0
    c: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for field_name in ("a", "b", "c"):
            value = getattr(self, field_name)
            if not 0 <= value <= _FIELD_MASK:
                raise ValueError(
                    f"{self.op.mnemonic}: field {field_name}={value!r} "
                    f"out of range 0..{_FIELD_MASK}"
                )
        if not _IMM_MIN <= self.imm <= _IMM_UMAX:
            raise ValueError(
                f"{self.op.mnemonic}: immediate {self.imm!r} does not fit in 16 bits"
            )
        if self.imm < 0:
            object.__setattr__(self, "imm", self.imm & 0xFFFF)
        if not self.op.is_two_parcel and self.imm != 0:
            raise ValueError(
                f"{self.op.mnemonic} is a one-parcel instruction; it has no immediate"
            )
        if self.op.op_class == OpClass.BRANCH and self.c > MAX_BRANCH_DELAY:
            raise ValueError(f"branch delay {self.c} exceeds {MAX_BRANCH_DELAY}")

    # ------------------------------------------------------------------
    # Field views
    # ------------------------------------------------------------------
    @property
    def imm_signed(self) -> int:
        """The immediate sign-extended from 16 bits."""
        return self.imm - 0x10000 if self.imm & 0x8000 else self.imm

    @property
    def rd(self) -> int:
        """Destination data register (ALU classes only)."""
        return self.a

    @property
    def rs1(self) -> int:
        return self.b

    @property
    def rs2(self) -> int:
        return self.c

    @property
    def breg(self) -> int:
        """Branch register (LBR/LBRR/PBR families)."""
        return self.a

    @property
    def delay(self) -> int:
        """Delay-slot count of a PBR instruction."""
        return self.c

    @property
    def is_branch(self) -> bool:
        return self.op.is_branch

    @property
    def parcels(self) -> int:
        """Number of 16-bit parcels this instruction occupies."""
        return 2 if self.op.is_two_parcel else 1

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def alu_rr(op: Opcode, rd: int, rs1: int, rs2: int) -> "Instruction":
        if op.op_class != OpClass.ALU_RR:
            raise ValueError(f"{op.mnemonic} is not a register-register ALU op")
        for reg in (rd, rs1, rs2):
            check_data_register(reg)
        return Instruction(op, a=rd, b=rs1, c=rs2)

    @staticmethod
    def alu_ri(op: Opcode, rd: int, rs1: int, imm: int) -> "Instruction":
        if op.op_class != OpClass.ALU_RI:
            raise ValueError(f"{op.mnemonic} is not a register-immediate ALU op")
        check_data_register(rd)
        check_data_register(rs1)
        return Instruction(op, a=rd, b=rs1, imm=imm)

    @staticmethod
    def load(base: int, displacement: int = 0) -> "Instruction":
        """``ld`` — push ``R[base] + displacement`` onto the LAQ."""
        check_data_register(base)
        return Instruction(Opcode.LD, b=base, imm=displacement)

    @staticmethod
    def load_indexed(base: int, index: int) -> "Instruction":
        """``ldx`` — push ``R[base] + R[index]`` onto the LAQ."""
        check_data_register(base)
        check_data_register(index)
        return Instruction(Opcode.LDX, b=base, c=index)

    @staticmethod
    def store(base: int, displacement: int = 0) -> "Instruction":
        """``st`` — push ``R[base] + displacement`` onto the SAQ."""
        check_data_register(base)
        return Instruction(Opcode.ST, b=base, imm=displacement)

    @staticmethod
    def store_indexed(base: int, index: int) -> "Instruction":
        """``stx`` — push ``R[base] + R[index]`` onto the SAQ."""
        check_data_register(base)
        check_data_register(index)
        return Instruction(Opcode.STX, b=base, c=index)

    @staticmethod
    def load_branch_register(breg: int, address: int) -> "Instruction":
        check_branch_register(breg)
        return Instruction(Opcode.LBR, a=breg, imm=address)

    @staticmethod
    def branch(op: Opcode, breg: int, cond_reg: int = 0, delay: int = 0) -> "Instruction":
        if op.op_class != OpClass.BRANCH:
            raise ValueError(f"{op.mnemonic} is not a prepare-to-branch op")
        check_branch_register(breg)
        check_data_register(cond_reg)
        return Instruction(op, a=breg, b=cond_reg, c=delay)

    @staticmethod
    def nop() -> "Instruction":
        return Instruction(Opcode.NOP)

    @staticmethod
    def halt() -> "Instruction":
        return Instruction(Opcode.HALT)

    # ------------------------------------------------------------------
    # Disassembly
    # ------------------------------------------------------------------
    def disassemble(self) -> str:
        """Render in the same assembly syntax :mod:`repro.asm` accepts."""
        op = self.op
        cls = op.op_class
        m = op.mnemonic
        if cls == OpClass.SYSTEM:
            return m
        if cls == OpClass.ALU_RR:
            return (
                f"{m} {data_register_name(self.a)}, "
                f"{data_register_name(self.b)}, {data_register_name(self.c)}"
            )
        if cls == OpClass.ALU_RI:
            if op == Opcode.LI or op == Opcode.LIH:
                return f"{m} {data_register_name(self.a)}, {self.imm_signed}"
            return (
                f"{m} {data_register_name(self.a)}, "
                f"{data_register_name(self.b)}, {self.imm_signed}"
            )
        if op in (Opcode.LD, Opcode.ST):
            return f"{m} {data_register_name(self.b)}, {self.imm_signed}"
        if op in (Opcode.LDX, Opcode.STX):
            return f"{m} {data_register_name(self.b)}, {data_register_name(self.c)}"
        if op == Opcode.LBR:
            return f"{m} {branch_register_name(self.a)}, {self.imm}"
        if op == Opcode.LBRR:
            return f"{m} {branch_register_name(self.a)}, {data_register_name(self.b)}"
        if cls == OpClass.BRANCH:
            if op == Opcode.PBRA:
                return f"{m} {branch_register_name(self.a)}, {self.c}"
            return (
                f"{m} {branch_register_name(self.a)}, "
                f"{data_register_name(self.b)}, {self.c}"
            )
        raise AssertionError(f"unhandled opcode {op!r}")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.disassemble()
