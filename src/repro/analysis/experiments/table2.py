"""Experiment: Table II (the simulated IQ and IQB configurations).

A configuration-integrity check: the four machine presets must match
the paper's table exactly, and each must build a valid machine.
"""

from __future__ import annotations

from ...core.config import PIPE_CONFIGURATIONS, MachineConfig
from ..claims import ClaimCheck
from ..tables import render_table2
from . import ExperimentContext, ExperimentReport

_PAPER_TABLE2 = {
    "8-8": (8, 8, 8),
    "16-16": (16, 16, 16),
    "16-32": (32, 16, 32),
    "32-32": (32, 32, 32),
}


def run(context: ExperimentContext) -> ExperimentReport:
    checks = []
    for name, (line, iq, iqb) in _PAPER_TABLE2.items():
        config = PIPE_CONFIGURATIONS[name]
        match = (config.line_size, config.iq_size, config.iqb_size) == (line, iq, iqb)
        buildable = True
        try:
            MachineConfig.pipe(name, icache_size=128)
        except ValueError:
            buildable = False
        checks.append(
            ClaimCheck(
                figure="Table II",
                claim=f"configuration {name} matches the paper and builds",
                passed=match and buildable,
                detail=(
                    f"line={config.line_size} iq={config.iq_size} "
                    f"iqb={config.iqb_size}"
                ),
            )
        )
    return ExperimentReport(
        experiment_id="table2", text=render_table2(), series={}, checks=checks
    )
