"""Experiment: regenerate Table I (inner-loop sizes).

The structural property the evaluation depends on is that roughly half
of the inner loops fit within 128 bytes — that is where the knee of
every cycles-vs-cache-size curve sits (section 6: "The knee of the
curve corresponds to the size of most of the inner loops").
"""

from __future__ import annotations

from ...kernels.loops import PAPER_TOTAL_INSTRUCTIONS
from ...kernels.suite import LivermoreSuite, cached_livermore_suite
from ..claims import ClaimCheck
from ..tables import render_table1, table1_rows
from . import ExperimentContext, ExperimentReport


def run(context: ExperimentContext) -> ExperimentReport:
    suite = context.suite
    if not isinstance(suite, LivermoreSuite):
        suite = cached_livermore_suite()
    rows = table1_rows(suite)
    fit_ours = sum(1 for _n, ours, _p in rows if ours <= 128)
    fit_paper = sum(1 for _n, _o, paper in rows if paper <= 128)
    checks = [
        ClaimCheck(
            figure="Table I",
            claim="about half of the inner loops fit in 128 bytes",
            passed=abs(fit_ours - fit_paper) <= 2,
            detail=f"ours: {fit_ours}/14 fit, paper: {fit_paper}/14 fit",
        ),
        ClaimCheck(
            figure="Table I",
            claim="every inner loop is within 2x of the paper's size",
            passed=all(
                0.5 <= ours / paper <= 2.0 for _n, ours, paper in rows
            ),
            detail=", ".join(
                f"LL{n}:{ours}/{paper}" for n, ours, paper in rows
            ),
        ),
    ]
    text = render_table1(suite)
    text += (
        f"\n\nbenchmark scale: paper executes {PAPER_TOTAL_INSTRUCTIONS} "
        "instructions; see tests for our measured count."
    )
    return ExperimentReport(
        experiment_id="table1", text=text, series={}, checks=checks
    )
