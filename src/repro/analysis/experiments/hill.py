"""Extension experiment: re-verify Hill's prefetch-strategy ranking.

The paper adopts always-prefetch as the conventional baseline because
"throughout his study, the always-prefetch strategy consistently
provided the best performance" (section 4.1).  This experiment runs the
conventional cache under all four policies (always / tagged / on-miss /
none) across cache sizes and checks that ranking on our workload.
"""

from __future__ import annotations

from ...core.config import MachineConfig, PrefetchPolicy
from ..claims import ClaimCheck
from . import ExperimentContext, ExperimentReport

_MEMORY = {"memory_access_time": 6, "input_bus_width": 8}


def run(context: ExperimentContext) -> ExperimentReport:
    points = [
        (policy, size)
        for policy in PrefetchPolicy
        for size in context.cache_sizes
    ]
    results = context.simulate_many(
        [
            MachineConfig.conventional(size, prefetch_policy=policy, **_MEMORY)
            for policy, size in points
        ]
    )
    cycles: dict[PrefetchPolicy, dict[int, int]] = {
        policy: {} for policy in PrefetchPolicy
    }
    for (policy, size), result in zip(points, results):
        cycles[policy][size] = result.cycles

    lines = [
        "Hill's prefetch strategies on the conventional cache "
        "(T=6, 8B bus, non-pipelined):",
        "",
        f"{'policy':<10}" + "".join(f"{size:>9}" for size in context.cache_sizes),
    ]
    for policy in PrefetchPolicy:
        row = "".join(f"{cycles[policy][size]:>9}" for size in context.cache_sizes)
        lines.append(f"{policy.value:<10}{row}")

    checks = []
    always_best = all(
        cycles[PrefetchPolicy.ALWAYS][size]
        <= min(cycles[policy][size] for policy in PrefetchPolicy) * 1.02
        for size in context.cache_sizes
    )
    checks.append(
        ClaimCheck(
            figure="Hill policies",
            claim="always-prefetch consistently provides the best performance",
            passed=always_best,
            detail="within 2% of the best policy at every cache size",
        )
    )
    # Above the 128-byte knee the cache holds everything and prefetching
    # buys (or costs) fractions of a percent, so Hill's "worst" claim is
    # checked where prefetching actually matters.
    small_sizes = [size for size in context.cache_sizes if size <= 128]
    none_worst = all(
        cycles[PrefetchPolicy.NONE][size]
        == max(cycles[policy][size] for policy in PrefetchPolicy)
        for size in small_sizes
    )
    checks.append(
        ClaimCheck(
            figure="Hill policies",
            claim="demand fetching alone is the worst policy below the knee",
            passed=none_worst,
            detail=f"no-prefetch slowest at every cache size <= 128B "
            f"({small_sizes})",
        )
    )
    return ExperimentReport(
        experiment_id="hill", text="\n".join(lines), series={}, checks=checks
    )
