"""Extension experiment: IQ and IQB size sensitivity (parameters 7/8).

Section 5 lists "the instruction queue (IQ) size" and "the instruction
queue buffer (IQB) size" as simulated parameters, but the presented
figures only show the four Table II combinations.  This experiment
sweeps IQ size at a fixed 16-byte line (the paper's strong performer)
and reports how much queue is actually needed — the design-cost story
behind "excellent performance ... with a limited number of transistors"
(section 6).
"""

from __future__ import annotations

from ...core.config import MachineConfig
from ..claims import ClaimCheck
from . import ExperimentContext, ExperimentReport

_MEMORY = {"memory_access_time": 6, "input_bus_width": 8}
_LINE = 16
_IQ_SIZES = (4, 8, 16, 32)
_IQB_SIZES = (16, 32, 64)
_CACHE = 128


def run(context: ExperimentContext) -> ExperimentReport:
    base = MachineConfig.pipe("16-16", _CACHE, **_MEMORY)
    configs = [base.with_overrides(iq_size=size) for size in _IQ_SIZES] + [
        base.with_overrides(iqb_size=size) for size in _IQB_SIZES
    ]
    results = context.simulate_many(configs)
    iq_cycles = {
        size: result.cycles
        for size, result in zip(_IQ_SIZES, results[: len(_IQ_SIZES)])
    }
    iqb_cycles = {
        size: result.cycles
        for size, result in zip(_IQB_SIZES, results[len(_IQ_SIZES) :])
    }

    lines = [
        "IQ/IQB size sensitivity (16-byte line, 128B cache, T=6, 8B bus):",
        "",
        f"{'IQ bytes':<10}" + "".join(f"{size:>8}" for size in _IQ_SIZES),
        f"{'cycles':<10}" + "".join(f"{iq_cycles[size]:>8}" for size in _IQ_SIZES),
        "",
        f"{'IQB bytes':<10}" + "".join(f"{size:>8}" for size in _IQB_SIZES),
        f"{'cycles':<10}" + "".join(f"{iqb_cycles[size]:>8}" for size in _IQB_SIZES),
    ]

    line_iq = iq_cycles[_LINE]
    best_iq = min(iq_cycles.values())
    oversized = iq_cycles[max(_IQ_SIZES)]
    checks = [
        ClaimCheck(
            figure="IQ/IQB sizes",
            claim="a line-sized IQ captures nearly all of the benefit",
            passed=line_iq <= best_iq * 1.03,
            detail=f"IQ=16B: {line_iq} cycles vs best {best_iq}",
        ),
        ClaimCheck(
            figure="IQ/IQB sizes",
            claim="growing the IQ beyond the line size buys little",
            passed=abs(oversized - line_iq) / line_iq < 0.05,
            detail=f"IQ=32B: {oversized} vs IQ=16B: {line_iq}",
        ),
        ClaimCheck(
            figure="IQ/IQB sizes",
            claim="a line-sized IQB suffices (bigger buys little)",
            passed=abs(iqb_cycles[max(_IQB_SIZES)] - iqb_cycles[_LINE])
            / iqb_cycles[_LINE]
            < 0.05,
            detail=f"IQB 16B: {iqb_cycles[16]}, 64B: {iqb_cycles[64]}",
        ),
    ]
    return ExperimentReport(
        experiment_id="queues", text="\n".join(lines), series={}, checks=checks
    )
