"""Experiment: Figure 5 — 6-cycle non-pipelined memory, 4B vs 8B bus.

Paper findings reproduced here (section 6):

* for memory access time > 1 cycle, **every** PIPE configuration beats
  the conventional cache;
* at small cache sizes the PIPE configurations are much less sensitive
  to bus width than the conventional cache ("if one is forced to use a
  bus width of 4 bytes ... the PIPE strategy will significantly
  outperform the conventional cache approach").
"""

from __future__ import annotations

from ..claims import check_figure5
from ..figures import render_figure
from . import ExperimentContext, ExperimentReport


def run(context: ExperimentContext) -> ExperimentReport:
    series_5a = context.sweep(memory_access_time=6, input_bus_width=4)
    series_5b = context.sweep(memory_access_time=6, input_bus_width=8)
    checks = check_figure5(series_5b, series_narrow_bus=series_5a, figure="5b")
    checks += check_figure5(series_5a, figure="5a")
    text = "\n\n".join(
        [
            render_figure("5a", series_5a, context.cache_sizes),
            render_figure("5b", series_5b, context.cache_sizes),
        ]
    )
    return ExperimentReport(
        experiment_id="figure5",
        text=text,
        series={"5a": series_5a, "5b": series_5b},
        checks=checks,
    )
