"""Ablations for the design choices the paper discusses but does not plot.

* **A — intermediate memory speeds.** "Simulations with memory access
  times of 2 and 3 clock cycles showed similar results" (section 6): the
  PIPE-over-conventional ordering must already hold at T=2 and T=3.
* **B — fetch policy.** "A certain performance penalty is paid by ...
  not allowing true prefetch from off-chip" (section 6): the guaranteed-
  execution policy must never beat true prefetch.
* **C — priority at the memory interface.** The presented results give
  instruction requests priority over data requests; architectural queues
  are what make that affordable (section 2.2).  We report both settings.
* **D — instruction format.** Parameter (1) of section 5: the native
  16/32-bit parcel format versus the fixed 32-bit format.  Denser code
  means fewer fetch bytes, so the parcel format should not be slower.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.config import MachineConfig
from ...isa.encoding import InstructionFormat
from ...kernels.suite import cached_livermore_suite
from ...memory.requests import RequestPriority
from ..claims import ClaimCheck, by_label
from . import ExperimentContext, ExperimentReport


@dataclass
class AblationRow:
    name: str
    setting: str
    cycles: int


def _ablation_a(context: ExperimentContext) -> tuple[list[AblationRow], list[ClaimCheck]]:
    rows: list[AblationRow] = []
    checks: list[ClaimCheck] = []
    for access_time in (2, 3):
        series = context.sweep(memory_access_time=access_time, input_bus_width=8)
        curves = by_label(series)
        conv = curves["conventional"].as_dict()
        # T=2 sits in the transition from the T=1 regime, so we check the
        # paper's *approach-level* statement: the best PIPE configuration
        # wins at every cache size (at T=3+, every configuration does).
        ok = all(
            min(
                curve.as_dict().get(size, 1 << 62)
                for label, curve in curves.items()
                if label != "conventional"
            )
            < conv[size]
            for size in conv
        )
        checks.append(
            ClaimCheck(
                figure="ablation A",
                claim=f"PIPE beats conventional at access time {access_time}",
                passed=ok,
                detail="best PIPE configuration faster at every cache size "
                "(section 6: T=2/3 'showed similar results')",
            )
        )
        for label, curve in curves.items():
            rows.append(
                AblationRow(f"T={access_time}", label, curve.as_dict().get(128, -1))
            )
    return rows, checks


def _ablation_b(context: ExperimentContext) -> tuple[list[AblationRow], list[ClaimCheck]]:
    rows: list[AblationRow] = []
    checks: list[ClaimCheck] = []
    for size in (32, 128):
        true_prefetch, guaranteed = (
            result.cycles
            for result in context.simulate_many(
                [
                    MachineConfig.pipe(
                        "16-16", size, memory_access_time=6, input_bus_width=8,
                        true_prefetch=policy,
                    )
                    for policy in (True, False)
                ]
            )
        )
        rows.append(AblationRow(f"fetch policy @{size}B", "true prefetch", true_prefetch))
        rows.append(AblationRow(f"fetch policy @{size}B", "guaranteed only", guaranteed))
        checks.append(
            ClaimCheck(
                figure="ablation B",
                claim=f"true prefetch is never slower (cache {size}B)",
                passed=true_prefetch <= guaranteed,
                detail=f"true={true_prefetch}, guaranteed={guaranteed}",
            )
        )
    return rows, checks


def _ablation_c(context: ExperimentContext) -> tuple[list[AblationRow], list[ClaimCheck]]:
    rows: list[AblationRow] = []
    instruction_first, data_first = (
        result.cycles
        for result in context.simulate_many(
            [
                MachineConfig.pipe(
                    "16-16", 128, memory_access_time=6, input_bus_width=8
                ),
                MachineConfig.pipe(
                    "16-16", 128, memory_access_time=6, input_bus_width=8,
                    priority=RequestPriority.DATA_FIRST,
                ),
            ]
        )
    )
    rows.append(AblationRow("priority", "instruction first", instruction_first))
    rows.append(AblationRow("priority", "data first", data_first))
    delta = abs(instruction_first - data_first) / max(instruction_first, data_first)
    checks = [
        ClaimCheck(
            figure="ablation C",
            claim="queues keep the priority choice low-impact",
            passed=delta <= 0.25,
            detail=f"instr-first={instruction_first}, data-first={data_first} "
            f"({delta:.1%} apart)",
        )
    ]
    return rows, checks


def _ablation_d(context: ExperimentContext) -> tuple[list[AblationRow], list[ClaimCheck]]:
    # The parcel-format program must be assembled separately at the same
    # workload scale the context's fixed-32 program used.
    parcel_program = cached_livermore_suite(
        fmt=InstructionFormat.PARCEL, scale=context.scale
    ).program
    fixed_program = context.program
    rows: list[AblationRow] = []
    results = {}
    for fmt_name, program, fmt in (
        ("fixed32", fixed_program, InstructionFormat.FIXED32),
        ("parcel", parcel_program, InstructionFormat.PARCEL),
    ):
        cycles = context.simulate(
            MachineConfig.pipe(
                "16-16", 128, memory_access_time=6, input_bus_width=8,
                instruction_format=fmt,
            ),
            program=program,
        ).cycles
        results[fmt_name] = cycles
        rows.append(AblationRow("format", fmt_name, cycles))
    checks = [
        ClaimCheck(
            figure="ablation D",
            claim="the denser parcel format is not slower",
            passed=results["parcel"] <= results["fixed32"] * 1.02,
            detail=f"fixed32={results['fixed32']}, parcel={results['parcel']}",
        )
    ]
    return rows, checks


def run(context: ExperimentContext) -> ExperimentReport:
    all_rows: list[AblationRow] = []
    all_checks: list[ClaimCheck] = []
    for runner in (_ablation_a, _ablation_b, _ablation_c, _ablation_d):
        rows, checks = runner(context)
        all_rows.extend(rows)
        all_checks.extend(checks)
    lines = ["Ablations (128B cache unless noted):", ""]
    lines += [f"{row.name:<22} {row.setting:<18} {row.cycles:>10}" for row in all_rows]
    return ExperimentReport(
        experiment_id="ablations",
        text="\n".join(lines),
        series={},
        checks=all_checks,
    )
