"""One module per paper experiment (tables, figures, claims, ablations).

Each experiment module exposes ``run(context) -> ExperimentReport``.
:class:`ExperimentContext` carries the benchmark program and memoises
sweeps so experiments that share parameter points (e.g. Figure 5b and
Figure 6a) do not re-simulate them.

Registry:

=============  ====================================================
``table1``     inner-loop sizes (our Table I vs the paper's)
``table2``     IQ/IQB configurations (Table II)
``figure4``    cycles vs cache size, access=1 (4a: 4B bus, 4b: 8B)
``figure5``    cycles vs cache size, access=6 (5a: 4B bus, 5b: 8B)
``figure6``    access=6, 8B bus (6a: non-pipelined, 6b: pipelined)
``headline``   the "up to twice as fast" claim (section 7)
``ablations``  access-time 2/3, fetch policy, priority, format
``hill``       Hill's prefetch-strategy ranking (section 4.1)
``tib``        the Target Instruction Buffer trade-off (section 2.1)
``queues``     IQ/IQB size sensitivity (parameters 7/8)
``assoc``      cache associativity vs the paper's direct mapping
``delays``     PBR delay-slot utilisation (section 3.1.3)
=============  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ...asm.program import Program
from ...core.config import PAPER_CACHE_SIZES, MachineConfig
from ...core.parallel import simulate_many
from ...core.resilience import SweepSupervisor
from ...core.results import SimulationResult
from ...core.simcache import SimulationCache, cached_simulate
from ...core.sweep import SweepSeries, run_cache_sweep
from ..claims import ClaimCheck

__all__ = [
    "EXPERIMENTS",
    "ExperimentContext",
    "ExperimentReport",
    "get_experiment",
    "run_experiment",
]


@dataclass
class ExperimentReport:
    """The output of one experiment: text, raw series, and claim checks."""

    experiment_id: str
    text: str
    series: dict[str, list[SweepSeries]] = field(default_factory=dict)
    checks: list[ClaimCheck] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def render_checks(self) -> str:
        return "\n".join(str(check) for check in self.checks) or "(no checks)"


@dataclass
class ExperimentContext:
    """Shared state across experiments: the program plus a sweep memo.

    ``jobs`` and ``cache`` flow into every sweep and every simulation an
    experiment routes through :meth:`simulate` / :meth:`simulate_many`,
    giving the whole report parallel fan-out and content-addressed
    result reuse without each experiment module knowing about either.
    """

    program: Program
    cache_sizes: Sequence[int] = PAPER_CACHE_SIZES
    suite: object | None = None  #: LivermoreSuite when available (table1)
    scale: float = 1.0  #: workload scale the program was built with
    jobs: int = 1  #: worker processes for independent simulation points
    cache: SimulationCache | None = None  #: content-addressed result store
    supervisor: SweepSupervisor | None = None  #: fault-tolerant execution
    _sweeps: dict[tuple, list[SweepSeries]] = field(default_factory=dict)

    def sweep(
        self,
        memory_access_time: int,
        input_bus_width: int,
        memory_pipelined: bool = False,
        **extra,
    ) -> list[SweepSeries]:
        key = (
            memory_access_time,
            input_bus_width,
            memory_pipelined,
            tuple(sorted(extra.items())),
            tuple(self.cache_sizes),
        )
        if key not in self._sweeps:
            self._sweeps[key] = run_cache_sweep(
                self.program,
                cache_sizes=self.cache_sizes,
                jobs=self.jobs,
                cache=self.cache,
                supervisor=self.supervisor,
                memory_access_time=memory_access_time,
                input_bus_width=input_bus_width,
                memory_pipelined=memory_pipelined,
                **extra,
            )
        return self._sweeps[key]

    # ------------------------------------------------------------------
    # Cached/parallel simulation for the experiments' ad-hoc points
    # ------------------------------------------------------------------
    def simulate(
        self, config: MachineConfig, program: Program | None = None
    ) -> SimulationResult:
        """One simulation point, through the context's result cache."""
        return cached_simulate(config, program or self.program, self.cache)

    def simulate_many(
        self, configs: Sequence[MachineConfig], program: Program | None = None
    ) -> list[SimulationResult]:
        """Independent points, cache-checked then fanned out over workers.

        Results come back in ``configs`` order, identical to calling
        :meth:`simulate` in a loop.
        """
        program = program or self.program
        results: dict[int, SimulationResult] = {}
        misses: list[tuple[int, MachineConfig]] = []
        for index, config in enumerate(configs):
            hit = (
                self.cache.lookup(config, program)
                if self.cache is not None
                else None
            )
            if hit is not None:
                results[index] = hit
            else:
                misses.append((index, config))
        if misses:
            fresh = simulate_many(
                program, [config for _, config in misses], jobs=self.jobs
            )
            for (index, config), result in zip(misses, fresh):
                results[index] = result
                if self.cache is not None:
                    self.cache.store(config, program, result)
        return [results[index] for index in range(len(configs))]


def get_experiment(experiment_id: str) -> Callable[[ExperimentContext], ExperimentReport]:
    from . import (
        ablations,
        associativity,
        delays,
        figure4,
        figure5,
        figure6,
        headline,
        hill,
        queues,
        table1,
        table2,
        tib,
    )

    registry = {
        "table1": table1.run,
        "table2": table2.run,
        "figure4": figure4.run,
        "figure5": figure5.run,
        "figure6": figure6.run,
        "headline": headline.run,
        "ablations": ablations.run,
        "hill": hill.run,
        "tib": tib.run,
        "queues": queues.run,
        "assoc": associativity.run,
        "delays": delays.run,
    }
    return registry[experiment_id]


EXPERIMENTS = (
    "table1",
    "table2",
    "figure4",
    "figure5",
    "figure6",
    "headline",
    "ablations",
    "hill",
    "tib",
    "queues",
    "assoc",
    "delays",
)


def run_experiment(experiment_id: str, context: ExperimentContext) -> ExperimentReport:
    """Run one experiment by id against a shared context."""
    return get_experiment(experiment_id)(context)
