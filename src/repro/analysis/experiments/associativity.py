"""Extension experiment: cache associativity.

The paper's caches are direct mapped (section 3.2) — the cheap choice
for a transistor-starved chip.  This experiment measures what 2-/4-way
LRU associativity would have bought each strategy at small sizes, where
the benchmark's loop-after-loop layout causes conflict misses.
"""

from __future__ import annotations

from ...core.config import MachineConfig
from ..claims import ClaimCheck
from . import ExperimentContext, ExperimentReport

_MEMORY = {"memory_access_time": 6, "input_bus_width": 8}
_WAYS = (1, 2, 4)
_SIZES = (64, 128)


def run(context: ExperimentContext) -> ExperimentReport:
    points: list[tuple[str, int, int]] = []
    configs: list[MachineConfig] = []
    for size in _SIZES:
        for ways in _WAYS:
            points.append(("PIPE 16-16", size, ways))
            configs.append(
                MachineConfig.pipe("16-16", size, cache_associativity=ways, **_MEMORY)
            )
            points.append(("conventional", size, ways))
            configs.append(
                MachineConfig.conventional(size, cache_associativity=ways, **_MEMORY)
            )
    table: dict[tuple[str, int, int], int] = {
        point: result.cycles
        for point, result in zip(points, context.simulate_many(configs))
    }

    lines = [
        "Cache associativity (LRU) at small sizes (T=6, 8B bus):",
        "",
        f"{'strategy':<14}{'cache':>7}" + "".join(f"{w}-way".rjust(9) for w in _WAYS),
    ]
    for strategy in ("PIPE 16-16", "conventional"):
        for size in _SIZES:
            row = "".join(
                f"{table[(strategy, size, ways)]:>9}" for ways in _WAYS
            )
            lines.append(f"{strategy:<14}{size:>6}B{row}")

    # Contiguous loop code is direct mapping's best case: a loop that
    # fits the cache has zero conflicts, while LRU associativity halves
    # the set count and exhibits the classic cyclic-reuse pathology (a
    # loop of N+1 lines over an N-line set evicts exactly the line it
    # needs next).  The paper's direct-mapped choice is therefore not
    # just cheap but *right* for this workload.
    checks = []
    direct_never_worse = all(
        table[(strategy, size, 1)] <= table[(strategy, size, ways)] * 1.02
        for strategy in ("PIPE 16-16", "conventional")
        for size in _SIZES
        for ways in _WAYS[1:]
    )
    checks.append(
        ClaimCheck(
            figure="associativity",
            claim="direct mapping is at least as good as LRU associativity "
            "for contiguous loop code",
            passed=direct_never_worse,
            detail="1-way <= k-way (within 2%) for every strategy and size",
        )
    )
    pipe_direct = table[("PIPE 16-16", 64, 1)]
    pipe_assoc = table[("PIPE 16-16", 64, 4)]
    delta = abs(pipe_assoc - pipe_direct) / pipe_direct
    checks.append(
        ClaimCheck(
            figure="associativity",
            claim="the mapping choice is second-order next to the IQ/IQB",
            passed=delta < 0.15,
            detail=(
                f"4-way changes PIPE@64B by {delta:.1%} — the queues, not "
                "the mapping, dominate"
            ),
        )
    )
    return ExperimentReport(
        experiment_id="associativity",
        text="\n".join(lines),
        series={},
        checks=checks,
    )
