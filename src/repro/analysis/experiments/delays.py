"""Extension experiment: prepare-to-branch delay-slot utilisation.

Section 3.1.3: "We have found that a compiler can easily generate code
with an average of 4 instructions that can be unconditionally executed
after a branch [YoGo84].  Therefore, PIPE uses ... the prepare-to-branch
(PBR) instruction which allows the compiler to specify the number of
delay slots (between 0 and 7)."

This experiment inspects the *generated benchmark itself* (static: the
delay field of every PBR in the layout; dynamic: delay slots actually
executed) and checks that our mini-compiler achieves the utilisation the
PBR design assumes — and that the delay slots cover the 2-cycle branch
resolution, so a cached loop pays no branch stalls at all.
"""

from __future__ import annotations

from ...core.config import MachineConfig
from ..claims import ClaimCheck
from . import ExperimentContext, ExperimentReport


def run(context: ExperimentContext) -> ExperimentReport:
    program = context.program
    pbr_delays = [
        instruction.delay
        for _address, instruction in program.layout
        if instruction.is_branch
    ]
    static_avg = sum(pbr_delays) / len(pbr_delays) if pbr_delays else 0.0

    result = context.simulate(
        MachineConfig.pipe("16-16", 512, memory_access_time=1)
    )
    unresolved = result.stalls.get("branch_unresolved", 0)

    histogram: dict[int, int] = {}
    for delay in pbr_delays:
        histogram[delay] = histogram.get(delay, 0) + 1

    lines = [
        "Prepare-to-branch delay-slot utilisation in the generated benchmark:",
        "",
        f"PBR instructions (static) : {len(pbr_delays)}",
        f"average delay slots       : {static_avg:.2f} "
        "(paper: 'an average of 4 ... after a branch')",
        "delay histogram           : "
        + ", ".join(f"{d}:{n}" for d, n in sorted(histogram.items())),
        "",
        f"dynamic branches          : {result.branches} "
        f"({result.branches_taken} taken)",
        f"branch-unresolved stalls  : {unresolved} "
        "(512B cache, so fetch never limits)",
    ]
    checks = [
        ClaimCheck(
            figure="delay slots",
            claim="the compiler fills ~4 delay slots per branch",
            passed=3.0 <= static_avg <= 7.0,
            detail=f"static average {static_avg:.2f} across {len(pbr_delays)} PBRs",
        ),
        ClaimCheck(
            figure="delay slots",
            claim="delay slots cover branch resolution (no unresolved stalls)",
            passed=unresolved == 0,
            detail=f"{unresolved} branch_unresolved stalls over {result.branches} "
            "branches",
        ),
        ClaimCheck(
            figure="delay slots",
            claim="every delay fits the PBR's 3-bit field",
            passed=all(0 <= delay <= 7 for delay in pbr_delays),
            detail="0 <= delay <= 7 for every generated PBR",
        ),
    ]
    return ExperimentReport(
        experiment_id="delays", text="\n".join(lines), series={}, checks=checks
    )
