"""Experiment: Figure 6 — 8B bus, 6-cycle memory, pipelining on/off.

Figure 6a is Figure 5b on a different scale; Figure 6b enables the
pipelined external memory (a new request accepted every cycle).  Paper
findings reproduced here (section 6): the pipelined curves keep the
same shape but shift down and compress, PIPE still beats the
conventional cache everywhere, and the 16/32-byte-line configurations
are the best performers at this memory speed (the reverse of Figure 4).
"""

from __future__ import annotations

from ..claims import check_figure6, check_line_size_reversal
from ..figures import render_figure
from . import ExperimentContext, ExperimentReport


def run(context: ExperimentContext) -> ExperimentReport:
    series_6a = context.sweep(memory_access_time=6, input_bus_width=8)
    series_6b = context.sweep(
        memory_access_time=6, input_bus_width=8, memory_pipelined=True
    )
    series_fast = context.sweep(memory_access_time=1, input_bus_width=4)
    checks = check_figure6(series_6a, series_6b)
    checks += check_line_size_reversal(series_fast, series_6b)
    text = "\n\n".join(
        [
            render_figure("6a", series_6a, context.cache_sizes),
            render_figure("6b", series_6b, context.cache_sizes),
        ]
    )
    return ExperimentReport(
        experiment_id="figure6",
        text=text,
        series={"6a": series_6a, "6b": series_6b},
        checks=checks,
    )
