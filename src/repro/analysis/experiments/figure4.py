"""Experiment: Figure 4 — 1-cycle non-pipelined memory, 4B vs 8B bus.

Paper findings reproduced here (section 6):

* bus width matters a lot below 128-byte caches;
* configurations 8-8 and 16-16 are nearly flat with an 8-byte bus — a
  16/32-byte cache with IQ+IQB approaches 512-byte-cache performance;
* this is the **only** parameter point where the conventional cache
  beats some PIPE configuration.
"""

from __future__ import annotations

from ..claims import check_figure4a, check_figure4b
from ..figures import render_figure
from . import ExperimentContext, ExperimentReport


def run(context: ExperimentContext) -> ExperimentReport:
    series_4a = context.sweep(memory_access_time=1, input_bus_width=4)
    series_4b = context.sweep(memory_access_time=1, input_bus_width=8)
    checks = check_figure4a(series_4a) + check_figure4b(series_4b)
    text = "\n\n".join(
        [
            render_figure("4a", series_4a, context.cache_sizes),
            render_figure("4b", series_4b, context.cache_sizes),
        ]
    )
    return ExperimentReport(
        experiment_id="figure4",
        text=text,
        series={"4a": series_4a, "4b": series_4b},
        checks=checks,
    )
