"""Extension experiment: the Target Instruction Buffer trade-off.

Paper section 2.1 summarises the Rau & Rossman / Hill findings: "a
small TIB can provide better performance than a simple small
instruction cache, [but] the use of a TIB implies large amounts of
off-chip accessing".  With the TIB frontend implemented we can measure
both halves of the sentence against the paper's own strategies.
"""

from __future__ import annotations

from ...core.config import MachineConfig
from ..claims import ClaimCheck
from . import ExperimentContext, ExperimentReport

_MEMORY = {"memory_access_time": 6, "input_bus_width": 8}

#: TIB geometries swept: (entries, bytes per entry) → total buffer bytes.
_TIB_SHAPES = ((2, 16), (4, 16), (8, 16), (8, 32))


def _ifetch_traffic(result) -> int:
    return (
        result.memory.ifetch_demand_accepted
        + result.memory.ifetch_prefetch_accepted
    )


def run(context: ExperimentContext) -> ExperimentReport:
    rows: list[tuple[str, int, int, str]] = []
    configs = [
        MachineConfig.tib(entries, entry_bytes, **_MEMORY)
        for entries, entry_bytes in _TIB_SHAPES
    ] + [
        MachineConfig.conventional(32, **_MEMORY),
        MachineConfig.conventional(128, **_MEMORY),
        MachineConfig.pipe("16-16", 32, **_MEMORY),
    ]
    results = context.simulate_many(configs)
    tib_results = dict(zip(_TIB_SHAPES, results[: len(_TIB_SHAPES)]))
    conventional_small, conventional_big, pipe_small = results[len(_TIB_SHAPES) :]
    for (entries, entry_bytes), result in tib_results.items():
        rows.append(
            (
                f"TIB {entries}x{entry_bytes}B ({entries * entry_bytes}B)",
                result.cycles,
                _ifetch_traffic(result),
                f"{result.ipc:.3f}",
            )
        )
    for label, result in (
        ("conventional 32B cache", conventional_small),
        ("conventional 128B cache", conventional_big),
        ("PIPE 16-16, 32B cache", pipe_small),
    ):
        rows.append((label, result.cycles, _ifetch_traffic(result), f"{result.ipc:.3f}"))

    lines = [
        "Target Instruction Buffer vs caches (T=6, 8B bus, non-pipelined):",
        "",
        f"{'design':<28}{'cycles':>9}{'I-requests':>12}{'IPC':>7}",
    ]
    for label, cycles, traffic, ipc in rows:
        lines.append(f"{label:<28}{cycles:>9}{traffic:>12}{ipc:>7}")

    best_tib = min(result.cycles for result in tib_results.values())
    reference_tib = tib_results[(4, 16)]
    checks = [
        ClaimCheck(
            figure="TIB",
            claim="a small TIB beats a simple small instruction cache",
            passed=best_tib < conventional_small.cycles,
            detail=(
                f"best TIB {best_tib} cycles vs conventional 32B "
                f"{conventional_small.cycles}"
            ),
        ),
        ClaimCheck(
            figure="TIB",
            claim="the TIB implies large amounts of off-chip accessing",
            passed=_ifetch_traffic(reference_tib)
            > 1.5 * _ifetch_traffic(conventional_big),
            detail=(
                f"TIB 4x16B makes {_ifetch_traffic(reference_tib)} instruction "
                f"requests vs {_ifetch_traffic(conventional_big)} for a 128B "
                "conventional cache (no cache to capture the loops)"
            ),
        ),
        ClaimCheck(
            figure="TIB",
            claim="the PIPE cache+IQ+IQB beats the TIB at equal smallness",
            passed=pipe_small.cycles < best_tib,
            detail=f"PIPE@32B {pipe_small.cycles} vs best TIB {best_tib}",
        ),
    ]
    return ExperimentReport(
        experiment_id="tib", text="\n".join(lines), series={}, checks=checks
    )
