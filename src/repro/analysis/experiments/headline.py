"""Experiment: the paper's headline claim.

Section 7: "Our simulation results indicate that using our approach the
processor performs up to twice as fast as a processor using the
conventional cache-only approach with a small cache size and can in
fact provide performance comparable to larger caches."
"""

from __future__ import annotations

from ..claims import by_label, check_headline
from . import ExperimentContext, ExperimentReport


def run(context: ExperimentContext) -> ExperimentReport:
    series = context.sweep(memory_access_time=6, input_bus_width=4)
    checks = check_headline(series)
    curves = by_label(series)
    conv = curves["conventional"].as_dict()
    lines = ["Headline claim (T=6, 4-byte bus, non-pipelined memory):", ""]
    best_label, best32 = min(
        (
            (label, curve.as_dict().get(32, 1 << 62))
            for label, curve in curves.items()
            if label != "conventional"
        ),
        key=lambda item: item[1],
    )
    lines.append(f"conventional @ 32B cache : {conv[32]} cycles")
    lines.append(f"best PIPE    @ 32B cache : {best32} cycles ({best_label})")
    lines.append(f"speedup                  : {conv[32] / best32:.2f}x")
    lines.append("")
    within = [
        size
        for size, cycles in sorted(conv.items())
        if cycles <= best32
    ]
    comparable = within[0] if within else None
    lines.append(
        "a 32B PIPE cache performs like a conventional cache of "
        f"~{comparable or '>512'}B"
    )
    return ExperimentReport(
        experiment_id="headline",
        text="\n".join(lines),
        series={"t6bus4": series},
        checks=checks,
    )
