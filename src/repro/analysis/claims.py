"""The paper's qualitative claims, as executable checks.

Absolute cycle counts cannot be expected to match a 1989 simulator fed
by a compiler we do not have; what must reproduce is the *shape* of the
results (section 6).  Each function here turns one of the paper's
stated findings into a predicate over sweep results, returning
:class:`ClaimCheck` records the tests assert on and EXPERIMENTS.md
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.sweep import SweepSeries

__all__ = [
    "ClaimCheck",
    "by_label",
    "check_figure4a",
    "check_figure4b",
    "check_figure5",
    "check_figure6",
    "check_headline",
    "check_line_size_reversal",
]

_PIPE_LABELS = ("PIPE 8-8", "PIPE 16-16", "PIPE 16-32", "PIPE 32-32")
_BEST_PIPE = ("PIPE 16-16", "PIPE 16-32", "PIPE 32-32")


@dataclass(frozen=True)
class ClaimCheck:
    """One verified (or failed) claim."""

    figure: str
    claim: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.figure}: {self.claim} — {self.detail}"


def by_label(series: Sequence[SweepSeries]) -> dict[str, SweepSeries]:
    return {curve.label: curve for curve in series}


def _common_sizes(curves: dict[str, SweepSeries], labels: Sequence[str]) -> list[int]:
    sizes: set[int] | None = None
    for label in labels:
        here = set(curves[label].cache_sizes)
        sizes = here if sizes is None else sizes & here
    return sorted(sizes or ())


def check_figure4a(series: Sequence[SweepSeries]) -> list[ClaimCheck]:
    """T=1, bus=4B: the only case where the conventional cache beats
    *some* PIPE configuration (section 6)."""
    curves = by_label(series)
    conv = curves["conventional"].as_dict()
    beaten = [
        label
        for label in _PIPE_LABELS
        if any(
            conv.get(size, 1 << 62) < cycles
            for size, cycles in curves[label].as_dict().items()
        )
    ]
    return [
        ClaimCheck(
            figure="4a",
            claim="conventional beats some PIPE configuration",
            passed=bool(beaten),
            detail=f"conventional wins against {beaten or 'none'}",
        )
    ]


def check_figure4b(series: Sequence[SweepSeries]) -> list[ClaimCheck]:
    """T=1, bus=8B: 8-8 and 16-16 are nearly flat across cache size, and
    a small PIPE cache comes close to 512-byte performance."""
    curves = by_label(series)
    checks = []
    for label in ("PIPE 8-8", "PIPE 16-16"):
        flatness = curves[label].flatness
        checks.append(
            ClaimCheck(
                figure="4b",
                claim=f"{label} performs uniformly across cache sizes",
                passed=flatness <= 1.25,
                detail=f"max/min cycles = {flatness:.3f} (threshold 1.25)",
            )
        )
    best_512 = min(
        curve.as_dict().get(512, 1 << 62) for curve in series
    )
    small = min(
        curves[label].as_dict().get(32, 1 << 62) for label in ("PIPE 8-8", "PIPE 16-16")
    )
    ratio = small / best_512
    checks.append(
        ClaimCheck(
            figure="4b",
            claim="a 32-byte PIPE cache approaches 512-byte performance",
            passed=ratio <= 1.25,
            detail=f"PIPE@32B / best@512B = {ratio:.3f} (threshold 1.25)",
        )
    )
    return checks


def check_figure5(
    series: Sequence[SweepSeries],
    series_narrow_bus: Sequence[SweepSeries] | None = None,
    figure: str = "5",
) -> list[ClaimCheck]:
    """T=6: every PIPE configuration beats the conventional cache at
    every cache size; PIPE is less sensitive to bus width."""
    curves = by_label(series)
    conv = curves["conventional"].as_dict()
    checks = []
    all_better = True
    worst = ""
    for label in _PIPE_LABELS:
        for size, cycles in curves[label].as_dict().items():
            if size in conv and cycles >= conv[size]:
                all_better = False
                worst = f"{label}@{size}B: {cycles} >= conventional {conv[size]}"
    checks.append(
        ClaimCheck(
            figure=figure,
            claim="all PIPE configurations beat the conventional cache",
            passed=all_better,
            detail=worst or "PIPE faster at every common cache size",
        )
    )
    if series_narrow_bus is not None:
        narrow = by_label(series_narrow_bus)
        size = 32
        conv_ratio = narrow["conventional"].as_dict()[size] / conv[size]
        pipe_ratio = (
            narrow["PIPE 16-16"].as_dict()[size]
            / curves["PIPE 16-16"].as_dict()[size]
        )
        checks.append(
            ClaimCheck(
                figure=figure,
                claim="PIPE is less sensitive to bus width than conventional",
                passed=pipe_ratio < conv_ratio,
                detail=(
                    f"slowdown from 8B→4B bus at {size}B cache: "
                    f"PIPE 16-16 ×{pipe_ratio:.2f} vs conventional ×{conv_ratio:.2f}"
                ),
            )
        )
    return checks


def check_figure6(
    non_pipelined: Sequence[SweepSeries], pipelined: Sequence[SweepSeries]
) -> list[ClaimCheck]:
    """Pipelined memory shifts every curve down (same shapes, compressed)."""
    base = by_label(non_pipelined)
    piped = by_label(pipelined)
    regressions = []
    for label, curve in piped.items():
        base_cycles = base[label].as_dict()
        for size, cycles in curve.as_dict().items():
            if size in base_cycles and cycles > base_cycles[size]:
                regressions.append(f"{label}@{size}B")
    checks = [
        ClaimCheck(
            figure="6",
            claim="pipelined memory never hurts",
            passed=not regressions,
            detail=f"regressions: {regressions or 'none'}",
        )
    ]
    curves = by_label(pipelined)
    conv = curves["conventional"].as_dict()
    still_better = all(
        cycles < conv[size]
        for label in _PIPE_LABELS
        for size, cycles in curves[label].as_dict().items()
        if size in conv
    )
    checks.append(
        ClaimCheck(
            figure="6b",
            claim="PIPE still beats conventional with pipelined memory",
            passed=still_better,
            detail="checked at every common cache size",
        )
    )
    return checks


def check_headline(series_t6_bus4: Sequence[SweepSeries]) -> list[ClaimCheck]:
    """Section 7: 'the processor performs up to twice as fast as a
    processor using the conventional cache-only approach with a small
    cache size'."""
    curves = by_label(series_t6_bus4)
    conv = curves["conventional"].as_dict()
    best_pipe = min(
        curves[label].as_dict().get(32, 1 << 62) for label in _PIPE_LABELS
    )
    speedup = conv[32] / best_pipe
    return [
        ClaimCheck(
            figure="headline",
            claim="PIPE up to ~2x faster at a 32-byte cache (T=6, 4B bus)",
            passed=speedup >= 1.5,
            detail=f"speedup = {speedup:.2f}x (threshold 1.5, paper: 'up to twice')",
        )
    ]


def check_line_size_reversal(
    series_t1: Sequence[SweepSeries], series_t6: Sequence[SweepSeries]
) -> list[ClaimCheck]:
    """Section 6: with fast memory a line size of 8 wins; with slow
    memory the 16/32-byte-line configurations win (Figures 4 vs 6)."""
    fast = by_label(series_t1)
    slow = by_label(series_t6)
    sizes_fast = _common_sizes(fast, _PIPE_LABELS)
    fast_wins = sum(
        1
        for size in sizes_fast
        if fast["PIPE 8-8"].as_dict()[size]
        <= min(fast[label].as_dict()[size] for label in _BEST_PIPE)
    )
    slow_better = all(
        min(slow[label].as_dict()[size] for label in _BEST_PIPE)
        <= slow["PIPE 8-8"].as_dict()[size]
        for size in _common_sizes(slow, _PIPE_LABELS)
    )
    return [
        ClaimCheck(
            figure="4/6",
            claim="8-byte lines win with 1-cycle memory",
            passed=fast_wins >= len(sizes_fast) - 1,
            detail=f"8-8 best at {fast_wins}/{len(sizes_fast)} cache sizes",
        ),
        ClaimCheck(
            figure="4/6",
            claim="16/32-byte lines win with 6-cycle memory",
            passed=slow_better,
            detail="best of 16-16/16-32/32-32 <= 8-8 at every size",
        ),
    ]
