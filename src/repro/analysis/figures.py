"""Figure specifications for the paper's evaluation (Figures 4–6).

Each figure plots total execution cycles against instruction-cache size
for the four Table II PIPE configurations plus the conventional cache,
at one memory design point:

=======  ===========  =========  ==========
figure   access time  bus width  pipelined
=======  ===========  =========  ==========
4a       1 cycle      4 bytes    no
4b       1 cycle      8 bytes    no
5a       6 cycles     4 bytes    no
5b       6 cycles     8 bytes    no
6a       6 cycles     8 bytes    no (= 5b, rescaled in the paper)
6b       6 cycles     8 bytes    yes
=======  ===========  =========  ==========

:func:`run_figure` executes the sweep for one figure and returns the
series; :func:`render_figure` adds the text table and an ASCII plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..asm.program import Program
from ..core.config import PAPER_CACHE_SIZES
from ..core.resilience import SweepSupervisor
from ..core.simcache import SimulationCache
from ..core.sweep import SweepSeries, run_cache_sweep
from .tables import render_series_table

__all__ = ["FIGURES", "FigureSpec", "ascii_plot", "render_figure", "run_figure"]


@dataclass(frozen=True)
class FigureSpec:
    """One panel of Figures 4–6."""

    figure_id: str
    memory_access_time: int
    input_bus_width: int
    memory_pipelined: bool

    @property
    def title(self) -> str:
        memory = "pipelined" if self.memory_pipelined else "non-pipelined"
        return (
            f"Figure {self.figure_id} — total cycles vs cache size "
            f"(access={self.memory_access_time}, bus={self.input_bus_width}B, "
            f"{memory} memory)"
        )

    def overrides(self) -> dict:
        return {
            "memory_access_time": self.memory_access_time,
            "input_bus_width": self.input_bus_width,
            "memory_pipelined": self.memory_pipelined,
        }


FIGURES: dict[str, FigureSpec] = {
    "4a": FigureSpec("4a", memory_access_time=1, input_bus_width=4, memory_pipelined=False),
    "4b": FigureSpec("4b", memory_access_time=1, input_bus_width=8, memory_pipelined=False),
    "5a": FigureSpec("5a", memory_access_time=6, input_bus_width=4, memory_pipelined=False),
    "5b": FigureSpec("5b", memory_access_time=6, input_bus_width=8, memory_pipelined=False),
    "6a": FigureSpec("6a", memory_access_time=6, input_bus_width=8, memory_pipelined=False),
    "6b": FigureSpec("6b", memory_access_time=6, input_bus_width=8, memory_pipelined=True),
}


def run_figure(
    figure_id: str,
    program: Program,
    cache_sizes: Sequence[int] = PAPER_CACHE_SIZES,
    jobs: int | None = 1,
    cache: SimulationCache | None = None,
    supervisor: SweepSupervisor | None = None,
) -> list[SweepSeries]:
    """Run the sweep behind one figure panel."""
    spec = FIGURES[figure_id]
    return run_cache_sweep(
        program,
        cache_sizes=cache_sizes,
        jobs=jobs,
        cache=cache,
        supervisor=supervisor,
        **spec.overrides(),
    )


def ascii_plot(
    series: Sequence[SweepSeries],
    cache_sizes: Sequence[int],
    width: int = 60,
    height: int = 16,
) -> str:
    """A terminal rendition of one figure (log-ish feel, linear scale)."""
    points = [
        (curve.label, size, cycles)
        for curve in series
        for size, cycles in zip(curve.cache_sizes, curve.cycles)
    ]
    if not points:
        return "(no data)"
    low = min(cycles for _l, _s, cycles in points)
    high = max(cycles for _l, _s, cycles in points)
    span = max(1, high - low)
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    legend = []
    x_positions = {
        size: round(index * (width - 1) / max(1, len(cache_sizes) - 1))
        for index, size in enumerate(cache_sizes)
    }
    for curve_index, curve in enumerate(series):
        marker = markers[curve_index % len(markers)]
        legend.append(f"{marker} {curve.label}")
        for size, cycles in zip(curve.cache_sizes, curve.cycles):
            x = x_positions[size]
            y = round((cycles - low) / span * (height - 1))
            grid[height - 1 - y][x] = marker
    rows = ["".join(row) for row in grid]
    axis = "".join(
        "^" if x in x_positions.values() else "-" for x in range(width)
    )
    labels = " ".join(str(size) for size in cache_sizes)
    return "\n".join(
        [f"cycles {high} (top) .. {low} (bottom)"]
        + rows
        + [axis, f"cache sizes: {labels}", "  ".join(legend)]
    )


def render_figure(
    figure_id: str,
    series: Sequence[SweepSeries],
    cache_sizes: Sequence[int] = PAPER_CACHE_SIZES,
    plot: bool = True,
) -> str:
    """Text table (and optional ASCII plot) for one figure panel."""
    spec = FIGURES[figure_id]
    out = render_series_table(spec.title, series, cache_sizes)
    if plot:
        out += "\n" + ascii_plot(series, cache_sizes)
    return out
