"""Text rendering of the paper's tables and sweep results.

Everything renders to plain text (and CSV) so the benchmark harness can
print the same rows the paper reports without plotting dependencies.
"""

from __future__ import annotations

from typing import Sequence

from ..core.config import PIPE_CONFIGURATIONS
from ..core.sweep import SweepSeries
from ..kernels.loops import PAPER_INNER_LOOP_BYTES
from ..kernels.suite import LivermoreSuite

__all__ = [
    "render_series_csv",
    "render_series_table",
    "render_table1",
    "render_table2",
    "table1_rows",
]


def table1_rows(suite: LivermoreSuite) -> list[tuple[int, int, int]]:
    """(loop number, our inner-loop bytes, paper inner-loop bytes)."""
    return [
        (number, suite.inner_loop_bytes(number), PAPER_INNER_LOOP_BYTES[number])
        for number in range(1, 15)
    ]


def render_table1(suite: LivermoreSuite) -> str:
    """Our regeneration of Table I, side by side with the paper's."""
    lines = [
        "Table I — Lawrence Livermore Loop inner-loop sizes (bytes)",
        f"{'Loop':>4}  {'ours':>6}  {'paper':>6}",
    ]
    ours_total = 0
    paper_total = 0
    for number, ours, paper in table1_rows(suite):
        ours_total += ours
        paper_total += paper
        lines.append(f"{number:>4}  {ours:>6}  {paper:>6}")
    lines.append(f"{'sum':>4}  {ours_total:>6}  {paper_total:>6}")
    return "\n".join(lines)


def render_table2() -> str:
    """Table II — the simulated IQ and IQB configurations."""
    lines = [
        "Table II — Simulated IQ and IQB configurations",
        f"{'Configuration':<14}{'Line size':>10}{'IQ size':>9}{'IQB size':>10}",
    ]
    for config in PIPE_CONFIGURATIONS.values():
        lines.append(
            f"{config.name:<14}{config.line_size:>9}B{config.iq_size:>8}B"
            f"{config.iqb_size:>9}B"
        )
    return "\n".join(lines)


def render_series_table(
    title: str, series: Sequence[SweepSeries], cache_sizes: Sequence[int]
) -> str:
    """One figure as a text table: rows = strategies, columns = sizes."""
    header = f"{'strategy':<14}" + "".join(f"{size:>9}" for size in cache_sizes)
    lines = [title, header]
    for curve in series:
        cycles_by_size = curve.as_dict()
        cells = "".join(
            f"{cycles_by_size.get(size, '—'):>9}" for size in cache_sizes
        )
        lines.append(f"{curve.label:<14}{cells}")
    return "\n".join(lines)


def render_series_csv(series: Sequence[SweepSeries], cache_sizes: Sequence[int]) -> str:
    """CSV export (strategy, then one column per cache size)."""
    rows = ["strategy," + ",".join(str(size) for size in cache_sizes)]
    for curve in series:
        cycles_by_size = curve.as_dict()
        cells = ",".join(str(cycles_by_size.get(size, "")) for size in cache_sizes)
        rows.append(f"{curve.label},{cells}")
    return "\n".join(rows)
