"""Text rendering of the paper's tables and sweep results.

Everything renders to plain text (and CSV) so the benchmark harness can
print the same rows the paper reports without plotting dependencies.
"""

from __future__ import annotations

from typing import Sequence

from ..core.config import PIPE_CONFIGURATIONS
from ..core.sweep import SweepSeries
from ..core.trace import TraceMetrics
from ..kernels.loops import PAPER_INNER_LOOP_BYTES
from ..kernels.suite import LivermoreSuite

__all__ = [
    "render_series_csv",
    "render_series_table",
    "render_table1",
    "render_table2",
    "render_trace_summary",
    "table1_rows",
]


def table1_rows(suite: LivermoreSuite) -> list[tuple[int, int, int]]:
    """(loop number, our inner-loop bytes, paper inner-loop bytes)."""
    return [
        (number, suite.inner_loop_bytes(number), PAPER_INNER_LOOP_BYTES[number])
        for number in range(1, 15)
    ]


def render_table1(suite: LivermoreSuite) -> str:
    """Our regeneration of Table I, side by side with the paper's."""
    lines = [
        "Table I — Lawrence Livermore Loop inner-loop sizes (bytes)",
        f"{'Loop':>4}  {'ours':>6}  {'paper':>6}",
    ]
    ours_total = 0
    paper_total = 0
    for number, ours, paper in table1_rows(suite):
        ours_total += ours
        paper_total += paper
        lines.append(f"{number:>4}  {ours:>6}  {paper:>6}")
    lines.append(f"{'sum':>4}  {ours_total:>6}  {paper_total:>6}")
    return "\n".join(lines)


def render_table2() -> str:
    """Table II — the simulated IQ and IQB configurations."""
    lines = [
        "Table II — Simulated IQ and IQB configurations",
        f"{'Configuration':<14}{'Line size':>10}{'IQ size':>9}{'IQB size':>10}",
    ]
    for config in PIPE_CONFIGURATIONS.values():
        lines.append(
            f"{config.name:<14}{config.line_size:>9}B{config.iq_size:>8}B"
            f"{config.iqb_size:>9}B"
        )
    return "\n".join(lines)


def render_series_table(
    title: str, series: Sequence[SweepSeries], cache_sizes: Sequence[int]
) -> str:
    """One figure as a text table: rows = strategies, columns = sizes."""
    header = f"{'strategy':<14}" + "".join(f"{size:>9}" for size in cache_sizes)
    lines = [title, header]
    for curve in series:
        cycles_by_size = curve.as_dict()
        cells = "".join(
            f"{cycles_by_size.get(size, '—'):>9}" for size in cache_sizes
        )
        lines.append(f"{curve.label:<14}{cells}")
    return "\n".join(lines)


def render_series_csv(series: Sequence[SweepSeries], cache_sizes: Sequence[int]) -> str:
    """CSV export (strategy, then one column per cache size)."""
    rows = ["strategy," + ",".join(str(size) for size in cache_sizes)]
    for curve in series:
        cycles_by_size = curve.as_dict()
        cells = ",".join(str(cycles_by_size.get(size, "")) for size in cache_sizes)
        rows.append(f"{curve.label},{cells}")
    return "\n".join(rows)


def render_trace_summary(metrics: TraceMetrics) -> str:
    """The trace summary panel (``repro-sim trace`` / ``run --trace-out``).

    Derived per-component figures aggregated from the event stream: the
    cycle/instruction headline, the I-cache miss picture, both bus
    utilisations, IQ depth, and the stall breakdown.
    """
    lines = [
        "trace summary",
        f"events        : {metrics.events}",
        f"cycles        : {metrics.cycles}",
        f"instructions  : {metrics.instructions} (IPC {metrics.ipc:.3f})",
        f"icache        : {metrics.cache_hits} hits / {metrics.cache_misses} "
        f"misses (miss rate {metrics.cache_miss_rate:.1%}), "
        f"{metrics.cache_fills} fills, "
        f"{metrics.cache_line_replacements} replacements",
        f"fetch         : {metrics.demand_requests} demand + "
        f"{metrics.prefetch_requests} prefetch requests, "
        f"{metrics.prefetch_promotions} promotions, "
        f"{metrics.fetch_cancels} cancels, {metrics.redirects} redirects",
        f"output bus    : {metrics.output_bus_busy_cycles} busy cycles "
        f"(utilization {metrics.output_port_utilization:.1%}), "
        f"{metrics.acceptance_conflicts} conflicts",
        f"input bus     : {metrics.input_bus_busy_cycles} busy cycles "
        f"(utilization {metrics.input_port_utilization:.1%}), "
        f"{metrics.input_bus_bytes} bytes",
    ]
    if metrics.iq_depth_samples:
        lines.append(
            f"IQ            : mean depth {metrics.mean_iq_depth:.2f}, "
            f"max {metrics.iq_max_depth} entries / {metrics.iq_max_bytes} bytes"
        )
    if metrics.tib_hits or metrics.tib_misses:
        total = metrics.tib_hits + metrics.tib_misses
        rate = metrics.tib_hits / total if total else 0.0
        lines.append(
            f"TIB           : {metrics.tib_hits}/{total} target hits "
            f"({rate:.1%}), {metrics.tib_bytes_supplied} bytes supplied"
        )
    stall_parts = [
        f"{name}={count}" for name, count in sorted(metrics.stalls.items()) if count
    ]
    lines.append(f"stalls        : {' '.join(stall_parts) or 'none'}")
    queue_parts = [
        f"{name}:max={queue.max_occupancy}"
        for name, queue in metrics.queues.items()
    ]
    lines.append(f"queues        : {' '.join(queue_parts) or 'n/a'}")
    return "\n".join(lines)
