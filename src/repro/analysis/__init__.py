"""Analysis layer: regeneration of the paper's tables and figures.

* :mod:`repro.analysis.tables` — Table I/II and sweep-table rendering;
* :mod:`repro.analysis.figures` — Figure 4/5/6 specifications, sweeps,
  and text/ASCII rendering;
* :mod:`repro.analysis.claims` — the paper's qualitative findings as
  executable checks;
* :mod:`repro.analysis.experiments` — one runnable module per experiment
  (used by the benchmark harness and the EXPERIMENTS.md generator).
"""

from .claims import (
    ClaimCheck,
    by_label,
    check_figure4a,
    check_figure4b,
    check_figure5,
    check_figure6,
    check_headline,
    check_line_size_reversal,
)
from .experiments import (
    EXPERIMENTS,
    ExperimentContext,
    ExperimentReport,
    run_experiment,
)
from .figures import FIGURES, FigureSpec, ascii_plot, render_figure, run_figure
from .profile import LoopProfile, ProfileReport, profile_program, render_profile
from .tables import (
    render_series_csv,
    render_series_table,
    render_table1,
    render_table2,
    table1_rows,
)

__all__ = [
    "EXPERIMENTS",
    "ClaimCheck",
    "ExperimentContext",
    "ExperimentReport",
    "FIGURES",
    "FigureSpec",
    "LoopProfile",
    "ProfileReport",
    "ascii_plot",
    "by_label",
    "check_figure4a",
    "check_figure4b",
    "check_figure5",
    "check_figure6",
    "check_headline",
    "check_line_size_reversal",
    "profile_program",
    "render_figure",
    "render_profile",
    "render_series_csv",
    "render_series_table",
    "render_table1",
    "render_table2",
    "run_experiment",
    "run_figure",
    "table1_rows",
]
