"""Per-loop cycle attribution over the benchmark.

Section 5's benchmark runs the 14 loops back to back, so total-cycle
numbers blend very different inner loops (Table I spans 48 to 824
bytes).  This profiler attributes every simulated cycle to the loop
whose instruction most recently issued, giving per-loop cycles, CPI,
and share — which is how one sees *where* a small cache loses time
(the loops that do not fit) and where the IQ/IQB wins it back.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..asm.program import Program
from ..core.config import MachineConfig
from ..core.simulator import Simulator
from ..cpu.functional import FunctionalSimulator

__all__ = [
    "EngineLoopProfile",
    "EngineProfileReport",
    "LoopProfile",
    "ProfileReport",
    "profile_engine",
    "profile_program",
    "render_codegen_stats",
    "render_engine_profile",
    "render_profile",
]


def render_codegen_stats() -> str:
    """Codegen-cache summary for profile footers.

    Reads :func:`repro.core.compiled.fleet_compile_stats` — kernels and
    per-program dispatch tables compiled so far, their cache hits, and
    the cumulative codegen time, summed across this process and every
    pool worker that reported its counters back.  A second line breaks
    out the persistent artifact store (disk hits and stores) and the
    worker count whenever either saw traffic.
    """
    from ..core.compiled import fleet_compile_stats

    stats = fleet_compile_stats()
    lines = [
        f"codegen: {stats['compiles']} kernel(s) compiled "
        f"({stats['kernel_cache_hits']} cache hit(s)), "
        f"{stats['dispatch_tables']} dispatch table(s) / "
        f"{stats['dispatch_handlers']} handler(s) "
        f"({stats['dispatch_cache_hits']} cache hit(s)), "
        f"{stats['codegen_seconds'] * 1000.0:.1f} ms codegen"
    ]
    disk_traffic = (
        stats["disk_kernel_hits"]
        + stats["disk_kernel_stores"]
        + stats["disk_handler_hits"]
        + stats["disk_handler_stores"]
        + stats["codegen_quarantined"]
    )
    if disk_traffic or stats["workers"]:
        parts = [
            f"disk store: {stats['disk_kernel_hits']} kernel hit(s) / "
            f"{stats['disk_kernel_stores']} store(s), "
            f"{stats['disk_handler_hits']} handler hit(s) / "
            f"{stats['disk_handler_stores']} store(s)"
        ]
        if stats["codegen_quarantined"]:
            parts.append(f"{stats['codegen_quarantined']} quarantined")
        if stats["workers"]:
            parts.append(f"{stats['workers']} worker(s) reporting")
        lines.append("codegen: " + ", ".join(parts))
    return "\n".join(lines)


@dataclass(frozen=True)
class LoopProfile:
    """One region's share of the run."""

    name: str
    cycles: int
    instructions: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


@dataclass
class ProfileReport:
    config: MachineConfig
    total_cycles: int
    loops: list[LoopProfile]

    def by_name(self) -> dict[str, LoopProfile]:
        return {loop.name: loop for loop in self.loops}


class _RegionMap:
    """O(log n) byte-address → region-name lookup."""

    def __init__(self, regions: list[tuple[str, int, int]]):
        ordered = sorted(regions, key=lambda region: region[1])
        self._starts = [begin for _name, begin, _end in ordered]
        self._ends = [end for _name, _begin, end in ordered]
        self._names = [name for name, _begin, _end in ordered]

    def lookup(self, address: int) -> str | None:
        index = bisect.bisect_right(self._starts, address) - 1
        if index >= 0 and address < self._ends[index]:
            return self._names[index]
        return None


def profile_program(
    config: MachineConfig,
    program: Program,
    regions: list[tuple[str, int, int]],
) -> ProfileReport:
    """Run the cycle-level machine, attributing cycles to regions.

    A cycle belongs to the region of the most recently issued
    instruction, so a loop is charged for its own stalls (its loads, its
    fetch misses) — start-up cycles before the first issue and the
    post-HALT drain land in ``(outside)``.
    """
    region_map = _RegionMap(regions)
    simulator = Simulator(config, program)
    cycle_counts: dict[str, int] = {name: 0 for name, _b, _e in regions}
    cycle_counts["(outside)"] = 0

    backend = simulator.backend
    memory = simulator.memory
    engine = simulator.engine
    frontend = simulator.frontend
    now = 0
    while True:
        memory.begin_cycle(now)
        engine.update(now)
        frontend.update(now)
        backend.step(now)
        if backend.halted:
            frontend.halt()
        frontend.post_issue(now)
        memory.end_cycle(now)
        name = None
        if backend.last_pc is not None:
            name = region_map.lookup(backend.last_pc)
        cycle_counts[name or "(outside)"] += 1
        now += 1
        if backend.halted and engine.drained and memory.drained:
            break
        if now >= config.max_cycles:
            raise RuntimeError(f"profile run exceeded {config.max_cycles} cycles")

    instruction_counts = FunctionalSimulator(program, regions=regions).run().by_region
    loops = [
        LoopProfile(
            name=name,
            cycles=cycle_counts.get(name, 0),
            instructions=instruction_counts.get(name, 0),
        )
        for name, _begin, _end in regions
    ]
    loops.append(
        LoopProfile(
            name="(outside)",
            cycles=cycle_counts["(outside)"],
            instructions=0,
        )
    )
    return ProfileReport(config=config, total_cycles=now, loops=loops)


# ----------------------------------------------------------------------
# Engine-level profile: where the replay engine spends and saves cycles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineLoopProfile:
    """One backedge target's replay statistics, mapped to its loop."""

    name: str
    target: int
    phase: str
    live_iterations: int
    replayed_iterations: int
    iteration_cycles: int | None
    replayed_cycles: int
    verify_failures: int
    signature_restarts: int
    signature_mismatches: int
    divergences: int

    @property
    def live_cycles(self) -> int | None:
        """Approximate cycles spent simulating this loop live."""
        if self.iteration_cycles is None:
            return None
        return self.live_iterations * self.iteration_cycles

    @property
    def replayed_fraction(self) -> float:
        """Share of this loop's iterations that were replayed."""
        total = self.live_iterations + self.replayed_iterations
        return self.replayed_iterations / total if total else 0.0


@dataclass
class EngineProfileReport:
    config: MachineConfig
    total_cycles: int
    replayed_cycles: int
    replayed_iterations: int
    loops: list[EngineLoopProfile]

    @property
    def replayed_cycle_fraction(self) -> float:
        return self.replayed_cycles / self.total_cycles if self.total_cycles else 0.0


def profile_engine(
    config: MachineConfig,
    program: Program,
    regions: list[tuple[str, int, int]],
) -> EngineProfileReport:
    """Run with the replay engine on and report what it memoized.

    Each loop backedge target the :class:`~repro.core.replay.ReplayController`
    tracked is mapped back to its benchmark loop, with live vs replayed
    iteration and cycle counts plus the signature-match statistics
    (verify failures, restarts, mismatches, divergences) that explain
    why a loop did or did not engage.
    """
    region_map = _RegionMap(regions)
    simulator = Simulator(config, program, replay=True)
    result = simulator.run()
    controller = simulator.replay_controller
    loops = [
        EngineLoopProfile(
            name=region_map.lookup(report["target"]) or "(outside)",
            target=report["target"],
            phase=report["phase"],
            live_iterations=report["live_iterations"],
            replayed_iterations=report["replayed_iterations"],
            iteration_cycles=report["iteration_cycles"],
            replayed_cycles=report["replayed_cycles"],
            verify_failures=report["verify_failures"],
            signature_restarts=report["signature_restarts"],
            signature_mismatches=report["signature_mismatches"],
            divergences=report["divergences"],
        )
        for report in controller.loop_reports()
    ]
    return EngineProfileReport(
        config=config,
        total_cycles=result.cycles,
        replayed_cycles=controller.replayed_cycles,
        replayed_iterations=controller.replayed_iterations,
        loops=loops,
    )


def render_engine_profile(report: EngineProfileReport) -> str:
    """Text table: per-loop live vs replayed cycles and match statistics."""
    lines = [
        f"replay engine profile — {report.config.describe()}",
        f"{'loop':<12}{'state':<11}{'live it':>8}{'replay it':>10}"
        f"{'it cyc':>8}{'replay cyc':>11}{'replayed':>10}",
    ]
    for loop in report.loops:
        iteration = loop.iteration_cycles if loop.iteration_cycles else "—"
        lines.append(
            f"{loop.name:<12}{loop.phase:<11}{loop.live_iterations:>8}"
            f"{loop.replayed_iterations:>10}{iteration:>8}"
            f"{loop.replayed_cycles:>11}{loop.replayed_fraction:>10.1%}"
        )
        troubles = []
        if loop.verify_failures:
            troubles.append(f"{loop.verify_failures} verify failure(s)")
        if loop.signature_restarts:
            troubles.append(f"{loop.signature_restarts} restart(s)")
        if loop.signature_mismatches:
            troubles.append(f"{loop.signature_mismatches} mismatch(es)")
        if loop.divergences:
            troubles.append(f"{loop.divergences} divergence(s)")
        if troubles:
            lines.append(f"{'':<12}  {', '.join(troubles)}")
    lines.append(
        f"{'total':<12}{'':<11}{'':>8}{report.replayed_iterations:>10}{'':>8}"
        f"{report.replayed_cycles:>11}{report.replayed_cycle_fraction:>10.1%}"
    )
    lines.append(
        f"{report.replayed_cycles} of {report.total_cycles} cycles "
        f"({report.replayed_cycle_fraction:.1%}) accounted arithmetically"
    )
    return "\n".join(lines)


def render_profile(report: ProfileReport) -> str:
    """Text table: per-loop cycles, instructions, CPI, and share."""
    lines = [
        f"cycle profile — {report.config.describe()}",
        f"{'loop':<12}{'cycles':>10}{'instrs':>10}{'CPI':>7}{'share':>8}",
    ]
    for loop in report.loops:
        share = loop.cycles / report.total_cycles if report.total_cycles else 0.0
        cpi = f"{loop.cpi:.2f}" if loop.instructions else "—"
        lines.append(
            f"{loop.name:<12}{loop.cycles:>10}{loop.instructions:>10}"
            f"{cpi:>7}{share:>8.1%}"
        )
    lines.append(f"{'total':<12}{report.total_cycles:>10}")
    return "\n".join(lines)
