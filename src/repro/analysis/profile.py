"""Per-loop cycle attribution over the benchmark.

Section 5's benchmark runs the 14 loops back to back, so total-cycle
numbers blend very different inner loops (Table I spans 48 to 824
bytes).  This profiler attributes every simulated cycle to the loop
whose instruction most recently issued, giving per-loop cycles, CPI,
and share — which is how one sees *where* a small cache loses time
(the loops that do not fit) and where the IQ/IQB wins it back.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..asm.program import Program
from ..core.config import MachineConfig
from ..core.simulator import Simulator
from ..cpu.functional import FunctionalSimulator

__all__ = ["LoopProfile", "ProfileReport", "profile_program", "render_profile"]


@dataclass(frozen=True)
class LoopProfile:
    """One region's share of the run."""

    name: str
    cycles: int
    instructions: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


@dataclass
class ProfileReport:
    config: MachineConfig
    total_cycles: int
    loops: list[LoopProfile]

    def by_name(self) -> dict[str, LoopProfile]:
        return {loop.name: loop for loop in self.loops}


class _RegionMap:
    """O(log n) byte-address → region-name lookup."""

    def __init__(self, regions: list[tuple[str, int, int]]):
        ordered = sorted(regions, key=lambda region: region[1])
        self._starts = [begin for _name, begin, _end in ordered]
        self._ends = [end for _name, _begin, end in ordered]
        self._names = [name for name, _begin, _end in ordered]

    def lookup(self, address: int) -> str | None:
        index = bisect.bisect_right(self._starts, address) - 1
        if index >= 0 and address < self._ends[index]:
            return self._names[index]
        return None


def profile_program(
    config: MachineConfig,
    program: Program,
    regions: list[tuple[str, int, int]],
) -> ProfileReport:
    """Run the cycle-level machine, attributing cycles to regions.

    A cycle belongs to the region of the most recently issued
    instruction, so a loop is charged for its own stalls (its loads, its
    fetch misses) — start-up cycles before the first issue and the
    post-HALT drain land in ``(outside)``.
    """
    region_map = _RegionMap(regions)
    simulator = Simulator(config, program)
    cycle_counts: dict[str, int] = {name: 0 for name, _b, _e in regions}
    cycle_counts["(outside)"] = 0

    backend = simulator.backend
    memory = simulator.memory
    engine = simulator.engine
    frontend = simulator.frontend
    now = 0
    while True:
        memory.begin_cycle(now)
        engine.update(now)
        frontend.update(now)
        backend.step(now)
        if backend.halted:
            frontend.halt()
        frontend.post_issue(now)
        memory.end_cycle(now)
        name = None
        if backend.last_pc is not None:
            name = region_map.lookup(backend.last_pc)
        cycle_counts[name or "(outside)"] += 1
        now += 1
        if backend.halted and engine.drained and memory.drained:
            break
        if now >= config.max_cycles:
            raise RuntimeError(f"profile run exceeded {config.max_cycles} cycles")

    instruction_counts = FunctionalSimulator(program, regions=regions).run().by_region
    loops = [
        LoopProfile(
            name=name,
            cycles=cycle_counts.get(name, 0),
            instructions=instruction_counts.get(name, 0),
        )
        for name, _begin, _end in regions
    ]
    loops.append(
        LoopProfile(
            name="(outside)",
            cycles=cycle_counts["(outside)"],
            instructions=0,
        )
    )
    return ProfileReport(config=config, total_cycles=now, loops=loops)


def render_profile(report: ProfileReport) -> str:
    """Text table: per-loop cycles, instructions, CPI, and share."""
    lines = [
        f"cycle profile — {report.config.describe()}",
        f"{'loop':<12}{'cycles':>10}{'instrs':>10}{'CPI':>7}{'share':>8}",
    ]
    for loop in report.loops:
        share = loop.cycles / report.total_cycles if report.total_cycles else 0.0
        cpi = f"{loop.cpi:.2f}" if loop.instructions else "—"
        lines.append(
            f"{loop.name:<12}{loop.cycles:>10}{loop.instructions:>10}"
            f"{cpi:>7}{share:>8.1%}"
        )
    lines.append(f"{'total':<12}{report.total_cycles:>10}")
    return "\n".join(lines)
