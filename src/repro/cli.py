"""``repro-sim`` — command-line front door to the reproduction.

Subcommands::

    repro-sim run        simulate one machine configuration
    repro-sim table      print Table I or Table II
    repro-sim figure     regenerate one figure panel (4a/4b/5a/5b/6a/6b)
    repro-sim experiment run a named experiment with its claim checks
    repro-sim profile    per-loop cycle attribution for one machine
    repro-sim disasm     disassemble the generated benchmark program
    repro-sim report     run every experiment (the EXPERIMENTS.md content)
    repro-sim cache      manage the on-disk simulation result cache
    repro-sim serve      run the resilient simulation job service

The ``--scale`` option shrinks the benchmark's iteration counts for
quick looks (e.g. ``--scale 0.15``); the paper-fidelity run is scale 1.

Sweep-heavy commands (``figure``, ``experiment``, ``report``) accept
``--jobs N`` to fan independent simulation points out over worker
processes (default: ``REPRO_JOBS`` or the CPU count) and use a
content-addressed result cache under ``.repro_cache/`` (bypass with
``--no-cache``; relocate with ``--cache-dir`` or ``REPRO_CACHE_DIR``).

They also accept the resilience options (``--supervised``,
``--timeout``, ``--max-retries``, ``--resume``, ``--checkpoint``):
supervised sweeps retry failed points, survive worker crashes and
hangs, degrade broken fast-path engines per point, checkpoint progress
for ``--resume``, and print a fault report of every recovery action —
with numbers byte-identical to a clean run.  ``--inject-faults SPEC``
arms the deterministic fault injectors (see :mod:`repro.core.faults`)
to rehearse exactly those recoveries.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .analysis.experiments import EXPERIMENTS, ExperimentContext, run_experiment
from .analysis.figures import FIGURES, render_figure, run_figure
from .analysis.tables import (
    render_series_csv,
    render_table1,
    render_table2,
    render_trace_summary,
)
from .core import faults
from .core.config import PAPER_CACHE_SIZES, PIPE_CONFIGURATIONS, MachineConfig
from .core.parallel import parallel_map, resolve_jobs
from .core.resilience import SweepCheckpoint, SweepSupervisor, ladder_simulate
from .core.scheduler import (
    NO_AFFINITY_ENV,
    NO_COMPILED_ENV,
    NO_DISK_CODEGEN_ENV,
    NO_REPLAY_ENV,
    NO_SKIP_ENV,
)
from .core.simcache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR, SimulationCache
from .core.simulator import simulate, simulate_traced
from .core.trace import TraceMetrics
from .kernels.suite import cached_livermore_suite

__all__ = ["main"]


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="benchmark workload scale (1.0 = paper fidelity)",
    )


def _add_perf(parser: argparse.ArgumentParser) -> None:
    """Options shared by the sweep-heavy commands."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent simulation points "
        "(default: REPRO_JOBS or the CPU count; 1 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk simulation result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="simulation cache directory "
        "(default: REPRO_CACHE_DIR or .repro_cache)",
    )
    parser.add_argument(
        "--supervised",
        action="store_true",
        help="run the sweep under the fault supervisor (retries, crash "
        "recovery, engine degradation, checkpointing); implied by the "
        "other resilience options",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point wall-clock limit; a point past it is charged a "
        "retry and its hung worker is killed (implies --supervised)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="attempts per point beyond the first before the sweep "
        "gives the point up (default: 2)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="pre-resolve points from the sweep checkpoint left by an "
        "interrupted supervised run (implies --supervised)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="sweep checkpoint manifest "
        "(default: <cache-dir>/sweep-checkpoint.json)",
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="arm the deterministic fault injectors: a bare seed, or "
        "'seed=7,kill=0.3,hang=0.1,corrupt=0.5,diverge=0.5"
        ",hang-seconds=2' (implies --supervised)",
    )
    parser.add_argument(
        "--fault-report",
        default=None,
        metavar="PATH",
        help="also write the supervised run's fault report as JSON",
    )


def _make_cache(args: argparse.Namespace) -> SimulationCache | None:
    if args.no_cache:
        return None
    return SimulationCache(args.cache_dir)


def _make_supervisor(args: argparse.Namespace) -> SweepSupervisor | None:
    """Build the sweep supervisor the resilience options describe.

    Any resilience option implies supervision; with none present the
    command runs the plain unsupervised path.
    """
    wanted = (
        args.supervised
        or args.resume
        or args.timeout is not None
        or args.inject_faults is not None
    )
    if not wanted:
        return None
    if args.inject_faults is not None:
        faults.activate(faults.FaultPlan.parse(args.inject_faults))
    checkpoint_path = args.checkpoint
    if checkpoint_path is None:
        root = (
            args.cache_dir
            or os.environ.get(CACHE_DIR_ENV)
            or DEFAULT_CACHE_DIR
        )
        checkpoint_path = os.path.join(root, "sweep-checkpoint.json")
    checkpoint = SweepCheckpoint(checkpoint_path)
    if args.resume:
        checkpoint.load()
    return SweepSupervisor(
        jobs=resolve_jobs(args.jobs),
        timeout=args.timeout,
        max_retries=args.max_retries,
        checkpoint=checkpoint,
        resume=args.resume,
    )


def _finish_supervised(
    args: argparse.Namespace, supervisor: SweepSupervisor | None
) -> None:
    """Print the recovery ledger and disarm any fault injectors."""
    if supervisor is None:
        return
    if supervisor.resumed:
        print(
            f"resumed       : {supervisor.resumed} point(s) from "
            f"{supervisor.checkpoint.path}"
        )
    print(supervisor.report.summary())
    if args.fault_report is not None:
        from .core.compiled import fleet_compile_stats

        payload = supervisor.report.to_dict()
        # codegen-cache engagement sits next to the per-rung tallies so
        # one JSON answers both "which rung served each point" and "what
        # did the compiled rung actually compile or reuse" — summed
        # across this process and every pool worker that reported in
        payload["codegen"] = fleet_compile_stats()
        with open(args.fault_report, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"fault report written : {args.fault_report}")
    if args.inject_faults is not None:
        faults.deactivate()
    if supervisor.checkpoint is not None:
        supervisor.checkpoint.release()  # manifest lock (no-op if unheld)


def _machine_config(args: argparse.Namespace, **extra) -> MachineConfig:
    """Build the machine the run/profile/trace commands describe."""
    common = dict(
        memory_access_time=args.access,
        input_bus_width=args.bus,
        memory_pipelined=getattr(args, "pipelined", False),
        **extra,
    )
    if args.strategy == "pipe":
        return MachineConfig.pipe(args.config, icache_size=args.cache, **common)
    if args.strategy == "tib":
        return MachineConfig.tib(**common)
    return MachineConfig.conventional(icache_size=args.cache, **common)


def _cmd_run(args: argparse.Namespace) -> int:
    suite = cached_livermore_suite(scale=args.scale)
    config = _machine_config(args)
    if args.inject_faults is not None:
        # Fault rehearsal: arm the injectors, run the point down the
        # engine-degradation ladder, and report which rung delivered.
        from .core.resilience import FaultReport

        faults.activate(faults.FaultPlan.parse(args.inject_faults))
        try:
            report = FaultReport()
            result, rung = ladder_simulate(
                config,
                suite.program,
                report=report,
                point=args.strategy,
                traced=args.trace_out is not None,
                trace_path=args.trace_out,
            )
        finally:
            faults.deactivate()
        print(result.summary())
        print(f"engine rung   : {rung}")
        print(report.summary())
        if args.trace_out is not None:
            print(f"trace written : {args.trace_out}")
        return 0
    if args.trace_out is not None:
        result = simulate_traced(config, suite.program, trace_path=args.trace_out)
        print(result.summary())
        print()
        print(render_trace_summary(TraceMetrics.from_dict(result.trace_metrics)))
        print(f"trace written : {args.trace_out}")
    else:
        result = simulate(config, suite.program)
        print(result.summary())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    loops = (args.loop,) if args.loop is not None else None
    suite = cached_livermore_suite(scale=args.scale, loops=loops)
    config = _machine_config(args)
    result = simulate_traced(config, suite.program, trace_path=args.out)
    metrics = TraceMetrics.from_dict(result.trace_metrics)
    print(render_trace_summary(metrics))
    if args.out is not None:
        print(f"trace written : {args.out}")
    problems = metrics.verify_against(result)
    if problems:
        print("trace/result mismatch:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("cross-check   : trace metrics match simulator counters")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == 1:
        print(render_table1(cached_livermore_suite(scale=args.scale)))
    else:
        print(render_table2())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    suite = cached_livermore_suite(scale=args.scale)
    sizes = args.sizes or list(PAPER_CACHE_SIZES)
    supervisor = _make_supervisor(args)
    try:
        series = run_figure(
            args.panel,
            suite.program,
            cache_sizes=sizes,
            jobs=resolve_jobs(args.jobs),
            cache=_make_cache(args),
            supervisor=supervisor,
        )
    finally:
        _finish_supervised(args, supervisor)
    if args.csv:
        print(render_series_csv(series, sizes))
    else:
        print(render_figure(args.panel, series, sizes, plot=not args.no_plot))
    return 0


def _make_context(
    scale: float,
    jobs: int = 1,
    cache: SimulationCache | None = None,
    supervisor: SweepSupervisor | None = None,
) -> ExperimentContext:
    suite = cached_livermore_suite(scale=scale)
    return ExperimentContext(
        program=suite.program,
        suite=suite,
        scale=scale,
        jobs=jobs,
        cache=cache,
        supervisor=supervisor,
    )


def _cmd_profile(args: argparse.Namespace) -> int:
    from .analysis.profile import (
        profile_engine,
        profile_program,
        render_codegen_stats,
        render_engine_profile,
        render_profile,
    )

    suite = cached_livermore_suite(scale=args.scale)
    config = _machine_config(args)
    if args.engine:
        print(render_engine_profile(
            profile_engine(config, suite.program, suite.regions())
        ))
    else:
        report = profile_program(config, suite.program, suite.regions())
        print(render_profile(report))
    print(render_codegen_stats())
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    suite = cached_livermore_suite(scale=args.scale)
    if args.loop is not None:
        label = f"ll{args.loop}"
        begin = suite.program.marker(f"{label}.inner.begin")
        end = suite.program.marker(f"{label}.inner.end")
        print(f"; inner loop of {label} ({end - begin} bytes)")
        print(suite.program.disassemble(begin, end))
    else:
        print(suite.program.disassemble())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    supervisor = _make_supervisor(args)
    context = _make_context(
        args.scale,
        jobs=resolve_jobs(args.jobs),
        cache=_make_cache(args),
        supervisor=supervisor,
    )
    try:
        report = run_experiment(args.name, context)
    finally:
        _finish_supervised(args, supervisor)
    print(report.text)
    print()
    print(report.render_checks())
    return 0 if report.all_passed else 1


def _report_worker(task: tuple) -> tuple[str, str, str, bool, int, int]:
    """Run one experiment in a worker process (``report --jobs N``).

    Workers share results through the on-disk simulation cache (when
    enabled); sweeps inside a worker stay serial so pools never nest.
    Returns ``(id, text, checks, passed, cache_hits, cache_misses)``.
    """
    experiment_id, scale, cache_dir, use_cache = task
    cache = SimulationCache(cache_dir) if use_cache else None
    context = _make_context(scale, jobs=1, cache=cache)
    report = run_experiment(experiment_id, context)
    stats = cache.stats if cache is not None else None
    return (
        experiment_id,
        report.text,
        report.render_checks(),
        report.all_passed,
        stats.hits if stats else 0,
        stats.misses if stats else 0,
    )


def _cmd_report(args: argparse.Namespace) -> int:
    jobs = resolve_jobs(args.jobs)
    cache = _make_cache(args)
    supervisor = _make_supervisor(args)
    print(
        f"repro-sim report: scale={args.scale} jobs={jobs} "
        f"cache={'off' if cache is None else cache.root}"
    )
    print()
    failed = False
    hits = misses = 0
    if jobs > 1:
        if cache is not None:
            # Pre-warm the cache with the standard sweeps shared by the
            # figure/headline/ablation experiments, parallelized at the
            # *point* level — so concurrent experiments never re-simulate
            # a shared point.  With a supervisor this is also where all
            # the heavy simulation happens fault-tolerantly; experiment
            # workers then mostly replay the warm cache.
            from .core.sweep import run_cache_sweep

            program = cached_livermore_suite(scale=args.scale).program
            try:
                for access, bus, pipelined in (
                    (1, 4, False),
                    (1, 8, False),
                    (6, 4, False),
                    (6, 8, False),
                    (6, 8, True),
                ):
                    run_cache_sweep(
                        program,
                        jobs=jobs,
                        cache=cache,
                        supervisor=supervisor,
                        memory_access_time=access,
                        input_bus_width=bus,
                        memory_pipelined=pipelined,
                    )
            finally:
                _finish_supervised(args, supervisor)
            supervisor = None  # consumed by the pre-warm phase
        # Independent experiments fan out across workers; shared sweep
        # points flow between them through the content-addressed cache.
        tasks = [
            (experiment_id, args.scale, args.cache_dir, cache is not None)
            for experiment_id in EXPERIMENTS
        ]
        outcomes = parallel_map(_report_worker, tasks, jobs=jobs)
        for experiment_id, text, checks, passed, exp_hits, exp_misses in outcomes:
            print(f"{'=' * 70}")
            print(f"Experiment: {experiment_id}")
            print(f"{'=' * 70}")
            print(text)
            print()
            print(checks)
            print()
            failed = failed or not passed
            hits += exp_hits
            misses += exp_misses
        if cache is not None:  # include the pre-warm phase's traffic
            hits += cache.stats.hits
            misses += cache.stats.misses
    else:
        context = _make_context(
            args.scale, jobs=jobs, cache=cache, supervisor=supervisor
        )
        try:
            for experiment_id in EXPERIMENTS:
                report = run_experiment(experiment_id, context)
                print(f"{'=' * 70}")
                print(f"Experiment: {experiment_id}")
                print(f"{'=' * 70}")
                print(report.text)
                print()
                print(report.render_checks())
                print()
                failed = failed or not report.all_passed
        finally:
            _finish_supervised(args, supervisor)
            supervisor = None
        if cache is not None:
            hits, misses = cache.stats.hits, cache.stats.misses
    if supervisor is not None:  # parallel run without a pre-warm cache
        _finish_supervised(args, supervisor)
    if cache is not None:
        print(
            f"simulation cache: {hits} hits, {misses} misses "
            f"({cache.root})"
        )
    return 1 if failed else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .core.codegen_store import CODEGEN_SUBDIR, CodegenStore

    cache = SimulationCache(args.cache_dir)
    store = CodegenStore(os.path.join(str(cache.root), CODEGEN_SUBDIR))
    if args.action == "stats":
        print(cache.describe())
        print(store.describe())
    else:  # clear
        if args.quarantine:
            removed = cache.clear_quarantine()
            print(
                f"removed {removed} quarantined entr"
                f"{'y' if removed == 1 else 'ies'} from "
                f"{cache.root / 'quarantine'}"
            )
            return 0
        clear_sim = not args.codegen_only
        clear_codegen = not args.sim_only
        if clear_sim:
            removed = cache.clear()
            print(f"removed {removed} cached result(s) from {cache.root}")
        if clear_codegen:
            removed = store.clear()
            print(f"removed {removed} codegen artifact(s) from {store.root}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .core.service import ServiceConfig, serve

    if args.inject_faults is not None:
        faults.activate(faults.FaultPlan.parse(args.inject_faults))
    cache = None if args.no_cache else SimulationCache(args.cache_dir)
    suite = cached_livermore_suite(scale=args.scale)
    pool_jobs = 0 if args.jobs == 0 else resolve_jobs(args.jobs)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        tenant_quota=args.tenant_quota,
        shed_limit=args.shed_limit,
        pool_jobs=pool_jobs,
        point_timeout=args.point_timeout,
        max_retries=args.max_retries,
        default_deadline=args.deadline,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )

    def ready(service) -> None:
        print(
            f"repro-sim service on http://{args.host}:{service.port} "
            f"(pool_jobs={pool_jobs}, queue_limit={args.queue_limit}, "
            f"cache={'off' if cache is None else cache.root})",
            flush=True,
        )

    try:
        asyncio.run(serve(suite.program, config, cache, ready=ready))
    except KeyboardInterrupt:
        print("service stopped")
    finally:
        if args.inject_faults is not None:
            faults.deactivate()
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .core.fuzz import run_corpus, run_fuzz

    configs = args.configs.split(",") if args.configs else None
    engines = args.engines.split(",") if args.engines else None
    progress = None if args.quiet else print
    if args.corpus is not None:
        report = run_corpus(
            args.corpus, configs=configs, progress=progress, engines=engines
        )
    else:
        report = run_fuzz(
            start_seed=args.seed,
            count=args.count,
            budget=args.budget,
            configs=configs,
            failures_dir=args.save_failures,
            shrink=not args.no_shrink,
            progress=progress,
            engines=engines,
        )
    print(report.summary())
    for failure in report.failures:
        print(f"  seed {failure.seed} [{failure.config_name}]:")
        for problem in failure.problems:
            print(f"    {problem}")
        if failure.reproducer_path:
            print(f"    reproducer: {failure.reproducer_path}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Reproduction of Farrens & Pleszkun (ISCA 1989)",
    )
    parser.add_argument(
        "--no-skip",
        action="store_true",
        help="use the reference cycle-by-cycle loop instead of the "
        "idle-cycle-skipping scheduler (results are identical; "
        "equivalent to REPRO_NO_SKIP=1)",
    )
    parser.add_argument(
        "--no-replay",
        action="store_true",
        help="disable steady-state loop replay and simulate every warm "
        "iteration live (results are identical; equivalent to "
        "REPRO_NO_REPLAY=1)",
    )
    parser.add_argument(
        "--no-compiled",
        action="store_true",
        help="disable the per-config compiled step kernel and run the "
        "interpreted engines (results are identical; equivalent to "
        "REPRO_NO_COMPILED=1)",
    )
    parser.add_argument(
        "--no-disk-codegen",
        action="store_true",
        help="disable the persistent codegen artifact store under "
        "<cache-dir>/codegen (results are identical; equivalent to "
        "REPRO_NO_DISK_CODEGEN=1)",
    )
    parser.add_argument(
        "--no-affinity",
        action="store_true",
        help="disable config-affinity batched scheduling of sweep "
        "points; each point travels as its own pool task (results are "
        "identical; equivalent to REPRO_NO_AFFINITY=1)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="simulate one configuration")
    run_parser.add_argument(
        "--strategy", choices=("pipe", "conventional", "tib"), default="pipe"
    )
    run_parser.add_argument(
        "--config", choices=sorted(PIPE_CONFIGURATIONS), default="16-16"
    )
    run_parser.add_argument("--cache", type=int, default=128)
    run_parser.add_argument("--access", type=int, default=6)
    run_parser.add_argument("--bus", type=int, default=8)
    run_parser.add_argument("--pipelined", action="store_true")
    run_parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="also capture a JSONL event trace to PATH (with summary panel)",
    )
    run_parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="arm the deterministic fault injectors and run the point "
        "down the engine-degradation ladder (reports the final rung)",
    )
    _add_scale(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    trace_parser = sub.add_parser(
        "trace", help="capture a cycle-level event trace of one run"
    )
    trace_parser.add_argument(
        "--strategy", choices=("pipe", "conventional", "tib"), default="pipe"
    )
    trace_parser.add_argument(
        "--config", choices=sorted(PIPE_CONFIGURATIONS), default="16-16"
    )
    trace_parser.add_argument("--cache", type=int, default=128)
    trace_parser.add_argument("--access", type=int, default=6)
    trace_parser.add_argument("--bus", type=int, default=8)
    trace_parser.add_argument("--pipelined", action="store_true")
    trace_parser.add_argument(
        "--loop", type=int, choices=range(1, 15), default=None,
        help="trace only this Livermore loop (a much smaller program)",
    )
    trace_parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSONL event stream to PATH (omit for summary only)",
    )
    _add_scale(trace_parser)
    trace_parser.set_defaults(func=_cmd_trace)

    table_parser = sub.add_parser("table", help="print Table I or II")
    table_parser.add_argument("number", type=int, choices=(1, 2))
    _add_scale(table_parser)
    table_parser.set_defaults(func=_cmd_table)

    figure_parser = sub.add_parser("figure", help="regenerate a figure panel")
    figure_parser.add_argument("panel", choices=sorted(FIGURES))
    figure_parser.add_argument("--sizes", type=int, nargs="*", default=None)
    figure_parser.add_argument("--csv", action="store_true")
    figure_parser.add_argument("--no-plot", action="store_true")
    _add_scale(figure_parser)
    _add_perf(figure_parser)
    figure_parser.set_defaults(func=_cmd_figure)

    profile_parser = sub.add_parser("profile", help="per-loop cycle profile")
    profile_parser.add_argument(
        "--strategy", choices=("pipe", "conventional"), default="pipe"
    )
    profile_parser.add_argument(
        "--config", choices=sorted(PIPE_CONFIGURATIONS), default="16-16"
    )
    profile_parser.add_argument("--cache", type=int, default=128)
    profile_parser.add_argument("--access", type=int, default=6)
    profile_parser.add_argument("--bus", type=int, default=8)
    profile_parser.add_argument(
        "--engine",
        action="store_true",
        help="profile the replay engine instead: per-loop live vs "
        "replayed cycle fractions and signature-match statistics",
    )
    _add_scale(profile_parser)
    profile_parser.set_defaults(func=_cmd_profile)

    disasm_parser = sub.add_parser("disasm", help="disassemble the benchmark")
    disasm_parser.add_argument(
        "--loop", type=int, choices=range(1, 15), default=None,
        help="show only this Livermore loop's inner loop",
    )
    _add_scale(disasm_parser)
    disasm_parser.set_defaults(func=_cmd_disasm)

    experiment_parser = sub.add_parser("experiment", help="run one experiment")
    experiment_parser.add_argument("name", choices=EXPERIMENTS)
    _add_scale(experiment_parser)
    _add_perf(experiment_parser)
    experiment_parser.set_defaults(func=_cmd_experiment)

    report_parser = sub.add_parser("report", help="run every experiment")
    _add_scale(report_parser)
    _add_perf(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    cache_parser = sub.add_parser(
        "cache", help="manage the simulation result cache"
    )
    cache_parser.add_argument("action", choices=("stats", "clear"))
    cache_parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: REPRO_CACHE_DIR or .repro_cache)",
    )
    cache_parser.add_argument(
        "--codegen-only",
        action="store_true",
        help="clear only the codegen artifact store, keep simulation "
        "results",
    )
    cache_parser.add_argument(
        "--sim-only",
        action="store_true",
        help="clear only the simulation results, keep codegen artifacts",
    )
    cache_parser.add_argument(
        "--quarantine",
        action="store_true",
        help="clear only the quarantined (corrupt) entries, keep "
        "everything else",
    )
    cache_parser.set_defaults(func=_cmd_cache)

    serve_parser = sub.add_parser(
        "serve",
        help="run the resilient simulation job service (HTTP/JSON)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8750, help="0 picks a free port"
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS or the CPU count; "
        "0 = in-process threads, test mode)",
    )
    serve_parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="max unfinished jobs before submits get HTTP 429",
    )
    serve_parser.add_argument(
        "--tenant-quota",
        type=int,
        default=16,
        help="max unfinished jobs per tenant",
    )
    serve_parser.add_argument(
        "--shed-limit",
        type=int,
        default=32,
        help="in-flight simulations beyond which cold requests are "
        "shed with HTTP 503 (warm-cache hits still served)",
    )
    serve_parser.add_argument(
        "--point-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-attempt limit before a worker is considered hung",
    )
    serve_parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="attempts per point beyond the first",
    )
    serve_parser.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="default request deadline (requests may carry their own)",
    )
    serve_parser.add_argument("--breaker-threshold", type=int, default=3)
    serve_parser.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS"
    )
    serve_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without the on-disk simulation result cache",
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        help="simulation cache directory "
        "(default: REPRO_CACHE_DIR or .repro_cache)",
    )
    serve_parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="arm the deterministic fault injectors (worker kills, "
        "hangs, cache corruption, breaker trips, queue-full "
        "rejections, slow clients) for chaos rehearsal",
    )
    _add_scale(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="differential-fuzz the engine ladder with generated kernels",
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0, help="first seed of the range"
    )
    fuzz_parser.add_argument(
        "--count", type=int, default=100, help="number of seeded cases"
    )
    fuzz_parser.add_argument(
        "--budget",
        default="default",
        help="shape budget name (see repro.kernels.generate.BUDGETS)",
    )
    fuzz_parser.add_argument(
        "--configs",
        default=None,
        help="comma-separated machine configs to cycle through "
        "(default: all fuzz configs)",
    )
    fuzz_parser.add_argument(
        "--engines",
        default=None,
        help="comma-separated engine rungs to pin the ladder to, e.g. "
        "'compiled' (the reference baseline is always included; "
        "default: all four rungs)",
    )
    fuzz_parser.add_argument(
        "--corpus",
        default=None,
        help="instead of generating, re-check every JSON reproducer in "
        "this directory on every config",
    )
    fuzz_parser.add_argument(
        "--save-failures",
        default="test-reports/fuzz",
        help="directory for minimized JSON reproducers of failing cases",
    )
    fuzz_parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="save failing workloads as generated, without minimizing",
    )
    fuzz_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-case progress lines"
    )
    fuzz_parser.set_defaults(func=_cmd_fuzz)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.no_skip:
        # Via the environment so parallel sweep workers inherit it too.
        os.environ[NO_SKIP_ENV] = "1"
    if args.no_replay:
        os.environ[NO_REPLAY_ENV] = "1"
    if args.no_compiled:
        os.environ[NO_COMPILED_ENV] = "1"
    if args.no_disk_codegen:
        os.environ[NO_DISK_CODEGEN_ENV] = "1"
    if args.no_affinity:
        os.environ[NO_AFFINITY_ENV] = "1"
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
