"""Content-addressed, on-disk cache of simulation results.

The paper's evaluation is hundreds of ``simulate(config, program)``
points, and the experiments overlap heavily: figure5b, figure6a, the
headline claim, and the ablations all re-visit the same ``(T=6, 8B
bus)`` sweep, and a ``repro-sim report`` re-runs every one of them from
scratch.  Each point is fully determined by its inputs — the simulator
is deterministic — so results can be cached *by content*:

* a **program fingerprint**: SHA-256 over the instruction format, the
  entry point, and the raw image bytes (anything that changes the
  assembled benchmark — workload scale, kernel edits, seed — changes
  the image, and therefore the fingerprint);
* a **config fingerprint**: SHA-256 over the canonical JSON of
  :meth:`MachineConfig.to_dict` (every field participates, so changing
  any parameter invalidates the entry);
* the entry key is the SHA-256 of both, and the payload is the JSON of
  :meth:`SimulationResult.to_dict` stored under
  ``.repro_cache/<key[:2]>/<key>.json``.

``CACHE_FORMAT_VERSION`` and the scheduler's ``ENGINE_REVISION`` are
folded into the key so schema changes and simulation-engine changes
invalidate old blobs instead of misparsing them.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..asm.program import Program
from .config import MachineConfig
from .results import SimulationResult
from .scheduler import ENGINE_REVISION

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "SimulationCache",
    "cached_simulate",
    "config_fingerprint",
    "program_fingerprint",
    "result_key",
]

#: Bumped whenever the serialized result schema changes shape.
#: v2: results carry the optional ``trace_metrics`` aggregate.
CACHE_FORMAT_VERSION = 2

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


def program_fingerprint(program: Program) -> str:
    """Stable hex digest of everything the simulator reads from a program."""
    h = hashlib.sha256()
    h.update(program.fmt.value.encode())
    h.update(program.entry_point.to_bytes(8, "little"))
    h.update(bytes(program.image))
    return h.hexdigest()


def config_fingerprint(config: MachineConfig) -> str:
    """Stable hex digest of a machine configuration (every field counts)."""
    canonical = json.dumps(config.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def result_key(config: MachineConfig, program: Program) -> str:
    """The content address of one ``(config, program)`` simulation point."""
    h = hashlib.sha256()
    h.update(f"v{CACHE_FORMAT_VERSION}:{ENGINE_REVISION}".encode())
    h.update(config_fingerprint(config).encode())
    h.update(program_fingerprint(program).encode())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`SimulationCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class SimulationCache:
    """Persists :class:`SimulationResult` blobs keyed by content address.

    The cache is safe for concurrent writers (sweep points running in
    parallel processes share one directory): writes go to a unique temp
    file and are published with an atomic rename, and a corrupt or
    truncated blob reads as a miss, never an error.
    """

    def __init__(self, root: str | os.PathLike | None = None):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.stats = CacheStats()
        #: program fingerprints are expensive (they hash the image), so
        #: memoize them per Program identity for the lifetime of the cache
        self._program_keys: dict[int, str] = {}

    # ------------------------------------------------------------------
    def _key(self, config: MachineConfig, program: Program) -> str:
        pkey = self._program_keys.get(id(program))
        if pkey is None:
            pkey = program_fingerprint(program)
            self._program_keys[id(program)] = pkey
        h = hashlib.sha256()
        h.update(f"v{CACHE_FORMAT_VERSION}:{ENGINE_REVISION}".encode())
        h.update(config_fingerprint(config).encode())
        h.update(pkey.encode())
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def lookup(
        self, config: MachineConfig, program: Program
    ) -> SimulationResult | None:
        """The cached result for this point, or ``None`` on a miss."""
        path = self._path(self._key(config, program))
        try:
            payload = json.loads(path.read_text())
            result = SimulationResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def store(
        self, config: MachineConfig, program: Program, result: SimulationResult
    ) -> None:
        """Persist one finished simulation point (atomic publish)."""
        key = self._key(config, program)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
        self.stats.stores += 1

    # ------------------------------------------------------------------
    # Management (the ``repro-sim cache`` subcommand)
    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass  # blob deleted between the glob and the stat
        return total

    def clear(self) -> int:
        """Delete every cached blob; returns the number removed."""
        if not self.root.is_dir():
            return 0  # nothing to do on a missing (or non-directory) root
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        for child in self.root.glob("*"):
            if child.is_dir():
                try:
                    child.rmdir()
                except OSError:
                    pass  # non-empty (e.g. a concurrent writer's temp file)
        return removed

    def describe(self) -> str:
        entries = self.entries()
        total = self.size_bytes()
        return (
            f"cache dir : {self.root}\n"
            f"entries   : {len(entries)}\n"
            f"size      : {total / 1024:.1f} KiB"
        )


def cached_simulate(
    config: MachineConfig,
    program: Program,
    cache: SimulationCache | None = None,
    traced: bool = False,
) -> SimulationResult:
    """:func:`~repro.core.simulator.simulate` through an optional cache.

    With ``traced``, a cold run aggregates its event stream through a
    metrics sink and the cached blob carries the counters, so a later
    cache hit returns the *same* ``trace_metrics`` as the run that
    populated it.  A hit on a blob stored without metrics re-simulates
    (and re-stores) rather than returning a metrics-less result.
    """
    from .simulator import simulate, simulate_traced  # late: simulator is heavy

    def run() -> SimulationResult:
        if traced:
            return simulate_traced(config, program)
        return simulate(config, program)

    if cache is None:
        return run()
    result = cache.lookup(config, program)
    if result is None or (traced and result.trace_metrics is None):
        result = run()
        cache.store(config, program, result)
    return result
