"""Content-addressed, on-disk cache of simulation results.

The paper's evaluation is hundreds of ``simulate(config, program)``
points, and the experiments overlap heavily: figure5b, figure6a, the
headline claim, and the ablations all re-visit the same ``(T=6, 8B
bus)`` sweep, and a ``repro-sim report`` re-runs every one of them from
scratch.  Each point is fully determined by its inputs — the simulator
is deterministic — so results can be cached *by content*:

* a **program fingerprint**: SHA-256 over the instruction format, the
  entry point, and the raw image bytes (anything that changes the
  assembled benchmark — workload scale, kernel edits, seed — changes
  the image, and therefore the fingerprint);
* a **config fingerprint**: SHA-256 over the canonical JSON of
  :meth:`MachineConfig.to_dict` (every field participates, so changing
  any parameter invalidates the entry);
* the entry key is the SHA-256 of both, and the payload is the JSON of
  :meth:`SimulationResult.to_dict` stored under
  ``.repro_cache/<key[:2]>/<key>.json``.

``CACHE_FORMAT_VERSION`` and the scheduler's ``ENGINE_REVISION`` are
folded into the key so schema changes and simulation-engine changes
invalidate old blobs instead of misparsing them.

**Crash safety (format v3).**  A cached number that is *wrong* is worse
than no cache at all, so every entry defends itself end to end: writes
go to a unique temp sibling and are published with an atomic
``os.replace`` (a killed writer can never leave a half-written entry
under a valid name), and each entry embeds a SHA-256 checksum of its
canonical result payload which :meth:`SimulationCache.lookup` verifies
before trusting a byte.  An entry that fails to parse, fails the
checksum, or carries the wrong format version is treated as a miss and
**quarantined** — moved to ``.repro_cache/quarantine/`` and counted in
:attr:`CacheStats.quarantined` — so corruption is visible in
``repro-sim cache stats`` instead of silently poisoning sweeps, and the
bad blob is preserved for inspection instead of being re-read forever.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..asm.program import Program
from .config import MachineConfig
from .results import SimulationResult
from .scheduler import ENGINE_REVISION

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "QUARANTINE_DIR",
    "QUARANTINE_MAX_AGE_SECONDS",
    "QUARANTINE_MAX_BYTES",
    "SimulationCache",
    "cached_simulate",
    "config_fingerprint",
    "program_fingerprint",
    "result_key",
    "sweep_point_keys",
]

#: Bumped whenever the serialized result schema changes shape.
#: v2: results carry the optional ``trace_metrics`` aggregate.
#: v3: entries embed a content checksum verified on every lookup;
#:     unverifiable entries are quarantined instead of re-read.
CACHE_FORMAT_VERSION = 3

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Subdirectory (under the cache root) holding quarantined entries.
QUARANTINE_DIR = "quarantine"

#: Caps on the quarantine directory, enforced after every quarantine
#: move: entries older than the age cap are deleted, then the oldest
#: survivors are evicted until the directory fits the byte cap.  A
#: flaky disk quarantining on every lookup thus converges to a bounded
#: forensic sample instead of a second, ever-growing cache.
QUARANTINE_MAX_BYTES = 4 * 1024 * 1024
QUARANTINE_MAX_AGE_SECONDS = 7 * 24 * 3600.0


def program_fingerprint(program: Program) -> str:
    """Stable hex digest of everything the simulator reads from a program."""
    h = hashlib.sha256()
    h.update(program.fmt.value.encode())
    h.update(program.entry_point.to_bytes(8, "little"))
    h.update(bytes(program.image))
    return h.hexdigest()


def config_fingerprint(config: MachineConfig) -> str:
    """Stable hex digest of a machine configuration (every field counts)."""
    canonical = json.dumps(config.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def result_key(
    config: MachineConfig, program: Program, program_fp: str | None = None
) -> str:
    """The content address of one ``(config, program)`` simulation point.

    ``program_fp`` (a precomputed :func:`program_fingerprint`) avoids
    re-hashing the program image when keying many points at once.
    """
    h = hashlib.sha256()
    h.update(f"v{CACHE_FORMAT_VERSION}:{ENGINE_REVISION}".encode())
    h.update(config_fingerprint(config).encode())
    h.update((program_fp or program_fingerprint(program)).encode())
    return h.hexdigest()


def sweep_point_keys(program: Program, configs) -> list[str]:
    """Content addresses for many points, hashing the program once."""
    program_fp = program_fingerprint(program)
    return [result_key(config, program, program_fp) for config in configs]


def _payload_checksum(result_dict: dict) -> str:
    """SHA-256 of the canonical JSON of one serialized result."""
    canonical = json.dumps(result_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`SimulationCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: entries that failed parsing, checksum, or version verification
    #: and were moved to the quarantine directory
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class SimulationCache:
    """Persists :class:`SimulationResult` blobs keyed by content address.

    The cache is safe for concurrent writers (sweep points running in
    parallel processes share one directory): writes go to a unique temp
    file and are published with an atomic rename.  Every entry embeds a
    content checksum verified on lookup; an entry that cannot be
    verified — corrupt, truncated, or the wrong format version — reads
    as a miss and is quarantined under :data:`QUARANTINE_DIR`, never an
    error and never a silently wrong number.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        quarantine_max_bytes: int = QUARANTINE_MAX_BYTES,
        quarantine_max_age: float = QUARANTINE_MAX_AGE_SECONDS,
    ):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.quarantine_max_bytes = quarantine_max_bytes
        self.quarantine_max_age = quarantine_max_age
        self.stats = CacheStats()
        #: optional ``(key, reason)`` callback fired on each quarantine
        #: (the sweep supervisor records these in its FaultReport)
        self.quarantine_hook = None
        #: program fingerprints are expensive (they hash the image), so
        #: memoize them per Program identity for the lifetime of the cache
        self._program_keys: dict[int, str] = {}

    # ------------------------------------------------------------------
    def _key(self, config: MachineConfig, program: Program) -> str:
        pkey = self._program_keys.get(id(program))
        if pkey is None:
            pkey = program_fingerprint(program)
            self._program_keys[id(program)] = pkey
        h = hashlib.sha256()
        h.update(f"v{CACHE_FORMAT_VERSION}:{ENGINE_REVISION}".encode())
        h.update(config_fingerprint(config).encode())
        h.update(pkey.encode())
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def lookup(
        self, config: MachineConfig, program: Program
    ) -> SimulationResult | None:
        """The verified cached result for this point, or ``None``.

        A present-but-unverifiable entry (parse failure, checksum or
        format-version mismatch) counts as a miss, is quarantined, and
        bumps :attr:`CacheStats.quarantined`.
        """
        key = self._key(config, program)
        path = self._path(key)
        try:
            raw = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None  # genuinely absent: nothing to quarantine
        try:
            payload = json.loads(raw)
            version = payload["version"]
            if version != CACHE_FORMAT_VERSION:
                raise ValueError(f"format version {version!r}")
            stored = payload["checksum"]
            actual = _payload_checksum(payload["result"])
            if stored != actual:
                raise ValueError(
                    f"checksum mismatch (stored {str(stored)[:12]}…, "
                    f"actual {actual[:12]}…)"
                )
            result = SimulationResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError) as exc:
            reason = f"{type(exc).__name__}: {exc}"
            self._quarantine(path)
            self.stats.misses += 1
            self.stats.quarantined += 1
            if self.quarantine_hook is not None:
                self.quarantine_hook(key, reason)
            return None
        self.stats.hits += 1
        return result

    def store(
        self, config: MachineConfig, program: Program, result: SimulationResult
    ) -> None:
        """Persist one finished simulation point (atomic publish).

        The entry is written to a unique temp sibling and published
        with ``os.replace``, so a writer killed at any instant leaves
        either the previous entry or the complete new one — never a
        torn file under a valid entry name.
        """
        from .faults import corrupt_stored_entry  # the injection harness

        key = self._key(config, program)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "checksum": result.checksum(),
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
        self.stats.stores += 1
        # Deterministic fault injection (inert without an active plan):
        # truncate the just-published entry so the verification path
        # stays exercised end to end.
        corrupt_stored_entry(path, key)

    def _quarantine(self, path: Path) -> None:
        """Move one unverifiable entry aside (best effort, atomic)."""
        target = self.root / QUARANTINE_DIR / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            # Cross-device or permission trouble: delete instead, so the
            # bad entry at least cannot be re-read forever.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
        self.prune_quarantine()

    def prune_quarantine(self) -> int:
        """Enforce the quarantine age and size caps; returns removals.

        Entries older than :attr:`quarantine_max_age` seconds go first,
        then the oldest survivors are evicted until the directory's
        total size fits :attr:`quarantine_max_bytes`.  Newest blobs are
        kept — they describe the corruption most likely still under
        investigation.
        """
        import time

        stamped: list[tuple[float, int, Path]] = []
        for path in self.quarantined_entries():
            try:
                stat = path.stat()
            except OSError:
                continue  # deleted underneath us: nothing to prune
            stamped.append((stat.st_mtime, stat.st_size, path))
        stamped.sort()  # oldest first

        removed = 0
        cutoff = time.time() - self.quarantine_max_age
        total = sum(size for _mtime, size, _path in stamped)
        for mtime, size, path in stamped:
            if mtime >= cutoff and total <= self.quarantine_max_bytes:
                break  # survivors are younger and the cap is met
            try:
                path.unlink(missing_ok=True)
                removed += 1
                total -= size
            except OSError:
                pass
        return removed

    def clear_quarantine(self) -> int:
        """Delete every quarantined blob; returns the number removed."""
        removed = 0
        for path in self.quarantined_entries():
            try:
                path.unlink(missing_ok=True)
                removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    # Management (the ``repro-sim cache`` subcommand)
    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        # Live entries live under two-hex-character shard directories;
        # the quarantine directory never matches "??".
        return sorted(self.root.glob("??/*.json"))

    def quarantined_entries(self) -> list[Path]:
        """Entries that failed verification and were moved aside."""
        quarantine = self.root / QUARANTINE_DIR
        if not quarantine.is_dir():
            return []
        return sorted(quarantine.glob("*.json"))

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass  # blob deleted between the glob and the stat
        return total

    def clear(self) -> int:
        """Delete every cached blob; returns the number removed.

        Quarantined entries are swept too (they are dead weight once
        noticed) but do not count toward the return value.
        """
        if not self.root.is_dir():
            return 0  # nothing to do on a missing (or non-directory) root
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.quarantined_entries():
            path.unlink(missing_ok=True)
        for child in self.root.glob("*"):
            if child.is_dir():
                try:
                    child.rmdir()
                except OSError:
                    pass  # non-empty (e.g. a concurrent writer's temp file)
        return removed

    def describe(self) -> str:
        entries = self.entries()
        quarantined = self.quarantined_entries()
        total = self.size_bytes()
        quarantine_bytes = 0
        for path in quarantined:
            try:
                quarantine_bytes += path.stat().st_size
            except OSError:
                pass
        lines = [
            f"cache dir : {self.root}",
            f"entries   : {len(entries)}",
            f"size      : {total / 1024:.1f} KiB",
            f"quarantine: {len(quarantined)} entr"
            f"{'y' if len(quarantined) == 1 else 'ies'}, "
            f"{quarantine_bytes / 1024:.1f} KiB "
            f"(cap {self.quarantine_max_bytes / 1024:.0f} KiB / "
            f"{self.quarantine_max_age / 86400:.0f} days)",
        ]
        if quarantined:
            lines.append(
                f"            ({self.root / QUARANTINE_DIR} — corrupt or "
                "stale-format blobs caught by lookup verification)"
            )
        return "\n".join(lines)


def cached_simulate(
    config: MachineConfig,
    program: Program,
    cache: SimulationCache | None = None,
    traced: bool = False,
    ladder: bool = False,
    report=None,
) -> SimulationResult:
    """:func:`~repro.core.simulator.simulate` through an optional cache.

    With ``traced``, a cold run aggregates its event stream through a
    metrics sink and the cached blob carries the counters, so a later
    cache hit returns the *same* ``trace_metrics`` as the run that
    populated it.  A hit on a blob stored without metrics re-simulates
    (and re-stores) rather than returning a metrics-less result.

    With ``ladder``, a cold run goes through the engine-degradation
    ladder (:func:`repro.core.resilience.ladder_simulate`): a fast-path
    engine failure re-runs the point on the next rung down instead of
    propagating, recording the degradation in ``report`` (a
    :class:`~repro.core.resilience.FaultReport`).  Results are
    byte-identical either way.
    """
    from .simulator import simulate, simulate_traced  # late: simulator is heavy

    def run() -> SimulationResult:
        if ladder:
            from .resilience import ladder_simulate

            result, _rung = ladder_simulate(
                config,
                program,
                report=report,
                point=config_fingerprint(config)[:12],
                traced=traced,
            )
            return result
        if traced:
            return simulate_traced(config, program)
        return simulate(config, program)

    if cache is None:
        return run()
    result = cache.lookup(config, program)
    if result is None or (traced and result.trace_metrics is None):
        result = run()
        cache.store(config, program, result)
    return result
