"""Persistent on-disk store of codegen artifacts (kernels, dispatch).

The compiled engine derives two kinds of artifact from pure functions
of content keys: per-config step-kernel source
(:func:`repro.core.compiled.generate_source`) and per-instruction
dispatch-handler source
(:func:`repro.cpu.dispatch.generate_handler_source`).  Both are
recomputed from scratch by every process — every sweep worker, every
run.  This module makes that warmth durable: artifacts are published
under ``.repro_cache/codegen/`` so a worker's first point for a kernel
family costs a verified read + ``exec`` instead of full generation and
bytecode compilation, and the warmth survives across workers *and*
across runs.

Entries follow the simcache v3 discipline end to end:

* **atomic publish** — writes go to a unique temp sibling and land via
  ``os.replace``, so a killed writer can never leave a torn entry
  under a valid name (concurrent sweep workers share one store);
* **checksum verification** — every entry embeds a SHA-256 over its
  canonical payload, verified before a byte of it is trusted;
* **quarantine** — an entry that fails parsing, the checksum, or the
  format version reads as a miss and is moved to
  ``codegen/quarantine/`` (visible in ``repro-sim cache stats``), then
  regenerated from source — a corrupted artifact is never executed.

Keys are content addresses: callers pass a logical key that already
folds everything the artifact depends on (the kernel family fields
plus :data:`~repro.core.scheduler.ENGINE_REVISION`; the program
fingerprint for dispatch bundles), and the store folds in its own
format version and the interpreter's bytecode magic — entries carry
``marshal``-serialized code objects, which are only meaningful to the
exact bytecode format that wrote them.

``REPRO_NO_DISK_CODEGEN=1`` / ``--no-disk-codegen`` disables the store
entirely; codegen then behaves exactly as before it existed.
"""

from __future__ import annotations

import base64
import hashlib
import importlib.util
import json
import marshal
import os
from dataclasses import dataclass
from pathlib import Path

from .scheduler import ENGINE_REVISION

__all__ = [
    "CODEGEN_FORMAT_VERSION",
    "CODEGEN_SUBDIR",
    "CodegenStats",
    "CodegenStore",
    "default_codegen_root",
]

#: Bumped whenever the on-disk entry schema changes shape.
CODEGEN_FORMAT_VERSION = 1

#: Subdirectory of the simulation-cache root holding codegen artifacts.
#: It never collides with simcache shards (which glob ``"??"``).
CODEGEN_SUBDIR = "codegen"

#: Subdirectory (under the codegen root) holding quarantined entries.
QUARANTINE_DIR = "quarantine"

#: CPython bytecode magic, folded into every entry key: marshal blobs
#: are only meaningful to the interpreter version that wrote them.
_BYTECODE_MAGIC = importlib.util.MAGIC_NUMBER.hex()


def default_codegen_root() -> Path:
    """The store's default location, beside the simulation cache."""
    from .simcache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR

    root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
    return Path(root) / CODEGEN_SUBDIR


def _entry_key(kind: str, logical_key: str) -> str:
    """Content address of one artifact entry.

    Folds the store format version, the interpreter's bytecode magic,
    the entry kind, and the caller's logical key (which itself folds
    :data:`ENGINE_REVISION` plus everything the artifact depends on).
    """
    h = hashlib.sha256()
    h.update(
        f"codegen-v{CODEGEN_FORMAT_VERSION}:{_BYTECODE_MAGIC}:"
        f"{ENGINE_REVISION}:{kind}:".encode()
    )
    h.update(logical_key.encode())
    return h.hexdigest()


def _payload_checksum(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def encode_code(code) -> str:
    """A code object as a JSON-safe string (marshal + base64)."""
    return base64.b64encode(marshal.dumps(code)).decode("ascii")


def decode_code(blob: str):
    """Inverse of :func:`encode_code`; raises ``ValueError`` on garbage."""
    try:
        return marshal.loads(base64.b64decode(blob.encode("ascii")))
    except Exception as exc:  # noqa: BLE001 — marshal raises broadly
        raise ValueError(f"undecodable code blob: {exc}") from exc


@dataclass
class CodegenStats:
    """Hit/miss accounting for one :class:`CodegenStore` instance."""

    kernel_hits: int = 0
    kernel_stores: int = 0
    dispatch_hits: int = 0
    dispatch_stores: int = 0
    misses: int = 0
    #: entries that failed parsing, checksum, or version verification
    #: and were moved to the quarantine directory
    quarantined: int = 0


class CodegenStore:
    """Checksummed, atomically published codegen artifacts on disk.

    Two entry kinds share the verification machinery:

    * ``kernel`` — one generated step-kernel source plus its marshaled
      code object, keyed by the kernel *family* (every spec field that
      shapes the source);
    * ``dispatch`` — one program's bundle of compiled instruction
      handlers, keyed by the program fingerprint.  Bundles merge on
      store, so concurrent sweeps over different configs of one
      program grow a single bundle.
    """

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root) if root is not None else default_codegen_root()
        self.stats = CodegenStats()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _load(self, kind: str, logical_key: str) -> dict | None:
        """The verified payload of one entry, or ``None`` (miss).

        An unverifiable entry is quarantined and reads as a miss — the
        caller regenerates from source, never executes the bad blob.
        """
        key = _entry_key(kind, logical_key)
        path = self._path(key)
        try:
            raw = path.read_text()
        except OSError:
            return None  # genuinely absent
        try:
            entry = json.loads(raw)
            if entry["version"] != CODEGEN_FORMAT_VERSION:
                raise ValueError(f"format version {entry.get('version')!r}")
            if entry["kind"] != kind:
                raise ValueError(f"entry kind {entry.get('kind')!r}")
            payload = entry["payload"]
            stored = entry["checksum"]
            actual = _payload_checksum(payload)
            if stored != actual:
                raise ValueError(
                    f"checksum mismatch (stored {str(stored)[:12]}…, "
                    f"actual {actual[:12]}…)"
                )
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.stats.quarantined += 1
            return None
        return payload

    def _store(self, kind: str, logical_key: str, payload: dict) -> None:
        """Publish one entry atomically (temp sibling + ``os.replace``)."""
        key = _entry_key(kind, logical_key)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CODEGEN_FORMAT_VERSION,
            "kind": kind,
            "key": key,
            "checksum": _payload_checksum(payload),
            "payload": payload,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry))
        os.replace(tmp, path)

    def _quarantine(self, path: Path) -> None:
        """Move one unverifiable entry aside (best effort, atomic)."""
        target = self.root / QUARANTINE_DIR / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Kernel entries
    # ------------------------------------------------------------------
    def load_kernel(self, source_key: str) -> tuple[str, object] | None:
        """``(source, code object)`` for one kernel family, or ``None``."""
        payload = self._load("kernel", source_key)
        if payload is None:
            self.stats.misses += 1
            return None
        try:
            source = payload["source"]
            code = decode_code(payload["code"])
            if not isinstance(source, str):
                raise ValueError("kernel source is not a string")
        except (ValueError, KeyError, TypeError):
            # Checksum passed but the payload is malformed (a writer
            # bug, not bit rot): treat identically — never execute it.
            self._quarantine(self._path(_entry_key("kernel", source_key)))
            self.stats.quarantined += 1
            self.stats.misses += 1
            return None
        self.stats.kernel_hits += 1
        return source, code

    def store_kernel(self, source_key: str, source: str, code) -> None:
        """Publish one kernel family's source + compiled code object.

        Entries are content-addressed, so one that already exists is
        exactly what we would write: concurrent workers compiling the
        same family race to a cheap stat here, not to N redundant
        multi-kilobyte writes.
        """
        if self._path(_entry_key("kernel", source_key)).exists():
            return
        self._store(
            "kernel", source_key, {"source": source, "code": encode_code(code)}
        )
        self.stats.kernel_stores += 1

    # ------------------------------------------------------------------
    # Dispatch bundles (one per program fingerprint)
    # ------------------------------------------------------------------
    def load_dispatch(self, program_key: str) -> dict[str, dict] | None:
        """One program's handler bundle ``{entry key: entry}``, or ``None``.

        Each entry carries the instruction's constructor fields, its
        generated handler source, and the marshaled handler code; the
        dispatch module owns the interpretation.
        """
        payload = self._load("dispatch", program_key)
        if payload is None:
            self.stats.misses += 1
            return None
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            self._quarantine(self._path(_entry_key("dispatch", program_key)))
            self.stats.quarantined += 1
            self.stats.misses += 1
            return None
        self.stats.dispatch_hits += 1
        return entries

    def store_dispatch(self, program_key: str, entries: dict[str, dict]) -> None:
        """Publish (merging) one program's handler bundle.

        Merges with whatever is already on disk so concurrent workers
        sweeping different configs of the same program grow one bundle
        instead of overwriting each other; the publish itself is
        last-write-wins atomic, so a lost race costs a few re-published
        handlers, never a torn entry.
        """
        existing = self._load("dispatch", program_key)
        merged = dict(existing) if isinstance(existing, dict) else {}
        if isinstance(merged.get("entries"), dict):  # pre-merge payload shape
            merged = merged["entries"]
        before = len(merged)
        merged.update(entries)
        if len(merged) == before and existing is not None:
            return  # nothing new to say
        self._store("dispatch", program_key, {"entries": merged})
        self.stats.dispatch_stores += 1

    # ------------------------------------------------------------------
    # Management (the ``repro-sim cache`` subcommand)
    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def quarantined_entries(self) -> list[Path]:
        quarantine = self.root / QUARANTINE_DIR
        if not quarantine.is_dir():
            return []
        return sorted(quarantine.glob("*.json"))

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every stored artifact; returns the number removed."""
        if not self.root.is_dir():
            return 0
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.quarantined_entries():
            path.unlink(missing_ok=True)
        for child in self.root.glob("*"):
            if child.is_dir():
                try:
                    child.rmdir()
                except OSError:
                    pass  # non-empty (e.g. a concurrent writer's temp file)
        try:
            self.root.rmdir()
        except OSError:
            pass
        return removed

    def describe(self) -> str:
        entries = self.entries()
        quarantined = self.quarantined_entries()
        lines = [
            f"codegen dir: {self.root}",
            f"artifacts  : {len(entries)}",
            f"size       : {self.size_bytes() / 1024:.1f} KiB",
            f"quarantine : {len(quarantined)} entr"
            f"{'y' if len(quarantined) == 1 else 'ies'}",
        ]
        if quarantined:
            lines.append(
                f"             ({self.root / QUARANTINE_DIR} — corrupt or "
                "stale-format artifacts caught by verification)"
            )
        return "\n".join(lines)
