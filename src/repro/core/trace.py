"""Structured cycle-level event tracing.

The paper's arguments are *event* arguments — when the PBR scan fires,
how deep the IQ runs, whether a prefetch loses the bus to a demand load
— but a :class:`~repro.core.results.SimulationResult` only reports
end-of-run aggregates.  This module adds the missing layer: every
component of the machine (the simulator core, all three frontends, the
instruction cache, the data-queue engine, and the memory system) emits
structured events through one :class:`Tracer`, and pluggable sinks
decide what happens to them:

* :class:`JsonLinesSink` — one canonical JSON object per line, suitable
  for golden-trace regression tests and offline inspection;
* :class:`RingBufferSink` — a bounded in-memory window (the last *n*
  events), for post-mortem inspection of deadlocks and timeouts;
* :class:`MetricsSink` — an incremental aggregator that derives
  per-component counters (miss rate, port utilisation, mean IQ depth)
  from the event stream and can be cross-checked against the headline
  ``SimulationResult`` counters.

Tracing is **near-zero-cost when disabled**: every emit site in the hot
loop is guarded by a single ``if tracer.enabled:`` branch against the
shared :data:`NULL_TRACER`, so the disabled path never builds an event.

Event vocabulary (``component`` / ``kind`` / payload fields)::

    sim      begin     strategy, config          one per run, cycle 0
    sim      end       cycles, instructions, halted
    icache   hit       addr
    icache   miss      addr, seq                 seq of the fill request (-1: none)
    icache   fill      addr, bytes, replaced
    fetch    request   addr, bytes, demand, seq  demand fetch or prefetch issue
    fetch    promote   seq                       prefetch promoted to demand
    fetch    complete  seq                       last byte delivered
    fetch    cancel    seq, reason               withdrawn/discarded request
    fetch    redirect  target, squashed
    tib      hit       target, bytes
    tib      miss      target
    tib      alloc     target
    iq       push      pc, depth, bytes          depth/bytes *after* the push
    iq       pop       pc, depth, bytes
    iqb      assign    base, source              "cache" or "memory"
    mem      accept    kind, addr, bytes, demand, fpu, seq
    mem      deliver   source, seq, offset, bytes
    mem      conflict  candidates                >1 request wanted the output bus
    backend  issue     pc
    backend  stall     reason
    backend  branch    pc, taken, target, delay
    queue    push      queue, depth              depth *after* the operation
    queue    pop       queue, depth
    engine   hazard    addr                      load overlapping a queued store
    engine   fpu_op    addr                      FPU operation triggered

All payload values are ints, bools, or short strings — never floats or
wall-clock data — so a trace of a deterministic run is byte-identical
across processes, platforms, and serial/parallel execution.
"""

from __future__ import annotations

import io
import json
import os
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

__all__ = [
    "JsonLinesSink",
    "MetricsSink",
    "NULL_TRACER",
    "RingBufferSink",
    "TraceMetrics",
    "TraceSink",
    "Tracer",
    "read_trace",
]


class TraceSink:
    """Receives every event the tracer emits.  Subclass and override."""

    def emit(self, cycle: int, component: str, kind: str, fields: Mapping) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources.  Idempotent."""


class Tracer:
    """Fans events out to its sinks, stamping the current cycle.

    The simulator sets :attr:`cycle` once per simulated cycle, so
    emitters never thread ``now`` through their call chains.  A tracer
    with no sinks is disabled; emit sites must guard with
    ``if tracer.enabled:`` so the disabled path costs one branch.
    """

    __slots__ = ("cycle", "enabled", "record", "_sinks")

    def __init__(self, sinks: Iterable[TraceSink] = ()):
        self._sinks: list[TraceSink] = list(sinks)
        self.enabled = bool(self._sinks)
        self.cycle = 0
        #: When the replay engine records a loop iteration it points this
        #: at a list; every emitted event is appended as
        #: ``(cycle, component, kind, fields)`` alongside normal sink
        #: delivery.  ``None`` (the default) records nothing.
        self.record: list | None = None

    def attach(self, sink: TraceSink) -> TraceSink:
        """Add a sink (before the run starts) and return it."""
        self._sinks.append(sink)
        self.enabled = True
        return sink

    def emit(self, component: str, kind: str, /, **fields) -> None:
        for sink in self._sinks:
            sink.emit(self.cycle, component, kind, fields)
        if self.record is not None:
            self.record.append((self.cycle, component, kind, fields))

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()

    # ------------------------------------------------------------------
    def metrics(self) -> "TraceMetrics | None":
        """The metrics of the first attached :class:`MetricsSink`, if any."""
        for sink in self._sinks:
            if isinstance(sink, MetricsSink):
                return sink.metrics
        return None


#: The shared disabled tracer every component defaults to.
NULL_TRACER = Tracer()


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class JsonLinesSink(TraceSink):
    """Writes one canonical JSON object per event line.

    The record shape is ``{"c": cycle, "o": component, "k": kind,
    ...payload}`` with insertion-ordered keys and compact separators, so
    a deterministic run always serialises to byte-identical output —
    the property the golden-trace and serial-vs-parallel identity tests
    rely on.  Accepts a path (file owned and closed by the sink) or an
    open text stream (caller keeps ownership).
    """

    def __init__(self, target: str | os.PathLike | io.TextIOBase):
        if isinstance(target, (str, os.PathLike)):
            self._file = open(target, "w", encoding="utf-8", newline="\n")
            self._owned = True
        else:
            self._file = target
            self._owned = False
        self.events_written = 0

    def emit(self, cycle: int, component: str, kind: str, fields: Mapping) -> None:
        record = {"c": cycle, "o": component, "k": kind}
        record.update(fields)
        self._file.write(json.dumps(record, separators=(",", ":")))
        self._file.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._owned and not self._file.closed:
            self._file.close()
        elif not self._owned:
            self._file.flush()


def read_trace(path: str | os.PathLike) -> Iterator[dict]:
    """Yield the event records of a JSONL trace file."""
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                yield json.loads(line)


class RingBufferSink(TraceSink):
    """Keeps the last ``capacity`` events in memory (None = unbounded).

    Each stored record has the same shape as a parsed JSONL line.
    """

    def __init__(self, capacity: int | None = 4096):
        if capacity is not None and capacity <= 0:
            raise ValueError("ring buffer capacity must be positive or None")
        self.capacity = capacity
        self.events: deque[dict] = deque(maxlen=capacity)
        self.total_events = 0

    def emit(self, cycle: int, component: str, kind: str, fields: Mapping) -> None:
        record = {"c": cycle, "o": component, "k": kind}
        record.update(fields)
        self.events.append(record)
        self.total_events += 1


# ----------------------------------------------------------------------
# Metrics aggregation
# ----------------------------------------------------------------------
@dataclass
class QueueMetrics:
    """Per-queue counters derived from ``queue`` push/pop events."""

    pushes: int = 0
    pops: int = 0
    max_occupancy: int = 0


@dataclass
class TraceMetrics:
    """Counters derived purely from the event stream.

    Mirrors every aggregate a :class:`SimulationResult` reports, so
    :meth:`verify_against` can prove the two accounting paths agree —
    the trace layer's core correctness property.
    """

    events: int = 0
    cycles: int = 0
    instructions: int = 0
    halted: bool = False
    # icache
    cache_hits: int = 0
    cache_misses: int = 0
    cache_fills: int = 0
    cache_line_replacements: int = 0
    # fetch
    demand_requests: int = 0
    prefetch_requests: int = 0
    prefetch_promotions: int = 0
    fetch_completes: int = 0
    fetch_cancels: int = 0
    redirects: int = 0
    squashed_instructions: int = 0
    # TIB
    tib_hits: int = 0
    tib_misses: int = 0
    tib_bytes_supplied: int = 0
    # memory system
    loads_accepted: int = 0
    stores_accepted: int = 0
    ifetch_demand_accepted: int = 0
    ifetch_prefetch_accepted: int = 0
    fpu_stores_accepted: int = 0
    fpu_loads_accepted: int = 0
    input_bus_busy_cycles: int = 0
    input_bus_bytes: int = 0
    output_bus_busy_cycles: int = 0
    acceptance_conflicts: int = 0
    # backend
    branches: int = 0
    branches_taken: int = 0
    stalls: dict[str, int] = field(default_factory=dict)
    # data engine
    loads_issued: int = 0
    stores_issued: int = 0
    fpu_operations: int = 0
    ordering_hazards: int = 0
    queues: dict[str, QueueMetrics] = field(default_factory=dict)
    # IQ occupancy (PIPE frontend)
    iq_pushes: int = 0
    iq_pops: int = 0
    iq_max_depth: int = 0
    iq_max_bytes: int = 0
    iq_depth_sum: int = 0
    iq_depth_samples: int = 0

    # ------------------------------------------------------------------
    # Derived figures (the summary panel)
    # ------------------------------------------------------------------
    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cache_miss_rate(self) -> float:
        lookups = self.cache_lookups
        return self.cache_misses / lookups if lookups else 0.0

    @property
    def output_port_utilization(self) -> float:
        """Fraction of cycles the output (request) bus accepted a request."""
        return self.output_bus_busy_cycles / self.cycles if self.cycles else 0.0

    @property
    def input_port_utilization(self) -> float:
        """Fraction of cycles the input (return) bus carried data."""
        return self.input_bus_busy_cycles / self.cycles if self.cycles else 0.0

    @property
    def mean_iq_depth(self) -> float:
        """Mean IQ entry count sampled at every push/pop event."""
        if not self.iq_depth_samples:
            return 0.0
        return self.iq_depth_sum / self.iq_depth_samples

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def update(self, record: Mapping) -> None:
        """Fold one event record (parsed JSONL shape) into the counters."""
        self._dispatch(record["o"], record["k"], record)

    def _dispatch(self, component: str, kind: str, fields: Mapping) -> None:
        self.events += 1
        if component == "backend":
            if kind == "issue":
                self.instructions += 1
            elif kind == "stall":
                reason = fields["reason"]
                self.stalls[reason] = self.stalls.get(reason, 0) + 1
            elif kind == "branch":
                self.branches += 1
                if fields["taken"]:
                    self.branches_taken += 1
        elif component == "queue":
            name = fields["queue"]
            metrics = self.queues.get(name)
            if metrics is None:
                metrics = self.queues.setdefault(name, QueueMetrics())
            depth = fields["depth"]
            if kind == "push":
                metrics.pushes += 1
                if depth > metrics.max_occupancy:
                    metrics.max_occupancy = depth
                # Every load pushes the LAQ exactly once at issue (and
                # every store the SAQ), so the issue counters fall out of
                # the queue stream without dedicated events.
                if name == "LAQ":
                    self.loads_issued += 1
                elif name == "SAQ":
                    self.stores_issued += 1
            else:
                metrics.pops += 1
        elif component == "icache":
            if kind == "hit":
                self.cache_hits += 1
            elif kind == "miss":
                self.cache_misses += 1
            elif kind == "fill":
                self.cache_fills += 1
                self.cache_line_replacements += fields["replaced"]
        elif component == "mem":
            if kind == "accept":
                self.output_bus_busy_cycles += 1
                if fields["fpu"]:
                    if fields["kind"] == "store":
                        self.fpu_stores_accepted += 1
                    else:
                        self.fpu_loads_accepted += 1
                elif fields["kind"] == "load":
                    self.loads_accepted += 1
                elif fields["kind"] == "store":
                    self.stores_accepted += 1
                elif fields["demand"]:
                    self.ifetch_demand_accepted += 1
                else:
                    self.ifetch_prefetch_accepted += 1
            elif kind == "deliver":
                self.input_bus_busy_cycles += 1
                self.input_bus_bytes += fields["bytes"]
            elif kind == "conflict":
                self.acceptance_conflicts += 1
        elif component == "fetch":
            if kind == "request":
                if fields["demand"]:
                    self.demand_requests += 1
                else:
                    self.prefetch_requests += 1
            elif kind == "promote":
                self.prefetch_promotions += 1
            elif kind == "complete":
                self.fetch_completes += 1
            elif kind == "cancel":
                self.fetch_cancels += 1
            elif kind == "redirect":
                self.redirects += 1
                self.squashed_instructions += fields["squashed"]
        elif component == "iq":
            depth = fields["depth"]
            if kind == "push":
                self.iq_pushes += 1
                if depth > self.iq_max_depth:
                    self.iq_max_depth = depth
                if fields["bytes"] > self.iq_max_bytes:
                    self.iq_max_bytes = fields["bytes"]
            else:
                self.iq_pops += 1
            self.iq_depth_sum += depth
            self.iq_depth_samples += 1
        elif component == "tib":
            if kind == "hit":
                self.tib_hits += 1
                self.tib_bytes_supplied += fields["bytes"]
            elif kind == "miss":
                self.tib_misses += 1
        elif component == "engine":
            if kind == "hazard":
                self.ordering_hazards += 1
            elif kind == "fpu_op":
                self.fpu_operations += 1
        elif component == "sim":
            if kind == "end":
                self.cycles = fields["cycles"]
                self.halted = fields["halted"]

    # ------------------------------------------------------------------
    @classmethod
    def from_events(cls, records: Iterable[Mapping]) -> "TraceMetrics":
        """Aggregate an event stream (e.g. :func:`read_trace` output)."""
        metrics = cls()
        for record in records:
            metrics.update(record)
        return metrics

    # ------------------------------------------------------------------
    # Serialization (results carry their metrics through the simcache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe dict; :meth:`from_dict` round-trips to equality."""
        out = {
            name: getattr(self, name)
            for name in (
                "events",
                "cycles",
                "instructions",
                "halted",
                "cache_hits",
                "cache_misses",
                "cache_fills",
                "cache_line_replacements",
                "demand_requests",
                "prefetch_requests",
                "prefetch_promotions",
                "fetch_completes",
                "fetch_cancels",
                "redirects",
                "squashed_instructions",
                "tib_hits",
                "tib_misses",
                "tib_bytes_supplied",
                "loads_accepted",
                "stores_accepted",
                "ifetch_demand_accepted",
                "ifetch_prefetch_accepted",
                "fpu_stores_accepted",
                "fpu_loads_accepted",
                "input_bus_busy_cycles",
                "input_bus_bytes",
                "output_bus_busy_cycles",
                "acceptance_conflicts",
                "branches",
                "branches_taken",
                "loads_issued",
                "stores_issued",
                "fpu_operations",
                "ordering_hazards",
                "iq_pushes",
                "iq_pops",
                "iq_max_depth",
                "iq_max_bytes",
                "iq_depth_sum",
                "iq_depth_samples",
            )
        }
        out["stalls"] = dict(self.stalls)
        out["queues"] = {
            name: {
                "pushes": queue.pushes,
                "pops": queue.pops,
                "max_occupancy": queue.max_occupancy,
            }
            for name, queue in self.queues.items()
        }
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "TraceMetrics":
        kwargs = dict(data)
        kwargs["queues"] = {
            name: QueueMetrics(**queue) for name, queue in data["queues"].items()
        }
        kwargs["stalls"] = dict(data["stalls"])
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Cross-checking against the simulator's own accounting
    # ------------------------------------------------------------------
    def verify_against(self, result) -> list[str]:
        """Mismatches between these metrics and a ``SimulationResult``.

        Returns a list of human-readable discrepancy strings; an empty
        list means the trace-derived counters equal the simulator's own
        counters exactly.  Catches silent drift between the two
        accounting paths (an instrumented site whose stats line moved
        without its event, or vice versa).
        """
        problems: list[str] = []

        def check(name: str, ours, theirs) -> None:
            if ours != theirs:
                problems.append(f"{name}: trace={ours!r} result={theirs!r}")

        check("cycles", self.cycles, result.cycles)
        check("instructions", self.instructions, result.instructions)
        check("halted", self.halted, result.halted)
        check("cache.hits", self.cache_hits, result.cache.hits)
        check("cache.misses", self.cache_misses, result.cache.misses)
        check("cache.fills", self.cache_fills, result.cache.fills)
        check(
            "cache.line_replacements",
            self.cache_line_replacements,
            result.cache.line_replacements,
        )
        fetch = result.fetch
        check(
            "fetch.instructions_supplied",
            self.instructions,
            fetch.instructions_supplied,
        )
        check("fetch.demand_requests", self.demand_requests, fetch.demand_requests)
        check(
            "fetch.prefetch_requests", self.prefetch_requests, fetch.prefetch_requests
        )
        check(
            "fetch.prefetch_promotions",
            self.prefetch_promotions,
            fetch.prefetch_promotions,
        )
        check("fetch.redirects", self.redirects, fetch.redirects)
        check(
            "fetch.squashed_instructions",
            self.squashed_instructions,
            fetch.squashed_instructions,
        )
        if hasattr(fetch, "tib_hits"):
            check("tib.hits", self.tib_hits, fetch.tib_hits)
            check("tib.misses", self.tib_misses, fetch.tib_misses)
            check(
                "tib.bytes_supplied", self.tib_bytes_supplied, fetch.tib_bytes_supplied
            )
        memory = result.memory
        for name in (
            "loads_accepted",
            "stores_accepted",
            "ifetch_demand_accepted",
            "ifetch_prefetch_accepted",
            "fpu_stores_accepted",
            "fpu_loads_accepted",
            "input_bus_busy_cycles",
            "input_bus_bytes",
            "output_bus_busy_cycles",
            "acceptance_conflicts",
        ):
            check(f"memory.{name}", getattr(self, name), getattr(memory, name))
        for reason, count in result.stalls.items():
            check(f"stalls.{reason}", self.stalls.get(reason, 0), count)
        for reason in self.stalls:
            if reason not in result.stalls:
                problems.append(f"stalls.{reason}: trace-only stall reason")
        for name, snapshot in result.queues.items():
            queue = self.queues.get(name, QueueMetrics())
            check(f"queues.{name}.pushes", queue.pushes, snapshot.pushes)
            check(f"queues.{name}.pops", queue.pops, snapshot.pops)
            check(
                f"queues.{name}.max_occupancy",
                queue.max_occupancy,
                snapshot.max_occupancy,
            )
        check("branches", self.branches, result.branches)
        check("branches_taken", self.branches_taken, result.branches_taken)
        check("loads", self.loads_issued, result.loads)
        check("stores", self.stores_issued, result.stores)
        check("fpu_operations", self.fpu_operations, result.fpu_operations)
        check("ordering_hazards", self.ordering_hazards, result.ordering_hazards)
        return problems


class MetricsSink(TraceSink):
    """Aggregates the event stream into a :class:`TraceMetrics` live."""

    def __init__(self):
        self.metrics = TraceMetrics()

    def emit(self, cycle: int, component: str, kind: str, fields: Mapping) -> None:
        self.metrics._dispatch(component, kind, fields)


# ----------------------------------------------------------------------
# Trace-file utilities (parallel sweeps merge per-worker part files)
# ----------------------------------------------------------------------
def merge_trace_files(
    parts: Iterable[str | os.PathLike], destination: str | os.PathLike
) -> int:
    """Concatenate part files into ``destination`` in the given order.

    Returns the number of bytes written.  Used by the parallel traced
    sweep: each worker streams one point's events to its own part file,
    and the merge in submission order makes the combined trace
    byte-identical to a serial run.
    """
    destination = Path(destination)
    if destination.parent != Path("."):
        destination.parent.mkdir(parents=True, exist_ok=True)
    written = 0
    with open(destination, "wb") as out:
        for part in parts:
            with open(part, "rb") as stream:
                while True:
                    chunk = stream.read(1 << 20)
                    if not chunk:
                        break
                    out.write(chunk)
                    written += len(chunk)
    return written
