"""The cycle-level simulator.

Builds the machine described by a :class:`~repro.core.config.MachineConfig`
around an assembled :class:`~repro.asm.program.Program` and runs it to
completion.  Per cycle, components are evaluated in this order:

1. ``memory.begin_cycle`` — the input bus delivers at most one transfer
   (load data → the data engine, instruction bytes → cache/IQB);
2. ``engine.update`` — arrived load data enters the LDQ in program order;
3. ``frontend.update`` — pre-issue frontend work (prefetch promotion,
   moving arrived instruction bytes toward the decoder);
4. ``backend.step`` — at most one instruction issues;
5. ``frontend.post_issue`` — refills/transfers are staged for next cycle;
6. ``memory.end_cycle`` — the output bus accepts at most one new request
   under the configured memory-interface priority.

The run ends when the program has executed HALT **and** every queue and
in-flight transaction has drained; the cycle count at that point is the
paper's performance metric.

**Idle-cycle skipping.**  Every component bumps a shared
:class:`~repro.core.scheduler.ProgressClock` on each real state
mutation.  When an executed cycle produces zero ticks the machine is
provably frozen — the same stall, the same losing arbitration, the same
busy memory — until the earliest *timed* event (external-memory
``ready_at``, FPU completion, branch ``resolve_at``).  The scheduler
then bulk-advances ``now`` to the min over the components'
``next_event_cycle`` hints, applying the per-cycle accounting (stall
counters, external-memory busy cycles, acceptance conflicts, and —
when traced — the per-idle-cycle ``backend stall`` / ``mem conflict``
events) arithmetically, so results and traces are byte-identical to
the reference loop.  ``skip=False`` or ``REPRO_NO_SKIP=1`` selects the
reference cycle-by-cycle loop for differential testing.

**Steady-state loop replay.**  On top of idle-cycle skipping, the
:class:`~repro.core.replay.ReplayController` memoizes warm loop
iterations: at loop backedges the machine is fingerprinted via the
components' ``state_signature`` hooks, and once a recorded iteration
is reproduced exactly by the next live iteration, further iterations
are applied *arithmetically* — a counter-silent shadow functional pass
advances registers, memory, and queue values, every simulation counter
advances by its recorded delta, and all timed state shifts by the
iteration's cycle/sequence deltas.  The moment any input differs
(branch outcome, FPU-window address, ordering-hazard count) the shadow
is discarded and live simulation resumes from the untouched boundary
state, so results, stats, and traces stay byte-identical to the
reference engine.  ``replay=False`` or ``REPRO_NO_REPLAY=1`` disables
it for differential testing.
"""

from __future__ import annotations

from ..asm.program import Program
from ..cpu.backend import Backend
from ..cpu.data_engine import DataQueueEngine
from ..frontend.conventional import ConventionalFetchUnit
from ..frontend.icache import InstructionCache
from ..frontend.pipe_fetch import PipeFetchUnit
from ..frontend.tib import TibFetchUnit
from ..memory.system import MemorySystem
from .config import FetchStrategy, MachineConfig
from .faults import replay_fault_hook
from .replay import ReplayController
from .results import QueueSnapshot, SimulationResult
from .scheduler import (
    IDLE,
    ProgressClock,
    SeqCounter,
    replay_enabled_default,
    skip_enabled_default,
)
from .trace import NULL_TRACER, JsonLinesSink, MetricsSink, TraceSink, Tracer

__all__ = [
    "DeadlockError",
    "SimulationTimeout",
    "Simulator",
    "simulate",
    "simulate_traced",
]


class SimulationTimeout(RuntimeError):
    """The run exceeded ``config.max_cycles`` without draining.

    ``cycle`` is the architectural cycle at which the limit was hit
    (exact even when the skip scheduler jumped into it); ``fast_path``
    records whether idle-cycle skipping was active.
    """

    cycle: int = -1
    fast_path: bool = False


class DeadlockError(RuntimeError):
    """No instruction issued and no bus activity for a long stretch.

    This catches programs that violate the architectural queue
    discipline — most commonly keeping more unconsumed loads in flight
    than the LDQ can hold, which wedges any decoupled-queue machine
    (the LAQ cannot drain because the LDQ is full, and the LDQ cannot
    drain because issue is blocked on the full LAQ).

    ``cycle`` is the architectural cycle at which the detector fired
    (exact even when the skip scheduler jumped into it); ``fast_path``
    records whether idle-cycle skipping was active.
    """

    cycle: int = -1
    fast_path: bool = False


#: outcomes of a bulk-advance that lands on a detection horizon
_FATE_DEADLOCK = "deadlock"
_FATE_TIMEOUT = "timeout"


class Simulator:
    """One machine instance, ready to :meth:`run` one program."""

    def __init__(
        self,
        config: MachineConfig,
        program: Program,
        tracer: Tracer | None = None,
        skip: bool | None = None,
        replay: bool | None = None,
    ):
        if program.fmt is not config.instruction_format:
            raise ValueError(
                f"program was assembled for {program.fmt.value} but the "
                f"machine is configured for {config.instruction_format.value}"
            )
        self.config = config
        self.program = program
        self.tracer = tracer if tracer is not None else NULL_TRACER
        tracer = self.tracer
        #: idle-cycle skipping; ``None`` defers to ``REPRO_NO_SKIP``
        self.skip = skip_enabled_default() if skip is None else bool(skip)
        #: steady-state loop replay; ``None`` defers to ``REPRO_NO_REPLAY``
        self.replay_enabled = (
            replay_enabled_default() if replay is None else bool(replay)
        )
        #: the controller of the most recent :meth:`run` (``None`` when
        #: replay is disabled); the engine profiler reads its reports
        self.replay_controller: ReplayController | None = None
        #: armed by the deterministic fault-injection harness for this
        #: point (``None`` in normal operation); the replay controller
        #: invokes it at every loop backedge, and the resilience
        #: layer's engine-degradation ladder absorbs what it raises
        self.replay_fault_hook = replay_fault_hook(config)
        self.clock = ProgressClock()
        clock = self.clock

        #: shared sequence allocator (a plain counter object so the
        #: replay engine can shift it across memoized iterations)
        self.seq = SeqCounter()
        next_seq = self.seq

        self.cache = InstructionCache(
            size=config.icache_size,
            line_size=config.line_size,
            sub_block_size=config.sub_block_size,
            associativity=config.cache_associativity,
            tracer=tracer,
        )
        self.memory = MemorySystem(
            access_time=config.memory_access_time,
            pipelined=config.memory_pipelined,
            input_bus_width=config.input_bus_width,
            priority=config.priority,
            fpu_latencies=config.fpu_latencies,
            tracer=tracer,
            clock=clock,
        )
        # All frontends share the program's predecoded-instruction
        # table, so the decode work for a hot loop is paid once per
        # program image rather than once per fetch.
        predecode = program.predecoded
        if config.fetch_strategy is FetchStrategy.PIPE:
            self.frontend = PipeFetchUnit(
                image=program.image,
                fmt=program.fmt,
                cache=self.cache,
                iq_size=config.iq_size,
                iqb_size=config.iqb_size,
                entry_point=program.entry_point,
                next_seq=next_seq,
                true_prefetch=config.true_prefetch,
                predecode=predecode,
                tracer=tracer,
                clock=clock,
            )
        elif config.fetch_strategy is FetchStrategy.TIB:
            self.frontend = TibFetchUnit(
                image=program.image,
                fmt=program.fmt,
                input_bus_width=config.input_bus_width,
                entry_point=program.entry_point,
                next_seq=next_seq,
                tib_entries=config.tib_entries,
                tib_entry_bytes=config.tib_entry_bytes,
                stream_buffer_bytes=config.stream_buffer_bytes,
                predecode=predecode,
                tracer=tracer,
                clock=clock,
            )
        else:
            self.frontend = ConventionalFetchUnit(
                image=program.image,
                fmt=program.fmt,
                cache=self.cache,
                input_bus_width=config.input_bus_width,
                entry_point=program.entry_point,
                next_seq=next_seq,
                prefetch_policy=config.prefetch_policy,
                predecode=predecode,
                tracer=tracer,
                clock=clock,
            )
        self.engine = DataQueueEngine(
            program=program,
            next_seq=next_seq,
            laq_capacity=config.laq_capacity,
            ldq_capacity=config.ldq_capacity,
            saq_capacity=config.saq_capacity,
            sdq_capacity=config.sdq_capacity,
            tracer=tracer,
            clock=clock,
        )
        self.backend = Backend(
            frontend=self.frontend,
            engine=self.engine,
            branch_resolution_latency=config.branch_resolution_latency,
            tracer=tracer,
            clock=clock,
        )
        # Arbitration polls sources in registration order; order is
        # irrelevant because priority is decided per request.
        self.memory.register_source(self.frontend)
        self.memory.register_source(self.engine)

    # ------------------------------------------------------------------
    #: cycles of zero progress (no issue, no bus traffic) before the run
    #: is declared deadlocked.  Far above any legitimate stall.
    DEADLOCK_CYCLES = 20_000

    #: progress snapshots for deadlock detection happen when
    #: ``now & SNAPSHOT_MASK == 0`` (every 256 cycles), so the hot loop
    #: pays one integer compare per cycle instead of building a tuple.
    SNAPSHOT_MASK = 0xFF

    def run(self) -> SimulationResult:
        now = 0
        max_cycles = self.config.max_cycles
        memory = self.memory
        mem_stats = memory.stats
        external = memory.external
        engine = self.engine
        frontend = self.frontend
        backend = self.backend
        clock = self.clock
        skip = self.skip
        replay = ReplayController(self) if self.replay_enabled else None
        self.replay_controller = replay
        tracer = self.tracer
        traced = tracer.enabled
        deadlock_cycles = self.DEADLOCK_CYCLES
        mask = self.SNAPSHOT_MASK
        interval = mask + 1
        if traced:
            tracer.cycle = 0
            tracer.emit(
                "sim",
                "begin",
                strategy=self.config.fetch_strategy.value,
                config=self.config.describe(),
            )
        # Deadlock detection: the tick count seen at the last snapshot
        # and the snapshot cycle at which it last advanced.
        last_ticks = clock.ticks
        last_progress_at = 0
        while True:
            if traced:
                tracer.cycle = now
            ticks_before = clock.ticks
            conflicts_before = mem_stats.acceptance_conflicts
            memory.begin_cycle(now)
            engine.update(now)
            frontend.update(now)
            backend.step(now)
            if backend.halted:
                frontend.halt()
            frontend.post_issue(now)
            memory.end_cycle(now)
            now += 1
            if backend.halted and engine.drained and memory.drained:
                if traced:
                    tracer.cycle = now
                    tracer.emit(
                        "sim",
                        "end",
                        cycles=now,
                        instructions=backend.instructions,
                        halted=backend.halted,
                    )
                break
            if replay is not None and backend.replay_backedge is not None:
                target = backend.replay_backedge
                backend.replay_backedge = None
                jumped = replay.on_backedge(target, now)
                if jumped != now:
                    # Iterations were replayed arithmetically; the
                    # reference engine recorded progress at every
                    # snapshot inside the span.
                    now = jumped
                    last_ticks = clock.ticks
                    last_progress_at = now & ~mask
            if not now & mask:
                ticks = clock.ticks
                if ticks != last_ticks:
                    last_ticks = ticks
                    last_progress_at = now
                elif now - last_progress_at > deadlock_cycles:
                    raise self._deadlock(now, last_progress_at, fast_path=False)
                if replay is not None:
                    replay.check_runaway()
            if now >= max_cycles:
                raise self._timeout(now, fast_path=False)
            if skip and clock.ticks == ticks_before:
                # Quiescent probe cycle: zero ticks means machine state
                # is frozen, so every following cycle repeats this one
                # exactly until the earliest timed event.  Jump there,
                # applying the per-cycle accounting arithmetically.
                wake = memory.next_event_cycle(now)
                hint = backend.next_event_cycle(now)
                if hint < wake:
                    wake = hint
                hint = engine.next_event_cycle(now)
                if hint < wake:
                    wake = hint
                hint = frontend.next_event_cycle(now)
                if hint < wake:
                    wake = hint
                # Replay the detector's arithmetic over the span: with
                # the ticks frozen, only the first snapshot after `now`
                # can still record progress; the detector then fires a
                # fixed distance past the last recorded progress.
                ticks = clock.ticks
                if ticks != last_ticks:
                    first_snapshot = (now | mask) + 1
                    fire_base = first_snapshot
                else:
                    first_snapshot = None
                    fire_base = last_progress_at
                fire = -(-(fire_base + deadlock_cycles + 1) // interval) * interval
                if fire <= wake and fire <= max_cycles:
                    target, fate = fire, _FATE_DEADLOCK
                elif max_cycles <= wake:
                    target, fate = max_cycles, _FATE_TIMEOUT
                else:
                    target, fate = wake, None
                if target > now:
                    span = target - now
                    stall_reason = (
                        backend.last_stall_reason if not backend.halted else None
                    )
                    if stall_reason is not None:
                        backend.stalls[stall_reason] += span
                    conflict = mem_stats.acceptance_conflicts > conflicts_before
                    if conflict:
                        mem_stats.acceptance_conflicts += span
                    if external.in_flight:
                        external.busy_cycles += span
                    if traced and (stall_reason is not None or conflict):
                        # Re-emit the probe cycle's per-idle-cycle events
                        # for every skipped cycle, in intra-cycle order
                        # (the stall during backend.step, the conflict
                        # during memory.end_cycle).
                        candidates = memory.last_conflict_candidates
                        emit = tracer.emit
                        for cycle in range(now, target):
                            tracer.cycle = cycle
                            if stall_reason is not None:
                                emit("backend", "stall", reason=stall_reason)
                            if conflict:
                                emit("mem", "conflict", candidates=candidates)
                    if first_snapshot is not None and first_snapshot <= target:
                        last_ticks = ticks
                        last_progress_at = first_snapshot
                    now = target
                    if fate is _FATE_DEADLOCK:
                        raise self._deadlock(now, last_progress_at, fast_path=True)
                    if fate is _FATE_TIMEOUT:
                        raise self._timeout(now, fast_path=True)
        return self._collect(now)

    # ------------------------------------------------------------------
    def _deadlock(
        self, now: int, last_progress_at: int, fast_path: bool
    ) -> DeadlockError:
        engine = self.engine
        backend = self.backend
        frontend = self.frontend
        error = DeadlockError(
            f"no progress since cycle {last_progress_at} "
            f"(detected at cycle {now}, "
            f"{'idle-skip' if fast_path else 'reference'} engine; "
            f"{backend.instructions} instructions issued; "
            f"stalls={backend.stalls}; LAQ={len(engine.laq)} "
            f"LDQ={len(engine.ldq)} SAQ={len(engine.saq)} "
            f"SDQ={len(engine.sdq)}; "
            f"frontend {type(frontend).__name__}: "
            f"{frontend.describe_state()})"
        )
        error.cycle = now
        error.fast_path = fast_path
        return error

    def _timeout(self, now: int, fast_path: bool) -> SimulationTimeout:
        backend = self.backend
        error = SimulationTimeout(
            f"no completion after {self.config.max_cycles} cycles "
            f"(at cycle {now}, "
            f"{'idle-skip' if fast_path else 'reference'} engine; "
            f"{backend.instructions} instructions issued; "
            f"halted={backend.halted})"
        )
        error.cycle = now
        error.fast_path = fast_path
        return error

    def _collect(self, cycles: int) -> SimulationResult:
        engine = self.engine
        queues = {
            queue.name: QueueSnapshot(
                name=queue.name,
                pushes=queue.total_pushes,
                pops=queue.total_pops,
                max_occupancy=queue.max_occupancy,
            )
            for queue in (engine.laq, engine.ldq, engine.saq, engine.sdq)
        }
        result = SimulationResult(
            config=self.config,
            cycles=cycles,
            instructions=self.backend.instructions,
            halted=self.backend.halted,
            cache=self.cache.stats,
            fetch=self.frontend.stats,
            memory=self.memory.stats,
            stalls=dict(self.backend.stalls),
            queues=queues,
            branches=self.backend.branches,
            branches_taken=self.backend.branches_taken,
            loads=engine.stats.loads_issued,
            stores=engine.stats.stores_issued,
            fpu_operations=engine.fpu_core.operations_started,
            ordering_hazards=engine.stats.ordering_hazards,
        )
        metrics = self.tracer.metrics()
        if metrics is not None:
            result.trace_metrics = metrics.to_dict()
        return result


def simulate(
    config: MachineConfig,
    program: Program,
    tracer: Tracer | None = None,
    skip: bool | None = None,
    replay: bool | None = None,
) -> SimulationResult:
    """Build a machine for ``config`` and run ``program`` to completion.

    ``skip`` selects the idle-cycle-skipping scheduler (default: on,
    unless ``REPRO_NO_SKIP`` is set) and ``replay`` the steady-state
    loop-replay engine (default: on, unless ``REPRO_NO_REPLAY`` is
    set); results are identical either way.
    """
    return Simulator(config, program, tracer=tracer, skip=skip, replay=replay).run()


def simulate_traced(
    config: MachineConfig,
    program: Program,
    trace_path=None,
    *,
    sinks: tuple[TraceSink, ...] = (),
    metrics: bool = True,
    skip: bool | None = None,
    replay: bool | None = None,
) -> SimulationResult:
    """Run ``program`` with tracing enabled.

    ``trace_path`` (optional) receives the JSONL event stream; with
    ``metrics`` (the default) a :class:`MetricsSink` aggregates the same
    stream and the result's :attr:`~SimulationResult.trace_metrics`
    carries its counters.  Extra ``sinks`` are attached as given.  All
    sinks are closed when the run finishes (or fails).  ``skip`` selects
    the idle-cycle-skipping scheduler (default: on, unless
    ``REPRO_NO_SKIP`` is set) and ``replay`` the steady-state
    loop-replay engine (default: on, unless ``REPRO_NO_REPLAY`` is
    set); the event stream is identical either way.
    """
    tracer = Tracer()
    if trace_path is not None:
        tracer.attach(JsonLinesSink(trace_path))
    if metrics:
        tracer.attach(MetricsSink())
    for sink in sinks:
        tracer.attach(sink)
    try:
        return Simulator(
            config, program, tracer=tracer, skip=skip, replay=replay
        ).run()
    finally:
        tracer.close()
