"""The cycle-level simulator.

Builds the machine described by a :class:`~repro.core.config.MachineConfig`
around an assembled :class:`~repro.asm.program.Program` and runs it to
completion.  Per cycle, components are evaluated in this order:

1. ``memory.begin_cycle`` — the input bus delivers at most one transfer
   (load data → the data engine, instruction bytes → cache/IQB);
2. ``engine.update`` — arrived load data enters the LDQ in program order;
3. ``frontend.update`` — pre-issue frontend work (prefetch promotion,
   moving arrived instruction bytes toward the decoder);
4. ``backend.step`` — at most one instruction issues;
5. ``frontend.post_issue`` — refills/transfers are staged for next cycle;
6. ``memory.end_cycle`` — the output bus accepts at most one new request
   under the configured memory-interface priority.

The run ends when the program has executed HALT **and** every queue and
in-flight transaction has drained; the cycle count at that point is the
paper's performance metric.
"""

from __future__ import annotations

import itertools

from ..asm.program import Program
from ..cpu.backend import Backend
from ..cpu.data_engine import DataQueueEngine
from ..frontend.conventional import ConventionalFetchUnit
from ..frontend.icache import InstructionCache
from ..frontend.pipe_fetch import PipeFetchUnit
from ..frontend.tib import TibFetchUnit
from ..memory.system import MemorySystem
from .config import FetchStrategy, MachineConfig
from .results import QueueSnapshot, SimulationResult
from .trace import NULL_TRACER, JsonLinesSink, MetricsSink, TraceSink, Tracer

__all__ = [
    "DeadlockError",
    "SimulationTimeout",
    "Simulator",
    "simulate",
    "simulate_traced",
]


class SimulationTimeout(RuntimeError):
    """The run exceeded ``config.max_cycles`` without draining."""


class DeadlockError(RuntimeError):
    """No instruction issued and no bus activity for a long stretch.

    This catches programs that violate the architectural queue
    discipline — most commonly keeping more unconsumed loads in flight
    than the LDQ can hold, which wedges any decoupled-queue machine
    (the LAQ cannot drain because the LDQ is full, and the LDQ cannot
    drain because issue is blocked on the full LAQ).
    """


class Simulator:
    """One machine instance, ready to :meth:`run` one program."""

    def __init__(
        self,
        config: MachineConfig,
        program: Program,
        tracer: Tracer | None = None,
    ):
        if program.fmt is not config.instruction_format:
            raise ValueError(
                f"program was assembled for {program.fmt.value} but the "
                f"machine is configured for {config.instruction_format.value}"
            )
        self.config = config
        self.program = program
        self.tracer = tracer if tracer is not None else NULL_TRACER
        tracer = self.tracer

        seq = itertools.count()
        next_seq = lambda: next(seq)  # noqa: E731 - tiny shared counter

        self.cache = InstructionCache(
            size=config.icache_size,
            line_size=config.line_size,
            sub_block_size=config.sub_block_size,
            associativity=config.cache_associativity,
            tracer=tracer,
        )
        self.memory = MemorySystem(
            access_time=config.memory_access_time,
            pipelined=config.memory_pipelined,
            input_bus_width=config.input_bus_width,
            priority=config.priority,
            fpu_latencies=config.fpu_latencies,
            tracer=tracer,
        )
        # All frontends share the program's predecoded-instruction
        # table, so the decode work for a hot loop is paid once per
        # program image rather than once per fetch.
        predecode = program.predecoded
        if config.fetch_strategy is FetchStrategy.PIPE:
            self.frontend = PipeFetchUnit(
                image=program.image,
                fmt=program.fmt,
                cache=self.cache,
                iq_size=config.iq_size,
                iqb_size=config.iqb_size,
                entry_point=program.entry_point,
                next_seq=next_seq,
                true_prefetch=config.true_prefetch,
                predecode=predecode,
                tracer=tracer,
            )
        elif config.fetch_strategy is FetchStrategy.TIB:
            self.frontend = TibFetchUnit(
                image=program.image,
                fmt=program.fmt,
                input_bus_width=config.input_bus_width,
                entry_point=program.entry_point,
                next_seq=next_seq,
                tib_entries=config.tib_entries,
                tib_entry_bytes=config.tib_entry_bytes,
                stream_buffer_bytes=config.stream_buffer_bytes,
                predecode=predecode,
                tracer=tracer,
            )
        else:
            self.frontend = ConventionalFetchUnit(
                image=program.image,
                fmt=program.fmt,
                cache=self.cache,
                input_bus_width=config.input_bus_width,
                entry_point=program.entry_point,
                next_seq=next_seq,
                prefetch_policy=config.prefetch_policy,
                predecode=predecode,
                tracer=tracer,
            )
        self.engine = DataQueueEngine(
            program=program,
            next_seq=next_seq,
            laq_capacity=config.laq_capacity,
            ldq_capacity=config.ldq_capacity,
            saq_capacity=config.saq_capacity,
            sdq_capacity=config.sdq_capacity,
            tracer=tracer,
        )
        self.backend = Backend(
            frontend=self.frontend,
            engine=self.engine,
            branch_resolution_latency=config.branch_resolution_latency,
            tracer=tracer,
        )
        # Arbitration polls sources in registration order; order is
        # irrelevant because priority is decided per request.
        self.memory.register_source(self.frontend)
        self.memory.register_source(self.engine)

    # ------------------------------------------------------------------
    #: cycles of zero progress (no issue, no bus traffic) before the run
    #: is declared deadlocked.  Far above any legitimate stall.
    DEADLOCK_CYCLES = 20_000

    def run(self) -> SimulationResult:
        now = 0
        max_cycles = self.config.max_cycles
        memory = self.memory
        engine = self.engine
        frontend = self.frontend
        backend = self.backend
        tracer = self.tracer
        traced = tracer.enabled
        if traced:
            tracer.cycle = 0
            tracer.emit(
                "sim",
                "begin",
                strategy=self.config.fetch_strategy.value,
                config=self.config.describe(),
            )
        last_progress_sig: tuple = ()
        last_progress_at = 0
        while True:
            if traced:
                tracer.cycle = now
            memory.begin_cycle(now)
            engine.update(now)
            frontend.update(now)
            backend.step(now)
            if backend.halted:
                frontend.halt()
            frontend.post_issue(now)
            memory.end_cycle(now)
            now += 1
            if backend.halted and engine.drained and memory.drained:
                if traced:
                    tracer.cycle = now
                    tracer.emit(
                        "sim",
                        "end",
                        cycles=now,
                        instructions=backend.instructions,
                        halted=backend.halted,
                    )
                break
            signature = (
                backend.instructions,
                memory.stats.output_bus_busy_cycles,
                memory.stats.input_bus_busy_cycles,
                frontend.progress_signature(),
                engine.laq.total_pushes,
                engine.ldq.total_pops,
                engine.saq.total_pops,
                engine.sdq.total_pops,
            )
            if signature != last_progress_sig:
                last_progress_sig = signature
                last_progress_at = now
            elif now - last_progress_at > self.DEADLOCK_CYCLES:
                raise DeadlockError(
                    f"no progress since cycle {last_progress_at} "
                    f"({backend.instructions} instructions issued; "
                    f"stalls={backend.stalls}; LAQ={len(engine.laq)} "
                    f"LDQ={len(engine.ldq)} SAQ={len(engine.saq)} "
                    f"SDQ={len(engine.sdq)}; "
                    f"frontend {type(frontend).__name__}: "
                    f"{frontend.describe_state()})"
                )
            if now >= max_cycles:
                raise SimulationTimeout(
                    f"no completion after {max_cycles} cycles "
                    f"({backend.instructions} instructions issued; "
                    f"halted={backend.halted})"
                )
        return self._collect(now)

    def _collect(self, cycles: int) -> SimulationResult:
        engine = self.engine
        queues = {
            queue.name: QueueSnapshot(
                name=queue.name,
                pushes=queue.total_pushes,
                pops=queue.total_pops,
                max_occupancy=queue.max_occupancy,
            )
            for queue in (engine.laq, engine.ldq, engine.saq, engine.sdq)
        }
        result = SimulationResult(
            config=self.config,
            cycles=cycles,
            instructions=self.backend.instructions,
            halted=self.backend.halted,
            cache=self.cache.stats,
            fetch=self.frontend.stats,
            memory=self.memory.stats,
            stalls=dict(self.backend.stalls),
            queues=queues,
            branches=self.backend.branches,
            branches_taken=self.backend.branches_taken,
            loads=engine.stats.loads_issued,
            stores=engine.stats.stores_issued,
            fpu_operations=engine.fpu_core.operations_started,
            ordering_hazards=engine.stats.ordering_hazards,
        )
        metrics = self.tracer.metrics()
        if metrics is not None:
            result.trace_metrics = metrics.to_dict()
        return result


def simulate(
    config: MachineConfig,
    program: Program,
    tracer: Tracer | None = None,
) -> SimulationResult:
    """Build a machine for ``config`` and run ``program`` to completion."""
    return Simulator(config, program, tracer=tracer).run()


def simulate_traced(
    config: MachineConfig,
    program: Program,
    trace_path=None,
    *,
    sinks: tuple[TraceSink, ...] = (),
    metrics: bool = True,
) -> SimulationResult:
    """Run ``program`` with tracing enabled.

    ``trace_path`` (optional) receives the JSONL event stream; with
    ``metrics`` (the default) a :class:`MetricsSink` aggregates the same
    stream and the result's :attr:`~SimulationResult.trace_metrics`
    carries its counters.  Extra ``sinks`` are attached as given.  All
    sinks are closed when the run finishes (or fails).
    """
    tracer = Tracer()
    if trace_path is not None:
        tracer.attach(JsonLinesSink(trace_path))
    if metrics:
        tracer.attach(MetricsSink())
    for sink in sinks:
        tracer.attach(sink)
    try:
        return Simulator(config, program, tracer=tracer).run()
    finally:
        tracer.close()
