"""Idle-cycle scheduling primitives: the progress clock and event hints.

The cycle-level simulator spends most of its wall-clock time simulating
cycles in which *nothing changes* — the machine waiting out
``memory_access_time``, an FPU latency, or a branch-resolution delay.
Two small pieces let :meth:`repro.core.simulator.Simulator.run` jump
over such spans without changing a single reported number:

* :class:`ProgressClock` — a shared monotonic counter every component
  bumps on each *real* state mutation (a queue push/pop, a bus
  transfer, an instruction issue, a cache fill, ...).  If an executed
  cycle ends with the same tick count it started with, machine state is
  provably frozen: every later cycle replays it exactly until a *timed*
  event fires.  The tick count doubles as the deadlock detector's
  progress signature, replacing the 8-tuple the old loop allocated
  every cycle.

* ``next_event_cycle(now)`` hints — each component reports the earliest
  future cycle at which it can make progress *on its own*, or
  :data:`IDLE` when only another component's activity can wake it.
  Timed events exist in exactly three places: external-memory
  ``ready_at``, FPU operation completion, and pending-branch
  ``resolve_at``; everything else (frontends, the data engine, the
  cache) is event-woken.  Hints may be conservative (an early wake
  costs one probe cycle and nothing else); a *late* hint would change
  results, which is why the scheduler only skips after observing a
  zero-tick probe cycle.

``REPRO_NO_SKIP=1`` (or ``Simulator(..., skip=False)``) keeps the
reference cycle-by-cycle loop for differential testing.
"""

from __future__ import annotations

import os

__all__ = [
    "ENGINE_REVISION",
    "ENGINE_RUNGS",
    "IDLE",
    "NO_AFFINITY_ENV",
    "NO_COMPILED_ENV",
    "NO_DISK_CODEGEN_ENV",
    "NO_INLINE_FRONTEND_ENV",
    "NO_REPLAY_ENV",
    "NO_SKIP_ENV",
    "NO_SPECIALIZE_DISPATCH_ENV",
    "ProgressClock",
    "SeqCounter",
    "affinity_enabled_default",
    "compiled_enabled_default",
    "disk_codegen_enabled_default",
    "inline_frontend_enabled_default",
    "replay_enabled_default",
    "rung_kwargs",
    "skip_enabled_default",
    "specialize_dispatch_enabled_default",
]

#: Sentinel returned by ``next_event_cycle`` hints: no self-scheduled
#: event; only another component's progress can wake this one.
IDLE: int = 1 << 62

#: Folded into simulation-cache keys so blobs produced by a different
#: scheduling engine never satisfy a lookup.  Bump on any change to the
#: skip scheduler's, the replay engine's, or the compiled step-kernel
#: generator's accounting.
ENGINE_REVISION = "skip-1+replay-1+compiled-2"

#: Environment variable forcing the reference (no-skip) loop.
NO_SKIP_ENV = "REPRO_NO_SKIP"

#: Environment variable disabling steady-state loop replay.
NO_REPLAY_ENV = "REPRO_NO_REPLAY"

#: Environment variable disabling the compiled step-kernel engine.
NO_COMPILED_ENV = "REPRO_NO_COMPILED"

#: Environment variable disabling frontend state-machine inlining inside
#: compiled kernels (the kernel falls back to bound-method phase calls).
NO_INLINE_FRONTEND_ENV = "REPRO_NO_INLINE_FRONTEND"

#: Environment variable disabling program-specialized instruction
#: dispatch inside compiled kernels (falls back to the generic executor).
NO_SPECIALIZE_DISPATCH_ENV = "REPRO_NO_SPECIALIZE_DISPATCH"

#: Environment variable disabling the persistent on-disk codegen
#: artifact store (kernel sources and dispatch bundles under
#: ``.repro_cache/codegen/``); codegen then stays purely in-process.
NO_DISK_CODEGEN_ENV = "REPRO_NO_DISK_CODEGEN"

#: Environment variable disabling config-affinity batched scheduling of
#: sweep points; every point then travels as its own pool task, exactly
#: as before the orchestration layer existed.
NO_AFFINITY_ENV = "REPRO_NO_AFFINITY"


#: The engine-degradation ladder, fastest first.  Every rung produces
#: byte-identical results (the differential suite pins this), so the
#: resilience layer may re-run a point on a slower rung after a
#: fast-path failure without changing a single reported number.
ENGINE_RUNGS = ("compiled", "replay", "idle-skip", "reference")

#: ``Simulator`` keyword arguments selecting each rung.  The top rung
#: defers to the session defaults, so the ``REPRO_NO_SKIP`` /
#: ``REPRO_NO_REPLAY`` / ``REPRO_NO_COMPILED`` escape hatches stay
#: authoritative; lower rungs only ever *disable* fast paths, never
#: force one back on.
_RUNG_KWARGS: dict[str, dict] = {
    "compiled": {"skip": None, "replay": None, "compiled": None},
    "replay": {"skip": None, "replay": None, "compiled": False},
    "idle-skip": {"skip": None, "replay": False, "compiled": False},
    "reference": {"skip": False, "replay": False, "compiled": False},
}


def rung_kwargs(rung: str) -> dict:
    """``Simulator(..., **rung_kwargs(rung))`` arguments for one rung."""
    try:
        return dict(_RUNG_KWARGS[rung])
    except KeyError:
        raise ValueError(
            f"unknown engine rung {rung!r}; expected one of {ENGINE_RUNGS}"
        ) from None


def skip_enabled_default() -> bool:
    """Idle-cycle skipping defaults to on unless ``REPRO_NO_SKIP`` is set."""
    return os.environ.get(NO_SKIP_ENV, "").strip().lower() not in (
        "1",
        "true",
        "yes",
    )


def replay_enabled_default() -> bool:
    """Loop replay defaults to on unless ``REPRO_NO_REPLAY`` is set."""
    return os.environ.get(NO_REPLAY_ENV, "").strip().lower() not in (
        "1",
        "true",
        "yes",
    )


def compiled_enabled_default() -> bool:
    """Compiled kernels default to on unless ``REPRO_NO_COMPILED`` is set."""
    return os.environ.get(NO_COMPILED_ENV, "").strip().lower() not in (
        "1",
        "true",
        "yes",
    )


def inline_frontend_enabled_default() -> bool:
    """Frontend inlining defaults to on unless ``REPRO_NO_INLINE_FRONTEND``."""
    return os.environ.get(NO_INLINE_FRONTEND_ENV, "").strip().lower() not in (
        "1",
        "true",
        "yes",
    )


def specialize_dispatch_enabled_default() -> bool:
    """Dispatch specialization is on unless ``REPRO_NO_SPECIALIZE_DISPATCH``."""
    return os.environ.get(NO_SPECIALIZE_DISPATCH_ENV, "").strip().lower() not in (
        "1",
        "true",
        "yes",
    )


def disk_codegen_enabled_default() -> bool:
    """Disk codegen artifacts are on unless ``REPRO_NO_DISK_CODEGEN``."""
    return os.environ.get(NO_DISK_CODEGEN_ENV, "").strip().lower() not in (
        "1",
        "true",
        "yes",
    )


def affinity_enabled_default() -> bool:
    """Affinity-batched scheduling is on unless ``REPRO_NO_AFFINITY``."""
    return os.environ.get(NO_AFFINITY_ENV, "").strip().lower() not in (
        "1",
        "true",
        "yes",
    )


class ProgressClock:
    """Monotonic counter of real state mutations, shared machine-wide.

    Components bump :attr:`ticks` directly (``clock.ticks += 1``) on the
    hot path; only the *equality* of two readings is ever interpreted,
    so over-ticking (several bumps in one cycle) is harmless.
    """

    __slots__ = ("ticks",)

    def __init__(self) -> None:
        self.ticks = 0

    def tick(self) -> None:
        self.ticks += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ProgressClock ticks={self.ticks}>"


class SeqCounter:
    """The machine-wide request/queue-entry sequence allocator.

    Functionally ``itertools.count()``, but with the current position
    exposed as :attr:`value` so the replay engine can fold a whole loop
    iteration's allocations into one arithmetic advance (and the state
    signature can express live sequence numbers relative to it).
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def __call__(self) -> int:
        value = self.value
        self.value = value + 1
        return value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SeqCounter value={self.value}>"
