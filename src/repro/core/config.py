"""Simulation configuration.

:class:`MachineConfig` carries every parameter the paper varies
(section 5, parameters 1–8) plus the modelling knobs the paper states as
fixed assumptions:

1. instruction format — :attr:`MachineConfig.instruction_format`;
2. instruction cache size — :attr:`MachineConfig.icache_size`;
3. cache line size — :attr:`MachineConfig.line_size`;
4. external memory speed — :attr:`MachineConfig.memory_access_time`;
5. input bus width — :attr:`MachineConfig.input_bus_width`;
6. pipelined external memory — :attr:`MachineConfig.memory_pipelined`;
7. instruction queue size — :attr:`MachineConfig.iq_size`;
8. instruction queue buffer size — :attr:`MachineConfig.iqb_size`;
plus the data-vs-instruction priority at the memory interface
(:attr:`MachineConfig.priority`) and the true-prefetch policy toggle
(:attr:`MachineConfig.true_prefetch`), both discussed in section 6.

:data:`PIPE_CONFIGURATIONS` holds the four line/IQ/IQB combinations of
the paper's Table II.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields, replace

from ..frontend.conventional import PrefetchPolicy
from ..isa.encoding import InstructionFormat
from ..memory.fpu import FpuLatencies
from ..memory.requests import RequestPriority

__all__ = [
    "FetchStrategy",
    "PrefetchPolicy",
    "MachineConfig",
    "PipeConfiguration",
    "PIPE_CONFIGURATIONS",
    "PAPER_CACHE_SIZES",
]


class FetchStrategy(enum.Enum):
    PIPE = "pipe"
    CONVENTIONAL = "conventional"
    TIB = "tib"  #: target instruction buffer, no cache (section 2.1)


@dataclass(frozen=True)
class PipeConfiguration:
    """One row of the paper's Table II (named after its IQ-IQB sizes)."""

    name: str
    line_size: int
    iq_size: int
    iqb_size: int

    def as_kwargs(self) -> dict[str, int]:
        return {
            "line_size": self.line_size,
            "iq_size": self.iq_size,
            "iqb_size": self.iqb_size,
        }


#: Table II — "Simulated IQ and IQB configurations".
PIPE_CONFIGURATIONS: dict[str, PipeConfiguration] = {
    "8-8": PipeConfiguration("8-8", line_size=8, iq_size=8, iqb_size=8),
    "16-16": PipeConfiguration("16-16", line_size=16, iq_size=16, iqb_size=16),
    "16-32": PipeConfiguration("16-32", line_size=32, iq_size=16, iqb_size=32),
    "32-32": PipeConfiguration("32-32", line_size=32, iq_size=32, iqb_size=32),
}

#: Cache sizes (bytes) swept along the x-axis of Figures 4–6.
PAPER_CACHE_SIZES: tuple[int, ...] = (32, 64, 128, 256, 512)


@dataclass(frozen=True)
class MachineConfig:
    """Full parameterisation of one simulation run.

    Defaults describe the headline PIPE machine: configuration 16-16 with
    the 128-byte cache of the fabricated chip, an 8-byte input bus, 6-cycle
    non-pipelined memory, the fixed 32-bit instruction format, and
    instruction priority at the memory interface (all per sections 3.2/6).
    """

    fetch_strategy: FetchStrategy = FetchStrategy.PIPE
    icache_size: int = 128
    line_size: int = 16
    iq_size: int = 16
    iqb_size: int = 16
    sub_block_size: int = 4
    input_bus_width: int = 8
    memory_access_time: int = 6
    memory_pipelined: bool = False
    instruction_format: InstructionFormat = InstructionFormat.FIXED32
    priority: RequestPriority = RequestPriority.INSTRUCTION_FIRST
    true_prefetch: bool = True
    #: conventional frontend only: which of Hill's prefetch strategies
    prefetch_policy: PrefetchPolicy = PrefetchPolicy.ALWAYS
    #: cache associativity (1 = direct mapped, the paper's organisation)
    cache_associativity: int = 1
    #: TIB frontend only: number of branch-target entries and their size
    tib_entries: int = 4
    tib_entry_bytes: int = 16
    stream_buffer_bytes: int = 32
    branch_resolution_latency: int = 2
    laq_capacity: int = 8
    ldq_capacity: int = 8
    saq_capacity: int = 8
    sdq_capacity: int = 8
    fpu_latencies: FpuLatencies = field(default_factory=FpuLatencies)
    max_cycles: int = 500_000_000

    def __post_init__(self) -> None:
        if self.icache_size <= 0 or self.icache_size % self.line_size != 0:
            raise ValueError(
                f"icache_size {self.icache_size} must be a positive multiple "
                f"of line_size {self.line_size}"
            )
        if self.line_size % self.sub_block_size != 0:
            raise ValueError(
                f"line_size {self.line_size} must be a multiple of "
                f"sub_block_size {self.sub_block_size}"
            )
        if self.sub_block_size % 2 != 0:
            raise ValueError("sub_block_size must cover whole parcels")
        if self.input_bus_width < 4 or self.input_bus_width % 4 != 0:
            raise ValueError("input_bus_width must be a positive multiple of 4")
        if self.memory_access_time < 1:
            raise ValueError("memory_access_time must be at least 1 cycle")
        if self.fetch_strategy is FetchStrategy.PIPE:
            if self.iqb_size < self.line_size:
                raise ValueError(
                    f"iqb_size {self.iqb_size} must hold a full line "
                    f"({self.line_size} bytes)"
                )
            if self.iq_size < 4:
                raise ValueError("iq_size must hold at least one instruction")
        if self.fetch_strategy is FetchStrategy.TIB:
            if self.tib_entries < 1 or self.tib_entry_bytes < 4:
                raise ValueError("TIB needs at least one entry of one instruction")
            if self.stream_buffer_bytes < 2 * self.input_bus_width:
                raise ValueError("stream buffer must hold two bus transfers")
        if self.cache_associativity < 1:
            raise ValueError("cache_associativity must be >= 1")
        if self.icache_size % (self.line_size * self.cache_associativity) != 0:
            raise ValueError(
                "icache_size must be a multiple of line_size x associativity"
            )
        if self.branch_resolution_latency < 1:
            raise ValueError("branch_resolution_latency must be >= 1")
        for name in ("laq_capacity", "ldq_capacity", "saq_capacity", "sdq_capacity"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def pipe(
        cls,
        configuration: PipeConfiguration | str = "16-16",
        icache_size: int = 128,
        **overrides,
    ) -> "MachineConfig":
        """A PIPE machine using one of Table II's IQ/IQB configurations."""
        if isinstance(configuration, str):
            configuration = PIPE_CONFIGURATIONS[configuration]
        return cls(
            fetch_strategy=FetchStrategy.PIPE,
            icache_size=icache_size,
            **configuration.as_kwargs(),
            **overrides,
        )

    @classmethod
    def conventional(cls, icache_size: int = 128, **overrides) -> "MachineConfig":
        """Hill's conventional always-prefetch cache.

        Uses the priority order of the conventional model (data fetches
        over instruction fetches over prefetches) unless overridden.
        """
        overrides.setdefault("priority", RequestPriority.DATA_FIRST)
        overrides.setdefault("line_size", 16)
        return cls(
            fetch_strategy=FetchStrategy.CONVENTIONAL,
            icache_size=icache_size,
            **overrides,
        )

    @classmethod
    def tib(
        cls,
        tib_entries: int = 4,
        tib_entry_bytes: int = 16,
        **overrides,
    ) -> "MachineConfig":
        """A cacheless Target Instruction Buffer machine (section 2.1).

        Uses data-first priority like the other non-queue design (the
        stream engine generates heavy off-chip traffic by construction).
        """
        overrides.setdefault("priority", RequestPriority.DATA_FIRST)
        return cls(
            fetch_strategy=FetchStrategy.TIB,
            tib_entries=tib_entries,
            tib_entry_bytes=tib_entry_bytes,
            **overrides,
        )

    def with_overrides(self, **overrides) -> "MachineConfig":
        """A copy with some fields replaced (configs are immutable)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Serialization (simulation-cache keys and persisted results)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe dict carrying every field, in declaration order.

        Enums serialize as their ``.value``; :class:`FpuLatencies` as a
        nested dict.  :meth:`from_dict` round-trips exactly, and the
        simulation cache fingerprints the canonical JSON of this dict —
        so *any* field change changes the fingerprint.
        """
        out: dict = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, enum.Enum):
                value = value.value
            elif isinstance(value, FpuLatencies):
                value = {
                    "add": value.add,
                    "sub": value.sub,
                    "mul": value.mul,
                    "div": value.div,
                }
            out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MachineConfig":
        """Rebuild a config serialized by :meth:`to_dict`.

        Missing fields take the dataclass defaults, so hand-written
        partial dicts (e.g. a service request body of just
        ``{"fetch_strategy": "conventional", "icache_size": 128}``)
        build the paper's baseline machine with those overrides; an
        *unknown* key is still an error.
        """
        kwargs = dict(data)
        if "fetch_strategy" in kwargs:
            kwargs["fetch_strategy"] = FetchStrategy(kwargs["fetch_strategy"])
        if "instruction_format" in kwargs:
            kwargs["instruction_format"] = InstructionFormat(
                kwargs["instruction_format"]
            )
        if "priority" in kwargs:
            kwargs["priority"] = RequestPriority(kwargs["priority"])
        if "prefetch_policy" in kwargs:
            kwargs["prefetch_policy"] = PrefetchPolicy(kwargs["prefetch_policy"])
        if "fpu_latencies" in kwargs:
            kwargs["fpu_latencies"] = FpuLatencies(**kwargs["fpu_latencies"])
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line human-readable summary used in experiment reports."""
        if self.fetch_strategy is FetchStrategy.PIPE:
            shape = f"PIPE {self.iq_size}-{self.iqb_size} line={self.line_size}"
        elif self.fetch_strategy is FetchStrategy.TIB:
            shape = f"TIB {self.tib_entries}x{self.tib_entry_bytes}B"
        else:
            shape = f"conventional line={self.line_size}"
        memory = (
            f"T={self.memory_access_time}"
            f"{'p' if self.memory_pipelined else ''} bus={self.input_bus_width}B"
        )
        return f"{shape} cache={self.icache_size}B {memory}"
