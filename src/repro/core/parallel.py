"""Parallel fan-out of independent simulation points.

Every point of a cache-size sweep — and most experiment loops — is an
independent, deterministic ``simulate(config, program)`` call, so they
parallelize trivially across a :class:`~concurrent.futures.ProcessPoolExecutor`
(processes, not threads: the simulator is pure Python and CPU-bound).

Job-count resolution, in priority order: an explicit ``jobs`` argument
(the ``--jobs`` CLI flag), the ``REPRO_JOBS`` environment variable,
``os.cpu_count()``.  ``jobs=1`` — and any platform where worker
processes cannot be spawned — degrades gracefully to the serial path.
Results always come back in submission order, so parallel runs are
bit-identical to serial ones.

The benchmark program is shipped to each worker once (pool initializer)
rather than once per point; workers then receive only the small
:class:`MachineConfig` per task.
"""

from __future__ import annotations

import os
import tempfile
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from pickle import PicklingError
from typing import Callable, Generic, Iterable, Sequence, TypeVar

from ..asm.program import Program
from .config import MachineConfig
from .results import SimulationResult
from .scheduler import affinity_enabled_default

__all__ = [
    "JOBS_ENV",
    "ItemOutcome",
    "affinity_batches",
    "config_affinity_key",
    "parallel_map",
    "parallel_map_outcomes",
    "resolve_jobs",
    "simulate_many",
    "simulate_many_traced",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit arg > ``REPRO_JOBS`` > cpu count."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(JOBS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(f"ignoring non-integer {JOBS_ENV}={env!r}")
    return os.cpu_count() or 1


def _serial_map(fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    initializer: Callable | None = None,
    initargs: tuple = (),
) -> list[R]:
    """``[fn(item) for item in items]`` across worker processes.

    Deterministic: results are returned in input order regardless of
    completion order.  Falls back to the serial path when only one job
    is requested, there is at most one item, or the platform cannot
    spawn workers (missing fork support, pickling failure, sandboxed
    environments); exceptions raised by ``fn`` itself propagate
    unchanged in both modes.
    """
    items = list(items)
    jobs = min(resolve_jobs(jobs), len(items))
    if jobs <= 1:
        if initializer is not None:
            initializer(*initargs)
        return _serial_map(fn, items)
    try:
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=initializer, initargs=initargs
        ) as pool:
            return list(pool.map(fn, items))
    # pickle signals an unpicklable callable as AttributeError/TypeError
    # depending on the object; a genuine fn error re-raises identically
    # from the serial retry, so the broad net cannot change semantics.
    except (
        BrokenExecutor,
        PicklingError,
        OSError,
        ImportError,
        AttributeError,
        TypeError,
    ) as exc:
        warnings.warn(
            f"parallel execution unavailable ({type(exc).__name__}: {exc}); "
            "falling back to serial"
        )
        if initializer is not None:
            initializer(*initargs)
        return _serial_map(fn, items)


@dataclass
class ItemOutcome(Generic[R]):
    """One item's result *or* error from :func:`parallel_map_outcomes`."""

    value: R | None = None
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> R:
        """The value, re-raising the item's error if it failed."""
        if self.error is not None:
            raise self.error
        return self.value  # type: ignore[return-value]


def parallel_map_outcomes(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    initializer: Callable | None = None,
    initargs: tuple = (),
) -> list[ItemOutcome[R]]:
    """:func:`parallel_map` with per-item error capture.

    One failed item no longer discards its completed siblings: every
    item gets an :class:`ItemOutcome` (in input order) carrying either
    its value or the exception it raised — including the
    ``BrokenProcessPool`` a crashed worker leaves behind, which lands
    only on the items that were in flight.  The supervisor layer
    (:mod:`repro.core.resilience`) builds its retry/requeue policy on
    exactly this contract.
    """
    items = list(items)
    jobs = min(resolve_jobs(jobs), len(items))

    def serial() -> list[ItemOutcome[R]]:
        outcomes: list[ItemOutcome[R]] = []
        for item in items:
            try:
                outcomes.append(ItemOutcome(value=fn(item)))
            except Exception as exc:  # noqa: BLE001 — per-item boundary
                outcomes.append(ItemOutcome(error=exc))
        return outcomes

    if jobs <= 1:
        if initializer is not None:
            initializer(*initargs)
        return serial()
    try:
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=initializer, initargs=initargs
        ) as pool:
            futures = [pool.submit(fn, item) for item in items]
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(ItemOutcome(value=future.result()))
                except (PicklingError, AttributeError, TypeError):
                    # An unpicklable fn fails asynchronously, on every
                    # item alike: that is pool trouble, not an item
                    # error — retry the whole list serially (a genuine
                    # fn error re-raises identically there).
                    raise
                except Exception as exc:  # noqa: BLE001
                    outcomes.append(ItemOutcome(error=exc))
            return outcomes
    except (PicklingError, OSError, ImportError, AttributeError, TypeError) as exc:
        # Pool machinery unavailable (sandbox, unpicklable fn): same
        # degradation as parallel_map, with per-item capture preserved.
        warnings.warn(
            f"parallel execution unavailable ({type(exc).__name__}: {exc}); "
            "falling back to serial"
        )
        if initializer is not None:
            initializer(*initargs)
        return serial()


# ----------------------------------------------------------------------
# Config-affinity batching: group sweep points by kernel family
# ----------------------------------------------------------------------
#: Ceiling on points per IPC batch, whatever the grid size: batches
#: bound the retry/timeout blast radius (a killed worker forfeits at
#: most one batch of work) and keep per-point fault injection precise.
MAX_AFFINITY_BATCH = 8


def config_affinity_key(config: MachineConfig) -> str:
    """The scheduling affinity key of one sweep point: its kernel family.

    Every config field except the ones that never reach the generated
    kernel text: ``icache_size``, ``memory_access_time``, and
    ``input_bus_width`` all parameterize runtime state (cache geometry
    and memory timing enter the kernel through its exec-time globals),
    so all sizes and memory speeds of one machine shape share codegen
    warmth — one generated source, one bytecode compile, one set of
    dispatch handlers.  Sweeps vary exactly these fields, which is what
    makes the grouping dense.
    """
    fields = config.to_dict()
    for name in ("icache_size", "memory_access_time", "input_bus_width"):
        fields.pop(name, None)
    return repr(sorted(fields.items()))


def affinity_batches(
    keys: Sequence[str],
    jobs: int,
    max_batch: int = MAX_AFFINITY_BATCH,
) -> list[list[int]]:
    """Deterministic point-index batches, one kernel family per batch.

    Indices are grouped by affinity key (first-occurrence order, so the
    plan is a pure function of the input), each group is chunked to at
    most ``min(max_batch, ceil(n/jobs))`` points — small enough that
    every worker gets work even when one family dominates — and chunks
    are emitted round-robin across families so distinct families run
    concurrently rather than queueing behind one another.  Order never
    affects *results*: callers merge per-point outcomes by index.
    """
    groups: dict[str, list[int]] = {}
    for index, key in enumerate(keys):
        groups.setdefault(key, []).append(index)
    jobs = max(1, jobs)
    cap = max(1, min(int(max_batch), -(-len(keys) // jobs)))
    chunked = [
        [indices[start : start + cap] for start in range(0, len(indices), cap)]
        for indices in groups.values()
    ]
    batches: list[list[int]] = []
    depth = 0
    while True:
        emitted = False
        for chunks in chunked:
            if depth < len(chunks):
                batches.append(chunks[depth])
                emitted = True
        if not emitted:
            return batches
        depth += 1


# ----------------------------------------------------------------------
# Simulation fan-out: the program lives in each worker, configs travel.
# ----------------------------------------------------------------------
_worker_program: Program | None = None


def _init_simulation_worker(program: Program) -> None:
    global _worker_program
    _worker_program = program


def _simulate_point(config: MachineConfig) -> SimulationResult:
    from .simulator import simulate

    assert _worker_program is not None, "worker initialized without a program"
    return simulate(config, _worker_program)


def _simulate_batch(
    task: Sequence[tuple[int, dict]],
) -> tuple[list[tuple[int, SimulationResult]], dict]:
    """Worker body: one affinity batch of ``(index, config fields)``.

    Configs travel as their compact ``to_dict`` descriptors (one small
    dict per point instead of a pickled object graph per IPC round).
    Returns the indexed results plus this worker's codegen-stat delta,
    tagged with its pid, so the parent can aggregate fleet-wide codegen
    visibility; freshly learned dispatch handlers are flushed to the
    persistent store at the batch boundary.
    """
    from .compiled import compile_stats, compile_stats_delta, flush_codegen_artifacts
    from .simulator import simulate

    assert _worker_program is not None, "worker initialized without a program"
    baseline = compile_stats()
    results = [
        (index, simulate(MachineConfig.from_dict(fields), _worker_program))
        for index, fields in task
    ]
    flush_codegen_artifacts()
    return results, compile_stats_delta(baseline)


def simulate_many(
    program: Program,
    configs: Sequence[MachineConfig],
    jobs: int | None = None,
) -> list[SimulationResult]:
    """Simulate every config against ``program``, fanned out over workers.

    Results are returned in ``configs`` order and are bit-identical to
    running the same list serially.  Multi-worker runs ship points in
    config-affinity batches (:func:`affinity_batches`) unless
    ``REPRO_NO_AFFINITY`` is set, in which case every point travels as
    its own pool task exactly as before.
    """
    configs = list(configs)
    jobs = min(resolve_jobs(jobs), len(configs))
    if jobs <= 1:
        from .simulator import simulate

        return [simulate(config, program) for config in configs]
    if not affinity_enabled_default():
        return parallel_map(
            _simulate_point,
            configs,
            jobs=jobs,
            initializer=_init_simulation_worker,
            initargs=(program,),
        )
    from .compiled import prime_codegen_artifacts, record_worker_stats

    batches = affinity_batches([config_affinity_key(c) for c in configs], jobs)
    tasks = [
        [(index, configs[index].to_dict()) for index in batch]
        for batch in batches
    ]
    # Fleet warmup: publish one kernel artifact per family (first point
    # of each batch) so no worker pays full codegen for a family the
    # parent could hand it.  No-op without the persistent store.
    prime_codegen_artifacts(
        program, [configs[batch[0]] for batch in batches]
    )
    results: list[SimulationResult | None] = [None] * len(configs)
    for indexed, delta in parallel_map(
        _simulate_batch,
        tasks,
        jobs=jobs,
        initializer=_init_simulation_worker,
        initargs=(program,),
    ):
        record_worker_stats(delta)
        for index, result in indexed:
            results[index] = result
    return results  # type: ignore[return-value] — every index was delivered


# ----------------------------------------------------------------------
# Service fan-out: one job-service point per pool task.
# ----------------------------------------------------------------------
def _service_point(task: tuple[str, dict, tuple]):
    """Worker body for one service point: injectors, then the ladder.

    ``task`` is ``(key, config fields, rungs)`` — the rung tuple is the
    service's circuit-breaker board's surviving ladder, so a rung whose
    breaker is open is never attempted in any worker.  Returns
    ``(result, served rung, fault events)`` exactly like the supervised
    sweep's worker body, so the parent can feed its breaker board and
    fault report from the same channel.
    """
    from .faults import maybe_hang_point, maybe_kill_worker
    from .resilience import FaultReport, ladder_simulate

    key, fields, rungs = task
    maybe_kill_worker(key)
    maybe_hang_point(key)
    assert _worker_program is not None, "worker initialized without a program"
    config = MachineConfig.from_dict(fields)
    report = FaultReport()
    result, rung = ladder_simulate(
        config,
        _worker_program,
        report=report,
        point=key[:12],
        rungs=tuple(rungs),
    )
    return result, rung, report.events


# ----------------------------------------------------------------------
# Traced fan-out: workers stream each point's events to a per-point part
# file; the parts are merged in submission order, so the combined trace
# is byte-identical to a serial traced run of the same config list.
# ----------------------------------------------------------------------
_worker_trace_dir: str | None = None


def _init_traced_worker(program: Program, trace_dir: str) -> None:
    global _worker_trace_dir
    _init_simulation_worker(program)
    _worker_trace_dir = trace_dir


def _trace_part_name(index: int) -> str:
    return f"part-{index:06d}.jsonl"


def _simulate_traced_point(task: tuple[int, MachineConfig]) -> SimulationResult:
    from .simulator import simulate_traced

    index, config = task
    assert _worker_program is not None, "worker initialized without a program"
    assert _worker_trace_dir is not None, "worker initialized without a trace dir"
    part = os.path.join(_worker_trace_dir, _trace_part_name(index))
    return simulate_traced(config, _worker_program, trace_path=part)


def simulate_many_traced(
    program: Program,
    configs: Sequence[MachineConfig],
    trace_path: str | os.PathLike,
    jobs: int | None = None,
) -> list[SimulationResult]:
    """Traced variant of :func:`simulate_many` writing one merged trace.

    Every point runs with a JSONL sink (plus a metrics sink, so each
    result carries its ``trace_metrics``); the merged ``trace_path`` is
    byte-identical regardless of ``jobs``.
    """
    from .trace import merge_trace_files

    configs = list(configs)
    with tempfile.TemporaryDirectory(prefix="repro-trace-") as staging:
        results = parallel_map(
            _simulate_traced_point,
            list(enumerate(configs)),
            jobs=jobs,
            initializer=_init_traced_worker,
            initargs=(program, staging),
        )
        parts = [
            Path(staging) / _trace_part_name(index) for index in range(len(configs))
        ]
        merge_trace_files(parts, trace_path)
    return results
