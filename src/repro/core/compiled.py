"""Per-config compiled step kernels: codegen for the cycle loop.

The reference loop in :meth:`repro.core.simulator.Simulator.run` pays
generic-Python overhead on every *live* cycle: virtual dispatch into
each component phase, attribute lookups for state that never moves,
``tracer.enabled`` tests that are false for the whole run, and replay
bookkeeping that is disabled.  This module generates, per machine
configuration, a monolithic specialized run function in which

* configuration constants (``max_cycles``, the deadlock horizon, queue
  capacities, branch latency, bus/priority knobs) are folded into
  integer and string literals;
* the per-cycle component phases (``memory.begin_cycle``,
  ``engine.update``, ``backend.step``, ``memory.end_cycle``) are
  flattened into straight-line inlined code whenever the component
  opted into emission (see below) and is not monkeypatched;
* ``tracer.enabled`` branches, replay hooks, and the idle-skip block
  are specialized *out* of the source when the corresponding feature
  is disabled for the run;
* component objects, bound methods, and queue storage are hoisted into
  locals once per run, outside the hot loop.

The generated source mirrors the reference loop statement for
statement — same phase order, same counter updates, same trace events,
same error arithmetic — so results, stats, and JSONL trace bytes are
byte-identical (``tests/test_scheduler_differential.py`` pins this
across the whole crosscheck config family).

**Specialization contract.**  A component opts into lowering by
providing ``emit_compiled_*`` classmethods (and/or declaring
``COMPILED_IDLE_HINT`` / ``COMPILED_POLL_GUARD``); the generator only
uses them when the live instance is exactly the known class with no
instance-level monkeypatching, otherwise it falls back to calling the
bound method — so tests that stub out ``frontend.poll_requests`` or
``backend.step`` still see their stubs.  Every fold decision is part
of the :class:`KernelSpec`, which keys the process-wide compile cache:
one config (plus traced/skip/replay flags and fold profile) compiles
exactly once per process.  ``docs/COMPILED.md`` documents the contract
in full.

**Hoisting rule.**  Only objects that are never *rebound* during a run
may be hoisted into kernel locals: component objects, the queues'
``_items`` deques (mutated in place, even by replay's commit), the
stall-counter dict, stats objects.  Attributes the replay engine or
the components rebind (``external.in_flight``, ``fpu._ops_pending``,
``engine._uncommitted_*``) are always read through their owner.

``compiled=False``, ``--no-compiled`` or ``REPRO_NO_COMPILED=1``
selects the interpreted engines for differential testing.
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from dataclasses import dataclass

from ..cpu.backend import Backend, _PendingBranch
from ..cpu.data_engine import DataQueueEngine
from ..cpu.dispatch import ProgramDispatchTable, dispatch_codegen_stats
from ..cpu.executor import execute, queue_effects
from ..cpu.queues import ArchitecturalQueue
from ..frontend.base import FetchUnit
from ..frontend.conventional import ConventionalFetchUnit
from ..frontend.icache import InstructionCache
from ..frontend.pipe_fetch import PipeFetchUnit
from ..frontend.tib import TibFetchUnit
from ..isa.encoding import DecodeError
from ..isa.predecode import PredecodedImage
from ..memory.external import ExternalMemory
from ..memory.fpu import is_fpu_address
from ..memory.fpu_timing import TimedFpu
from ..memory.requests import RequestKind, RequestPriority, acceptance_order
from ..memory.system import MemorySystem
from .scheduler import (
    ENGINE_REVISION,
    IDLE,
    inline_frontend_enabled_default,
    specialize_dispatch_enabled_default,
)

__all__ = [
    "CompiledKernel",
    "KernelContext",
    "KernelSpec",
    "clear_compile_cache",
    "compile_stats",
    "config_fingerprint",
    "generate_source",
    "kernel_for",
    "kernel_spec_for",
]


def config_fingerprint(config) -> str:
    """Content address of one :class:`MachineConfig` for kernel keying.

    Folds the engine revision so a kernel compiled by one generator
    version can never be mistaken for another's (mirrors the simcache
    key discipline).
    """
    payload = repr(sorted(config.to_dict().items()))
    h = hashlib.sha256()
    h.update(ENGINE_REVISION.encode())
    h.update(b"\x00")
    h.update(payload.encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# The kernel specification: everything the generated source depends on
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelSpec:
    """Pure value object from which kernel source is generated.

    ``generate_source`` is a deterministic function of this spec (the
    golden test pins that), and the spec is the compile-cache key: two
    runs share a kernel iff their specs are equal.  The ``inline_*`` /
    ``fold_*`` flags record which components were eligible for
    lowering when the spec was built; a monkeypatched component simply
    produces a spec with that fold off, whose kernel calls the bound
    method instead.
    """

    config_key: str
    traced: bool
    skip: bool
    replay: bool
    max_cycles: int
    deadlock_cycles: int
    snapshot_mask: int
    branch_resolution_latency: int
    laq_capacity: int | None
    ldq_capacity: int | None
    saq_capacity: int | None
    sdq_capacity: int | None
    memory_pipelined: bool
    instruction_first: bool
    strategy: str
    describe: str
    inline_step: bool
    inline_update: bool
    inline_begin: bool
    inline_end: bool
    poll_guard: bool
    inline_frontend: bool
    specialize_dispatch: bool
    #: PIPE only: icache line size folded into the IQB-exhaustion guards
    line_size: int | None
    #: PIPE only: IQ byte capacity folded into the transfer loop
    pipe_iq_size: int | None
    #: TIB only: stream-request geometry folded into the request guard
    tib_block_size: int | None
    tib_stream_capacity: int | None
    engine_precheck: bool
    fold_drained: bool
    fold_wake_memory: bool
    fold_wake_backend: bool
    fold_hint_engine: bool
    fold_hint_frontend: bool


def _clean(obj, *names: str) -> bool:
    """True when none of ``names`` is shadowed on the instance."""
    shadow = vars(obj).keys()
    return not any(name in shadow for name in names)


def kernel_spec_for(sim) -> KernelSpec:
    """Build the spec for one simulator instance, at ``run()`` time.

    Eligibility is judged against the *instance* (exact class, no
    monkeypatched methods), so per-test stubbing naturally disables
    the affected fold instead of being compiled over.
    """
    config = sim.config
    backend = sim.backend
    engine = sim.engine
    memory = sim.memory
    external = memory.external
    fpu = memory.fpu
    frontend = sim.frontend
    queues = (engine.laq, engine.ldq, engine.saq, engine.sdq)
    plain_queues = all(
        type(queue) is ArchitecturalQueue
        and getattr(type(queue), "COMPILED_PLAIN_FIFO", False)
        and _clean(queue, "push", "pop", "peek")
        for queue in queues
    )
    plain_engine = type(engine) is DataQueueEngine
    plain_backend = type(backend) is Backend
    plain_memory = (
        type(memory) is MemorySystem
        and type(external) is ExternalMemory
        and type(fpu) is TimedFpu
        and len(memory._sources) == 2
        and memory._sources[0] is frontend
        and memory._sources[1] is engine
    )
    poll_guard = getattr(type(frontend), "COMPILED_POLL_GUARD", False) and _clean(
        frontend, "poll_requests"
    )
    inline_step = (
        plain_backend
        and plain_engine
        and plain_queues
        and _clean(backend, "step", "_stall", "_handle_branch_bookkeeping")
        and _clean(engine, "ldq_has_data")
    )
    # Frontend inlining: the emitted update/post_issue/next_instruction/
    # consume/poll bodies assume the exact shipped state machines, so
    # eligibility demands the exact class (a subclass inherits the
    # COMPILED_FRONTEND_INLINE flag but not necessarily the machine) and
    # no instance-level monkeypatching of any method the emitted guards
    # reason about.  An ineligible frontend falls back to bound calls.
    inline_frontend = False
    line_size = None
    pipe_iq_size = None
    tib_block_size = None
    tib_stream_capacity = None
    if (
        inline_frontend_enabled_default()
        and poll_guard
        and getattr(type(frontend), "COMPILED_FRONTEND_INLINE", False)
    ):
        if type(frontend) is ConventionalFetchUnit:
            cache = frontend.cache
            inline_frontend = (
                type(cache) is InstructionCache
                and getattr(type(cache), "COMPILED_RESIDENCY_EPOCH", False)
                and type(frontend.predecode) is PredecodedImage
                and _clean(
                    frontend,
                    "update",
                    "post_issue",
                    "_maybe_promote",
                    "_maybe_request",
                    "_choose_prefetch",
                    "_current_instruction_resident",
                    "_prefetchable",
                    "_issue_request",
                    "_block_address",
                    "next_instruction",
                    "consume",
                )
                and _clean(
                    cache,
                    "probe",
                    "lookup",
                    "fill",
                    "invalidate_all",
                    "record_hit",
                    "record_miss",
                    "touch",
                )
            )
        elif type(frontend) is PipeFetchUnit:
            cache = frontend.cache
            inline_frontend = (
                type(cache) is InstructionCache
                and getattr(type(cache), "COMPILED_RESIDENCY_EPOCH", False)
                and type(frontend.predecode) is PredecodedImage
                and _clean(
                    frontend,
                    "update",
                    "post_issue",
                    "_advance",
                    "_promote_if_starving",
                    "_transfer_to_iq",
                    "_choose_fill",
                    "_start_fill",
                    "next_instruction",
                    "consume",
                )
                and _clean(
                    cache,
                    "probe",
                    "fill",
                    "invalidate_all",
                    "record_hit",
                    "record_miss",
                    "touch",
                )
            )
            if inline_frontend:
                line_size = frontend.line_size
                pipe_iq_size = frontend.iq_size
        elif type(frontend) is TibFetchUnit:
            inline_frontend = type(frontend.predecode) is PredecodedImage and _clean(
                frontend,
                "update",
                "post_issue",
                "_promote_if_starving",
                "_maybe_request",
                "_has_instruction",
                "next_instruction",
                "consume",
            )
            if inline_frontend:
                tib_block_size = frontend.block_size
                tib_stream_capacity = frontend.stream_capacity
    return KernelSpec(
        config_key=config_fingerprint(config),
        traced=sim.tracer.enabled,
        skip=sim.skip,
        replay=sim.replay_enabled,
        max_cycles=config.max_cycles,
        deadlock_cycles=sim.DEADLOCK_CYCLES,
        snapshot_mask=sim.SNAPSHOT_MASK,
        branch_resolution_latency=config.branch_resolution_latency,
        laq_capacity=engine.laq.capacity,
        ldq_capacity=engine.ldq.capacity,
        saq_capacity=engine.saq.capacity,
        sdq_capacity=engine.sdq.capacity,
        memory_pipelined=external.pipelined,
        instruction_first=memory.priority is RequestPriority.INSTRUCTION_FIRST,
        strategy=config.fetch_strategy.value,
        describe=config.describe(),
        inline_step=inline_step,
        inline_update=plain_engine and plain_queues and _clean(engine, "update"),
        inline_begin=(
            plain_memory
            and _clean(memory, "begin_cycle", "_deliver_one")
            and _clean(external, "begin_cycle", "retire_finished", "ready_requests")
            and _clean(fpu, "begin_cycle", "deliverable_load", "deliver")
        ),
        inline_end=(
            plain_memory
            and _clean(memory, "end_cycle", "_try_accept", "_count_acceptance")
            and _clean(external, "can_accept", "accept")
            and _clean(fpu, "can_accept", "accept")
        ),
        poll_guard=poll_guard,
        inline_frontend=inline_frontend,
        specialize_dispatch=(
            specialize_dispatch_enabled_default() and inline_step
        ),
        line_size=line_size,
        pipe_iq_size=pipe_iq_size,
        tib_block_size=tib_block_size,
        tib_stream_capacity=tib_stream_capacity,
        engine_precheck=(
            plain_engine
            and plain_queues
            and _clean(engine, "poll_requests", "_load_credit_available")
        ),
        fold_drained=plain_engine and plain_queues and plain_memory,
        fold_wake_memory=(
            plain_memory
            and _clean(memory, "next_event_cycle")
            and _clean(external, "next_event_cycle")
            and _clean(fpu, "next_event_cycle")
        ),
        fold_wake_backend=plain_backend and _clean(backend, "next_event_cycle"),
        fold_hint_engine=(
            plain_engine
            and _clean(engine, "next_event_cycle")
            and getattr(type(engine), "COMPILED_IDLE_HINT", False)
        ),
        fold_hint_frontend=(
            _clean(frontend, "next_event_cycle")
            and type(frontend).next_event_cycle is FetchUnit.next_event_cycle
            and getattr(type(frontend), "COMPILED_IDLE_HINT", False)
        ),
    )


# ----------------------------------------------------------------------
# The emission context component hooks write into
# ----------------------------------------------------------------------
#: kernel-local bindings, hoisted once per run in the prologue.  Hooks
#: declare which they use via ``ctx.need``; the prologue emits only
#: those, in this (deterministic) order.  Everything here is bound
#: from ``sim`` at kernel *invocation*, so instance monkeypatching of
#: methods that are merely called (not inlined) is honored.
_BINDINGS: dict[str, str] = {
    "memory": "sim.memory",
    "mem_stats": "sim.memory.stats",
    "external": "sim.memory.external",
    "fpu": "sim.memory.fpu",
    "engine": "sim.engine",
    "engine_stats": "sim.engine.stats",
    "frontend": "sim.frontend",
    "backend": "sim.backend",
    "clock": "sim.clock",
    "tracer": "sim.tracer",
    "tracer_emit": "sim.tracer.emit",
    "laq_items": "sim.engine.laq._items",
    "ldq_items": "sim.engine.ldq._items",
    "saq_items": "sim.engine.saq._items",
    "sdq_items": "sim.engine.sdq._items",
    "ldq_push": "sim.engine.ldq.push",
    "backend_stalls": "sim.backend.stalls",
    "backend_state": "sim.backend.state",
    "backend_env": "sim.backend._env",
    "effects_memo": "{}",
    "frontend_next_instruction": "sim.frontend.next_instruction",
    "frontend_consume": "sim.frontend.consume",
    "frontend_note_branch": "sim.frontend.note_branch",
    "frontend_branch_resolved": "sim.frontend.branch_resolved",
    "frontend_redirect": "sim.frontend.redirect",
    "frontend_halt": "sim.frontend.halt",
    "frontend_update": "sim.frontend.update",
    "frontend_post_issue": "sim.frontend.post_issue",
    "frontend_poll": "sim.frontend.poll_requests",
    "frontend_notify": "sim.frontend.notify_accepted",
    "engine_update": "sim.engine.update",
    "engine_poll": "sim.engine.poll_requests",
    "engine_notify": "sim.engine.notify_accepted",
    "backend_step": "sim.backend.step",
    "memory_begin": "sim.memory.begin_cycle",
    "memory_end": "sim.memory.end_cycle",
    "memory_next_event": "sim.memory.next_event_cycle",
    "backend_next_event": "sim.backend.next_event_cycle",
    "engine_next_event": "sim.engine.next_event_cycle",
    "frontend_next_event": "sim.frontend.next_event_cycle",
    "external_accept": "sim.memory.external.accept",
    "fpu_can_accept": "sim.memory.fpu.can_accept",
    "fpu_accept": "sim.memory.fpu.accept",
    "replay_on_backedge": "sim.replay_controller.on_backedge",
    "replay_check_runaway": "sim.replay_controller.check_runaway",
    # -- frontend-inlining bindings (spec.inline_frontend only) --------
    # The frontends' stats objects and queue/table storage are mutated
    # in place for the whole run (replay advances counters with setattr
    # on the same objects), so hoisting them obeys the hoisting rule.
    "fe_stats": "sim.frontend.stats",
    "icache_stats": "sim.frontend.cache.stats",
    "icache_unit": "sim.frontend.cache",
    "cache_probe": "sim.frontend.cache.probe",
    "pipe_iq": "sim.frontend._iq",
    "pipe_clock": "sim.frontend._clock",
    "pd_table": "sim.frontend.predecode._table",
    "fe_memo": "{}",
    "res_memo": "{}",
    "probe_memo": "{}",
    "frontend_maybe_promote": "sim.frontend._maybe_promote",
    "frontend_promote_starving": "sim.frontend._promote_if_starving",
    "frontend_maybe_request": "sim.frontend._maybe_request",
    "frontend_predecode_at": "sim.frontend.predecode.at",
    "frontend_start_fill": "sim.frontend._start_fill",
    # -- program-specialized dispatch (spec.specialize_dispatch only) --
    "dispatch_get": "_dispatch_for(sim).handler_for",
}


#: The frontend classes whose state machines the generator knows how to
#: inline, by strategy name.  ``kernel_spec_for`` only sets
#: ``inline_frontend`` after verifying the live instance is *exactly*
#: one of these classes, so the lookup can key on the folded strategy.
_FRONTEND_CLASSES: dict[str, type] = {
    "conventional": ConventionalFetchUnit,
    "pipe": PipeFetchUnit,
    "tib": TibFetchUnit,
}


class KernelContext:
    """Line buffer + binding ledger the emission hooks write into.

    Component ``emit_compiled_*`` classmethods receive one of these:
    ``line()`` appends a statement at the current indent, ``block()``
    opens an indented suite, ``need()`` requests prologue bindings
    from the fixed :data:`_BINDINGS` table, and :attr:`spec` carries
    the constants to fold.  The context never executes anything — it
    only renders deterministic source.
    """

    def __init__(self, spec: KernelSpec):
        self.spec = spec
        self._body: list[str] = []
        self._depth = 1
        self._needs: set[str] = set()
        #: the frontend class whose emitters to use, or ``None`` when
        #: the kernel calls the bound frontend methods instead
        self.frontend_cls = (
            _FRONTEND_CLASSES.get(spec.strategy) if spec.inline_frontend else None
        )

    # -- emission ------------------------------------------------------
    def line(self, text: str) -> None:
        self._body.append("    " * self._depth + text)

    def comment(self, text: str) -> None:
        self.line(f"# {text}")

    @contextmanager
    def block(self, header: str):
        self.line(header)
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1

    def need(self, *names: str) -> None:
        for name in names:
            if name not in _BINDINGS:
                raise KeyError(f"unknown kernel binding {name!r}")
            self._needs.add(name)

    # -- assembly ------------------------------------------------------
    def render(self) -> str:
        lines = ["def __kernel(sim):", "    now = 0"]
        for name, expr in _BINDINGS.items():
            if name in self._needs:
                lines.append(f"    {name} = {expr}")
        lines.extend(self._body)
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The generator driver
# ----------------------------------------------------------------------
def _emit_phase_begin(ctx: KernelContext) -> None:
    ctx.comment("memory.begin_cycle(now)")
    if ctx.spec.inline_begin:
        MemorySystem.emit_compiled_begin_cycle(ctx)
    else:
        ctx.need("memory_begin")
        ctx.line("memory_begin(now)")


def _emit_phase_update(ctx: KernelContext) -> None:
    ctx.comment("engine.update(now)")
    if ctx.spec.inline_update:
        DataQueueEngine.emit_compiled_update(ctx)
    else:
        ctx.need("engine_update")
        ctx.line("engine_update(now)")


def _emit_phase_frontend_update(ctx: KernelContext) -> None:
    ctx.comment("frontend.update(now)")
    if ctx.frontend_cls is not None:
        ctx.frontend_cls.emit_compiled_update(ctx)
    else:
        ctx.need("frontend_update")
        ctx.line("frontend_update(now)")


def _emit_phase_frontend_post_issue(ctx: KernelContext) -> None:
    ctx.comment("frontend.post_issue(now)")
    if ctx.frontend_cls is not None:
        ctx.frontend_cls.emit_compiled_post_issue(ctx)
    else:
        ctx.need("frontend_post_issue")
        ctx.line("frontend_post_issue(now)")


def _emit_phase_step(ctx: KernelContext) -> None:
    ctx.comment("backend.step(now)")
    if ctx.spec.inline_step:
        Backend.emit_compiled_step(ctx)
    else:
        ctx.need("backend_step")
        ctx.line("backend_step(now)")


def _emit_phase_end(ctx: KernelContext) -> None:
    ctx.comment("memory.end_cycle(now)")
    if ctx.spec.inline_end:
        MemorySystem.emit_compiled_end_cycle(ctx)
    else:
        ctx.need("memory_end")
        ctx.line("memory_end(now)")


def _emit_drain_check(ctx: KernelContext) -> None:
    spec = ctx.spec
    if spec.fold_drained:
        ctx.need("laq_items", "saq_items", "sdq_items", "engine", "external", "fpu")
        condition = (
            "backend.halted and not laq_items and not saq_items "
            "and not sdq_items and not engine._in_flight_loads "
            "and not external.in_flight and not fpu._ops_pending "
            "and not fpu._results_ready and not fpu._result_loads"
        )
    else:
        ctx.need("engine", "memory")
        condition = "backend.halted and engine.drained and memory.drained"
    with ctx.block(f"if {condition}:"):
        if spec.traced:
            ctx.line("tracer.cycle = now")
            ctx.line(
                'tracer_emit("sim", "end", cycles=now, '
                "instructions=backend.instructions, halted=backend.halted)"
            )
        ctx.line("break")


def _emit_replay_block(ctx: KernelContext) -> None:
    mask = ctx.spec.snapshot_mask
    ctx.need("replay_on_backedge")
    with ctx.block("if backend.replay_backedge is not None:"):
        ctx.line("target = backend.replay_backedge")
        ctx.line("backend.replay_backedge = None")
        ctx.line("jumped = replay_on_backedge(target, now)")
        with ctx.block("if jumped != now:"):
            ctx.line("now = jumped")
            ctx.line("last_ticks = clock.ticks")
            ctx.line(f"last_progress_at = now & {~mask}")


def _emit_snapshot_block(ctx: KernelContext) -> None:
    spec = ctx.spec
    with ctx.block(f"if not now & {spec.snapshot_mask}:"):
        ctx.line("ticks = clock.ticks")
        with ctx.block("if ticks != last_ticks:"):
            ctx.line("last_ticks = ticks")
            ctx.line("last_progress_at = now")
        with ctx.block(f"elif now - last_progress_at > {spec.deadlock_cycles}:"):
            ctx.line("raise sim._deadlock(now, last_progress_at, False)")
        if spec.replay:
            ctx.need("replay_check_runaway")
            ctx.line("replay_check_runaway()")
    with ctx.block(f"if now >= {spec.max_cycles}:"):
        ctx.line("raise sim._timeout(now, False)")


def _emit_wake_computation(ctx: KernelContext) -> None:
    spec = ctx.spec
    if spec.fold_wake_memory:
        ExternalMemory.emit_compiled_wake(ctx)
        TimedFpu.emit_compiled_wake(ctx)
    else:
        ctx.need("memory_next_event")
        ctx.line("wake = memory_next_event(now)")
    if spec.fold_wake_backend:
        Backend.emit_compiled_wake(ctx)
    else:
        ctx.need("backend_next_event")
        ctx.line("hint = backend_next_event(now)")
        with ctx.block("if hint < wake:"):
            ctx.line("wake = hint")
    if not spec.fold_hint_engine:
        ctx.need("engine_next_event")
        ctx.line("hint = engine_next_event(now)")
        with ctx.block("if hint < wake:"):
            ctx.line("wake = hint")
    if not spec.fold_hint_frontend:
        ctx.need("frontend_next_event")
        ctx.line("hint = frontend_next_event(now)")
        with ctx.block("if hint < wake:"):
            ctx.line("wake = hint")


def _emit_skip_block(ctx: KernelContext) -> None:
    spec = ctx.spec
    mask = spec.snapshot_mask
    interval = mask + 1
    with ctx.block("if clock.ticks == ticks_before:"):
        _emit_wake_computation(ctx)
        ctx.line("ticks = clock.ticks")
        with ctx.block("if ticks != last_ticks:"):
            ctx.line(f"first_snapshot = (now | {mask}) + 1")
            ctx.line("fire_base = first_snapshot")
        with ctx.block("else:"):
            ctx.line("first_snapshot = None")
            ctx.line("fire_base = last_progress_at")
        ctx.line(
            f"fire = -(-(fire_base + {spec.deadlock_cycles + 1}) "
            f"// {interval}) * {interval}"
        )
        with ctx.block(f"if fire <= wake and fire <= {spec.max_cycles}:"):
            ctx.line("target = fire")
            ctx.line("fate = 1")
        with ctx.block(f"elif {spec.max_cycles} <= wake:"):
            ctx.line(f"target = {spec.max_cycles}")
            ctx.line("fate = 2")
        with ctx.block("else:"):
            ctx.line("target = wake")
            ctx.line("fate = 0")
        with ctx.block("if target > now:"):
            ctx.line("span = target - now")
            ctx.line(
                "stall_reason = "
                "backend.last_stall_reason if not backend.halted else None"
            )
            with ctx.block("if stall_reason is not None:"):
                ctx.need("backend_stalls")
                ctx.line("backend_stalls[stall_reason] += span")
            ctx.line("conflict = mem_stats.acceptance_conflicts > conflicts_before")
            with ctx.block("if conflict:"):
                ctx.line("mem_stats.acceptance_conflicts += span")
            with ctx.block("if external.in_flight:"):
                ctx.need("external")
                ctx.line("external.busy_cycles += span")
            if spec.traced:
                with ctx.block("if stall_reason is not None or conflict:"):
                    ctx.line("candidates = memory.last_conflict_candidates")
                    with ctx.block("for cycle in range(now, target):"):
                        ctx.line("tracer.cycle = cycle")
                        with ctx.block("if stall_reason is not None:"):
                            ctx.line(
                                'tracer_emit("backend", "stall", '
                                "reason=stall_reason)"
                            )
                        with ctx.block("if conflict:"):
                            ctx.line(
                                'tracer_emit("mem", "conflict", '
                                "candidates=candidates)"
                            )
            with ctx.block("if first_snapshot is not None and first_snapshot <= target:"):
                ctx.line("last_ticks = ticks")
                ctx.line("last_progress_at = first_snapshot")
            ctx.line("now = target")
            with ctx.block("if fate == 1:"):
                ctx.line("raise sim._deadlock(now, last_progress_at, True)")
            with ctx.block("if fate == 2:"):
                ctx.line("raise sim._timeout(now, True)")


def generate_source(spec: KernelSpec) -> str:
    """Render the specialized run function for one spec.

    Pure: the same spec always renders byte-identical source (the
    golden test pins a representative config's output).
    """
    ctx = KernelContext(spec)
    traced = spec.traced
    ctx.need("memory", "mem_stats", "external", "fpu", "engine", "frontend",
             "backend", "clock", "frontend_halt")
    if traced:
        ctx.need("tracer", "tracer_emit")
        ctx.line("tracer.cycle = 0")
        ctx.line(
            f'tracer_emit("sim", "begin", strategy={spec.strategy!r}, '
            f"config={spec.describe!r})"
        )
    ctx.line("last_ticks = clock.ticks")
    ctx.line("last_progress_at = 0")
    with ctx.block("while True:"):
        if traced:
            ctx.line("tracer.cycle = now")
        ctx.line("ticks_before = clock.ticks")
        if spec.skip:
            ctx.line("conflicts_before = mem_stats.acceptance_conflicts")
        _emit_phase_begin(ctx)
        _emit_phase_update(ctx)
        _emit_phase_frontend_update(ctx)
        _emit_phase_step(ctx)
        with ctx.block("if backend.halted:"):
            ctx.line("frontend_halt()")
        _emit_phase_frontend_post_issue(ctx)
        _emit_phase_end(ctx)
        ctx.line("now += 1")
        _emit_drain_check(ctx)
        if spec.replay:
            _emit_replay_block(ctx)
        _emit_snapshot_block(ctx)
        if spec.skip:
            _emit_skip_block(ctx)
    ctx.line("return now")
    return ctx.render()


# ----------------------------------------------------------------------
# Compile cache
# ----------------------------------------------------------------------
class CompiledKernel:
    """One compiled specialization: the spec, its source, the function."""

    __slots__ = ("spec", "source", "fn")

    def __init__(self, spec: KernelSpec, source: str, fn):
        self.spec = spec
        self.source = source
        self.fn = fn

    def __call__(self, sim) -> int:
        """Run the kernel; returns the final architectural cycle."""
        return self.fn(sim)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CompiledKernel {self.spec.config_key[:12]} "
            f"traced={self.spec.traced} skip={self.spec.skip} "
            f"replay={self.spec.replay}>"
        )


_KERNEL_CACHE: dict[KernelSpec, CompiledKernel] = {}
_COMPILE_COUNT = 0
_KERNEL_HITS = 0
_CODEGEN_SECONDS = 0.0

#: Per-program dispatch tables, keyed ``(program_fingerprint,
#: config_key)``.  The config key already folds ``ENGINE_REVISION``
#: (see :func:`config_fingerprint`), so a generator bump invalidates
#: dispatch tables exactly as it invalidates kernels.
_DISPATCH_CACHE: dict[tuple[str, str], ProgramDispatchTable] = {}
_DISPATCH_HITS = 0


def _dispatch_table_for(sim, config_key: str) -> ProgramDispatchTable:
    """The (cached) per-program dispatch table for one kernel run."""
    global _DISPATCH_HITS
    from .simcache import program_fingerprint

    key = (program_fingerprint(sim.program), config_key)
    table = _DISPATCH_CACHE.get(key)
    if table is None:
        table = ProgramDispatchTable()
        _DISPATCH_CACHE[key] = table
    else:
        _DISPATCH_HITS += 1
    return table


def _kernel_globals(spec: KernelSpec) -> dict:
    return {
        "IDLE": IDLE,
        "execute": execute,
        "queue_effects": queue_effects,
        "_PendingBranch": _PendingBranch,
        "_is_fpu": is_fpu_address,
        "_acc_order": acceptance_order,
        "_PRIORITY": (
            RequestPriority.INSTRUCTION_FIRST
            if spec.instruction_first
            else RequestPriority.DATA_FIRST
        ),
        "K_LOAD": RequestKind.LOAD,
        "K_STORE": RequestKind.STORE,
        "DecodeError": DecodeError,
        "_dispatch_for": (
            lambda sim, _key=spec.config_key: _dispatch_table_for(sim, _key)
        ),
    }


def _compile(spec: KernelSpec) -> CompiledKernel:
    global _COMPILE_COUNT, _CODEGEN_SECONDS
    started = time.perf_counter()
    source = generate_source(spec)
    namespace = _kernel_globals(spec)
    code = compile(source, f"<repro-kernel-{spec.config_key[:12]}>", "exec")
    exec(code, namespace)  # noqa: S102 — the source is our own codegen
    _COMPILE_COUNT += 1
    _CODEGEN_SECONDS += time.perf_counter() - started
    return CompiledKernel(spec, source, namespace["__kernel"])


def kernel_for(sim) -> CompiledKernel:
    """The (cached) compiled kernel serving one simulator instance."""
    global _KERNEL_HITS
    spec = kernel_spec_for(sim)
    kernel = _KERNEL_CACHE.get(spec)
    if kernel is None:
        kernel = _compile(spec)
        _KERNEL_CACHE[spec] = kernel
    else:
        _KERNEL_HITS += 1
    return kernel


def compile_stats() -> dict:
    """Codegen-cache observability: both cache levels plus codegen time.

    ``codegen_seconds`` sums kernel generation/compilation with the
    per-instruction dispatch-handler compiles (the dispatch module
    keeps its own cumulative clock).
    """
    dispatch = dispatch_codegen_stats()
    return {
        "kernels": len(_KERNEL_CACHE),
        "compiles": _COMPILE_COUNT,
        "kernel_cache_hits": _KERNEL_HITS,
        "codegen_seconds": _CODEGEN_SECONDS + dispatch["codegen_seconds"],
        "dispatch_tables": len(_DISPATCH_CACHE),
        "dispatch_handlers": sum(len(t) for t in _DISPATCH_CACHE.values()),
        "dispatch_handler_compiles": dispatch["handler_compiles"],
        "dispatch_cache_hits": _DISPATCH_HITS,
    }


def clear_compile_cache() -> None:
    """Drop every cached kernel and per-program dispatch table.

    Both cache levels clear together so a stale program kernel cannot
    survive a clear (``tests/test_compiled_engine.py`` pins this).
    """
    _KERNEL_CACHE.clear()
    _DISPATCH_CACHE.clear()
