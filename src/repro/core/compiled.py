"""Per-config compiled step kernels: codegen for the cycle loop.

The reference loop in :meth:`repro.core.simulator.Simulator.run` pays
generic-Python overhead on every *live* cycle: virtual dispatch into
each component phase, attribute lookups for state that never moves,
``tracer.enabled`` tests that are false for the whole run, and replay
bookkeeping that is disabled.  This module generates, per machine
configuration, a monolithic specialized run function in which

* configuration constants (``max_cycles``, the deadlock horizon, queue
  capacities, branch latency, bus/priority knobs) are folded into
  integer and string literals;
* the per-cycle component phases (``memory.begin_cycle``,
  ``engine.update``, ``backend.step``, ``memory.end_cycle``) are
  flattened into straight-line inlined code whenever the component
  opted into emission (see below) and is not monkeypatched;
* ``tracer.enabled`` branches, replay hooks, and the idle-skip block
  are specialized *out* of the source when the corresponding feature
  is disabled for the run;
* component objects, bound methods, and queue storage are hoisted into
  locals once per run, outside the hot loop.

The generated source mirrors the reference loop statement for
statement — same phase order, same counter updates, same trace events,
same error arithmetic — so results, stats, and JSONL trace bytes are
byte-identical (``tests/test_scheduler_differential.py`` pins this
across the whole crosscheck config family).

**Specialization contract.**  A component opts into lowering by
providing ``emit_compiled_*`` classmethods (and/or declaring
``COMPILED_IDLE_HINT`` / ``COMPILED_POLL_GUARD``); the generator only
uses them when the live instance is exactly the known class with no
instance-level monkeypatching, otherwise it falls back to calling the
bound method — so tests that stub out ``frontend.poll_requests`` or
``backend.step`` still see their stubs.  Every fold decision is part
of the :class:`KernelSpec`, which keys the process-wide compile cache:
one config (plus traced/skip/replay flags and fold profile) compiles
exactly once per process.  ``docs/COMPILED.md`` documents the contract
in full.

**Hoisting rule.**  Only objects that are never *rebound* during a run
may be hoisted into kernel locals: component objects, the queues'
``_items`` deques (mutated in place, even by replay's commit), the
stall-counter dict, stats objects.  Attributes the replay engine or
the components rebind (``external.in_flight``, ``fpu._ops_pending``,
``engine._uncommitted_*``) are always read through their owner.

``compiled=False``, ``--no-compiled`` or ``REPRO_NO_COMPILED=1``
selects the interpreted engines for differential testing.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass

from ..cpu.backend import Backend, _PendingBranch
from ..cpu.data_engine import DataQueueEngine
from ..cpu.dispatch import (
    ProgramDispatchTable,
    clear_dispatch_cache,
    dispatch_codegen_stats,
)
from ..cpu.executor import execute, queue_effects
from ..cpu.queues import ArchitecturalQueue
from ..frontend.base import FetchUnit
from ..frontend.conventional import ConventionalFetchUnit
from ..frontend.icache import InstructionCache
from ..frontend.pipe_fetch import PipeFetchUnit
from ..frontend.tib import TibFetchUnit
from ..isa.encoding import DecodeError
from ..isa.predecode import PredecodedImage
from ..memory.external import ExternalMemory
from ..memory.fpu import is_fpu_address
from ..memory.fpu_timing import TimedFpu
from ..memory.requests import RequestKind, RequestPriority, acceptance_order
from ..memory.system import MemorySystem
from .scheduler import (
    ENGINE_REVISION,
    IDLE,
    disk_codegen_enabled_default,
    inline_frontend_enabled_default,
    specialize_dispatch_enabled_default,
)

__all__ = [
    "CompiledKernel",
    "KernelContext",
    "KernelSpec",
    "clear_compile_cache",
    "compile_stats",
    "compile_stats_delta",
    "config_fingerprint",
    "fleet_compile_stats",
    "flush_codegen_artifacts",
    "generate_source",
    "kernel_for",
    "kernel_spec_for",
    "prime_codegen_artifacts",
    "record_worker_stats",
]


def config_fingerprint(config) -> str:
    """Content address of one :class:`MachineConfig` for kernel keying.

    Folds the engine revision so a kernel compiled by one generator
    version can never be mistaken for another's (mirrors the simcache
    key discipline).
    """
    payload = repr(sorted(config.to_dict().items()))
    h = hashlib.sha256()
    h.update(ENGINE_REVISION.encode())
    h.update(b"\x00")
    h.update(payload.encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# The kernel specification: everything the generated source depends on
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelSpec:
    """Pure value object from which kernel source is generated.

    ``generate_source`` is a deterministic function of this spec (the
    golden test pins that), and the spec is the compile-cache key: two
    runs share a kernel iff their specs are equal.  The ``inline_*`` /
    ``fold_*`` flags record which components were eligible for
    lowering when the spec was built; a monkeypatched component simply
    produces a spec with that fold off, whose kernel calls the bound
    method instead.
    """

    config_key: str
    traced: bool
    skip: bool
    replay: bool
    max_cycles: int
    deadlock_cycles: int
    snapshot_mask: int
    branch_resolution_latency: int
    laq_capacity: int | None
    ldq_capacity: int | None
    saq_capacity: int | None
    sdq_capacity: int | None
    memory_pipelined: bool
    instruction_first: bool
    strategy: str
    describe: str
    inline_step: bool
    inline_update: bool
    inline_begin: bool
    inline_end: bool
    poll_guard: bool
    inline_frontend: bool
    specialize_dispatch: bool
    #: PIPE only: icache line size folded into the IQB-exhaustion guards
    line_size: int | None
    #: PIPE only: IQ byte capacity folded into the transfer loop
    pipe_iq_size: int | None
    #: TIB only: stream-request geometry folded into the request guard
    tib_block_size: int | None
    tib_stream_capacity: int | None
    engine_precheck: bool
    fold_drained: bool
    fold_wake_memory: bool
    fold_wake_backend: bool
    fold_hint_engine: bool
    fold_hint_frontend: bool


def _clean(obj, *names: str) -> bool:
    """True when none of ``names`` is shadowed on the instance."""
    shadow = vars(obj).keys()
    return not any(name in shadow for name in names)


def kernel_spec_for(sim) -> KernelSpec:
    """Build the spec for one simulator instance, at ``run()`` time.

    Eligibility is judged against the *instance* (exact class, no
    monkeypatched methods), so per-test stubbing naturally disables
    the affected fold instead of being compiled over.
    """
    config = sim.config
    backend = sim.backend
    engine = sim.engine
    memory = sim.memory
    external = memory.external
    fpu = memory.fpu
    frontend = sim.frontend
    queues = (engine.laq, engine.ldq, engine.saq, engine.sdq)
    plain_queues = all(
        type(queue) is ArchitecturalQueue
        and getattr(type(queue), "COMPILED_PLAIN_FIFO", False)
        and _clean(queue, "push", "pop", "peek")
        for queue in queues
    )
    plain_engine = type(engine) is DataQueueEngine
    plain_backend = type(backend) is Backend
    plain_memory = (
        type(memory) is MemorySystem
        and type(external) is ExternalMemory
        and type(fpu) is TimedFpu
        and len(memory._sources) == 2
        and memory._sources[0] is frontend
        and memory._sources[1] is engine
    )
    poll_guard = getattr(type(frontend), "COMPILED_POLL_GUARD", False) and _clean(
        frontend, "poll_requests"
    )
    inline_step = (
        plain_backend
        and plain_engine
        and plain_queues
        and _clean(backend, "step", "_stall", "_handle_branch_bookkeeping")
        and _clean(engine, "ldq_has_data")
    )
    # Frontend inlining: the emitted update/post_issue/next_instruction/
    # consume/poll bodies assume the exact shipped state machines, so
    # eligibility demands the exact class (a subclass inherits the
    # COMPILED_FRONTEND_INLINE flag but not necessarily the machine) and
    # no instance-level monkeypatching of any method the emitted guards
    # reason about.  An ineligible frontend falls back to bound calls.
    inline_frontend = False
    line_size = None
    pipe_iq_size = None
    tib_block_size = None
    tib_stream_capacity = None
    if (
        inline_frontend_enabled_default()
        and poll_guard
        and getattr(type(frontend), "COMPILED_FRONTEND_INLINE", False)
    ):
        if type(frontend) is ConventionalFetchUnit:
            cache = frontend.cache
            inline_frontend = (
                type(cache) is InstructionCache
                and getattr(type(cache), "COMPILED_RESIDENCY_EPOCH", False)
                and type(frontend.predecode) is PredecodedImage
                and _clean(
                    frontend,
                    "update",
                    "post_issue",
                    "_maybe_promote",
                    "_maybe_request",
                    "_choose_prefetch",
                    "_current_instruction_resident",
                    "_prefetchable",
                    "_issue_request",
                    "_block_address",
                    "next_instruction",
                    "consume",
                )
                and _clean(
                    cache,
                    "probe",
                    "lookup",
                    "fill",
                    "invalidate_all",
                    "record_hit",
                    "record_miss",
                    "touch",
                )
            )
        elif type(frontend) is PipeFetchUnit:
            cache = frontend.cache
            inline_frontend = (
                type(cache) is InstructionCache
                and getattr(type(cache), "COMPILED_RESIDENCY_EPOCH", False)
                and type(frontend.predecode) is PredecodedImage
                and _clean(
                    frontend,
                    "update",
                    "post_issue",
                    "_advance",
                    "_promote_if_starving",
                    "_transfer_to_iq",
                    "_choose_fill",
                    "_start_fill",
                    "next_instruction",
                    "consume",
                )
                and _clean(
                    cache,
                    "probe",
                    "fill",
                    "invalidate_all",
                    "record_hit",
                    "record_miss",
                    "touch",
                )
            )
            if inline_frontend:
                line_size = frontend.line_size
                pipe_iq_size = frontend.iq_size
        elif type(frontend) is TibFetchUnit:
            inline_frontend = type(frontend.predecode) is PredecodedImage and _clean(
                frontend,
                "update",
                "post_issue",
                "_promote_if_starving",
                "_maybe_request",
                "_has_instruction",
                "next_instruction",
                "consume",
            )
            if inline_frontend:
                tib_block_size = frontend.block_size
                tib_stream_capacity = frontend.stream_capacity
    return KernelSpec(
        config_key=config_fingerprint(config),
        traced=sim.tracer.enabled,
        skip=sim.skip,
        replay=sim.replay_enabled,
        max_cycles=config.max_cycles,
        deadlock_cycles=sim.DEADLOCK_CYCLES,
        snapshot_mask=sim.SNAPSHOT_MASK,
        branch_resolution_latency=config.branch_resolution_latency,
        laq_capacity=engine.laq.capacity,
        ldq_capacity=engine.ldq.capacity,
        saq_capacity=engine.saq.capacity,
        sdq_capacity=engine.sdq.capacity,
        memory_pipelined=external.pipelined,
        instruction_first=memory.priority is RequestPriority.INSTRUCTION_FIRST,
        strategy=config.fetch_strategy.value,
        describe=config.describe(),
        inline_step=inline_step,
        inline_update=plain_engine and plain_queues and _clean(engine, "update"),
        inline_begin=(
            plain_memory
            and _clean(memory, "begin_cycle", "_deliver_one")
            and _clean(external, "begin_cycle", "retire_finished", "ready_requests")
            and _clean(fpu, "begin_cycle", "deliverable_load", "deliver")
        ),
        inline_end=(
            plain_memory
            and _clean(memory, "end_cycle", "_try_accept", "_count_acceptance")
            and _clean(external, "can_accept", "accept")
            and _clean(fpu, "can_accept", "accept")
        ),
        poll_guard=poll_guard,
        inline_frontend=inline_frontend,
        specialize_dispatch=(
            specialize_dispatch_enabled_default() and inline_step
        ),
        line_size=line_size,
        pipe_iq_size=pipe_iq_size,
        tib_block_size=tib_block_size,
        tib_stream_capacity=tib_stream_capacity,
        engine_precheck=(
            plain_engine
            and plain_queues
            and _clean(engine, "poll_requests", "_load_credit_available")
        ),
        fold_drained=plain_engine and plain_queues and plain_memory,
        fold_wake_memory=(
            plain_memory
            and _clean(memory, "next_event_cycle")
            and _clean(external, "next_event_cycle")
            and _clean(fpu, "next_event_cycle")
        ),
        fold_wake_backend=plain_backend and _clean(backend, "next_event_cycle"),
        fold_hint_engine=(
            plain_engine
            and _clean(engine, "next_event_cycle")
            and getattr(type(engine), "COMPILED_IDLE_HINT", False)
        ),
        fold_hint_frontend=(
            _clean(frontend, "next_event_cycle")
            and type(frontend).next_event_cycle is FetchUnit.next_event_cycle
            and getattr(type(frontend), "COMPILED_IDLE_HINT", False)
        ),
    )


# ----------------------------------------------------------------------
# The emission context component hooks write into
# ----------------------------------------------------------------------
#: kernel-local bindings, hoisted once per run in the prologue.  Hooks
#: declare which they use via ``ctx.need``; the prologue emits only
#: those, in this (deterministic) order.  Everything here is bound
#: from ``sim`` at kernel *invocation*, so instance monkeypatching of
#: methods that are merely called (not inlined) is honored.
_BINDINGS: dict[str, str] = {
    "memory": "sim.memory",
    "mem_stats": "sim.memory.stats",
    "external": "sim.memory.external",
    "fpu": "sim.memory.fpu",
    "engine": "sim.engine",
    "engine_stats": "sim.engine.stats",
    "frontend": "sim.frontend",
    "backend": "sim.backend",
    "clock": "sim.clock",
    "tracer": "sim.tracer",
    "tracer_emit": "sim.tracer.emit",
    "laq_items": "sim.engine.laq._items",
    "ldq_items": "sim.engine.ldq._items",
    "saq_items": "sim.engine.saq._items",
    "sdq_items": "sim.engine.sdq._items",
    "ldq_push": "sim.engine.ldq.push",
    "backend_stalls": "sim.backend.stalls",
    "backend_state": "sim.backend.state",
    "backend_env": "sim.backend._env",
    "effects_memo": "{}",
    "frontend_next_instruction": "sim.frontend.next_instruction",
    "frontend_consume": "sim.frontend.consume",
    "frontend_note_branch": "sim.frontend.note_branch",
    "frontend_branch_resolved": "sim.frontend.branch_resolved",
    "frontend_redirect": "sim.frontend.redirect",
    "frontend_halt": "sim.frontend.halt",
    "frontend_update": "sim.frontend.update",
    "frontend_post_issue": "sim.frontend.post_issue",
    "frontend_poll": "sim.frontend.poll_requests",
    "frontend_notify": "sim.frontend.notify_accepted",
    "engine_update": "sim.engine.update",
    "engine_poll": "sim.engine.poll_requests",
    "engine_notify": "sim.engine.notify_accepted",
    "backend_step": "sim.backend.step",
    "memory_begin": "sim.memory.begin_cycle",
    "memory_end": "sim.memory.end_cycle",
    "memory_next_event": "sim.memory.next_event_cycle",
    "backend_next_event": "sim.backend.next_event_cycle",
    "engine_next_event": "sim.engine.next_event_cycle",
    "frontend_next_event": "sim.frontend.next_event_cycle",
    "external_accept": "sim.memory.external.accept",
    "fpu_can_accept": "sim.memory.fpu.can_accept",
    "fpu_accept": "sim.memory.fpu.accept",
    "replay_on_backedge": "sim.replay_controller.on_backedge",
    "replay_check_runaway": "sim.replay_controller.check_runaway",
    # -- frontend-inlining bindings (spec.inline_frontend only) --------
    # The frontends' stats objects and queue/table storage are mutated
    # in place for the whole run (replay advances counters with setattr
    # on the same objects), so hoisting them obeys the hoisting rule.
    "fe_stats": "sim.frontend.stats",
    "icache_stats": "sim.frontend.cache.stats",
    "icache_unit": "sim.frontend.cache",
    "cache_probe": "sim.frontend.cache.probe",
    "pipe_iq": "sim.frontend._iq",
    "pipe_clock": "sim.frontend._clock",
    "pd_table": "sim.frontend.predecode._table",
    "fe_memo": "{}",
    "res_memo": "{}",
    "probe_memo": "{}",
    "frontend_maybe_promote": "sim.frontend._maybe_promote",
    "frontend_promote_starving": "sim.frontend._promote_if_starving",
    "frontend_maybe_request": "sim.frontend._maybe_request",
    "frontend_predecode_at": "sim.frontend.predecode.at",
    "frontend_start_fill": "sim.frontend._start_fill",
    # -- program-specialized dispatch (spec.specialize_dispatch only) --
    "dispatch_get": "_dispatch_for(sim).handler_for",
}


#: The frontend classes whose state machines the generator knows how to
#: inline, by strategy name.  ``kernel_spec_for`` only sets
#: ``inline_frontend`` after verifying the live instance is *exactly*
#: one of these classes, so the lookup can key on the folded strategy.
_FRONTEND_CLASSES: dict[str, type] = {
    "conventional": ConventionalFetchUnit,
    "pipe": PipeFetchUnit,
    "tib": TibFetchUnit,
}


class KernelContext:
    """Line buffer + binding ledger the emission hooks write into.

    Component ``emit_compiled_*`` classmethods receive one of these:
    ``line()`` appends a statement at the current indent, ``block()``
    opens an indented suite, ``need()`` requests prologue bindings
    from the fixed :data:`_BINDINGS` table, and :attr:`spec` carries
    the constants to fold.  The context never executes anything — it
    only renders deterministic source.
    """

    def __init__(self, spec: KernelSpec):
        self.spec = spec
        self._body: list[str] = []
        self._depth = 1
        self._needs: set[str] = set()
        #: the frontend class whose emitters to use, or ``None`` when
        #: the kernel calls the bound frontend methods instead
        self.frontend_cls = (
            _FRONTEND_CLASSES.get(spec.strategy) if spec.inline_frontend else None
        )

    # -- emission ------------------------------------------------------
    def line(self, text: str) -> None:
        self._body.append("    " * self._depth + text)

    def comment(self, text: str) -> None:
        self.line(f"# {text}")

    @contextmanager
    def block(self, header: str):
        self.line(header)
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1

    def need(self, *names: str) -> None:
        for name in names:
            if name not in _BINDINGS:
                raise KeyError(f"unknown kernel binding {name!r}")
            self._needs.add(name)

    # -- assembly ------------------------------------------------------
    def render(self) -> str:
        lines = ["def __kernel(sim):", "    now = 0"]
        for name, expr in _BINDINGS.items():
            if name in self._needs:
                lines.append(f"    {name} = {expr}")
        lines.extend(self._body)
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The generator driver
# ----------------------------------------------------------------------
def _emit_phase_begin(ctx: KernelContext) -> None:
    ctx.comment("memory.begin_cycle(now)")
    if ctx.spec.inline_begin:
        MemorySystem.emit_compiled_begin_cycle(ctx)
    else:
        ctx.need("memory_begin")
        ctx.line("memory_begin(now)")


def _emit_phase_update(ctx: KernelContext) -> None:
    ctx.comment("engine.update(now)")
    if ctx.spec.inline_update:
        DataQueueEngine.emit_compiled_update(ctx)
    else:
        ctx.need("engine_update")
        ctx.line("engine_update(now)")


def _emit_phase_frontend_update(ctx: KernelContext) -> None:
    ctx.comment("frontend.update(now)")
    if ctx.frontend_cls is not None:
        ctx.frontend_cls.emit_compiled_update(ctx)
    else:
        ctx.need("frontend_update")
        ctx.line("frontend_update(now)")


def _emit_phase_frontend_post_issue(ctx: KernelContext) -> None:
    ctx.comment("frontend.post_issue(now)")
    if ctx.frontend_cls is not None:
        ctx.frontend_cls.emit_compiled_post_issue(ctx)
    else:
        ctx.need("frontend_post_issue")
        ctx.line("frontend_post_issue(now)")


def _emit_phase_step(ctx: KernelContext) -> None:
    ctx.comment("backend.step(now)")
    if ctx.spec.inline_step:
        Backend.emit_compiled_step(ctx)
    else:
        ctx.need("backend_step")
        ctx.line("backend_step(now)")


def _emit_phase_end(ctx: KernelContext) -> None:
    ctx.comment("memory.end_cycle(now)")
    if ctx.spec.inline_end:
        MemorySystem.emit_compiled_end_cycle(ctx)
    else:
        ctx.need("memory_end")
        ctx.line("memory_end(now)")


def _emit_drain_check(ctx: KernelContext) -> None:
    spec = ctx.spec
    if spec.fold_drained:
        ctx.need("laq_items", "saq_items", "sdq_items", "engine", "external", "fpu")
        condition = (
            "backend.halted and not laq_items and not saq_items "
            "and not sdq_items and not engine._in_flight_loads "
            "and not external.in_flight and not fpu._ops_pending "
            "and not fpu._results_ready and not fpu._result_loads"
        )
    else:
        ctx.need("engine", "memory")
        condition = "backend.halted and engine.drained and memory.drained"
    with ctx.block(f"if {condition}:"):
        if spec.traced:
            ctx.line("tracer.cycle = now")
            ctx.line(
                'tracer_emit("sim", "end", cycles=now, '
                "instructions=backend.instructions, halted=backend.halted)"
            )
        ctx.line("break")


def _emit_replay_block(ctx: KernelContext) -> None:
    mask = ctx.spec.snapshot_mask
    ctx.need("replay_on_backedge")
    with ctx.block("if backend.replay_backedge is not None:"):
        ctx.line("target = backend.replay_backedge")
        ctx.line("backend.replay_backedge = None")
        ctx.line("jumped = replay_on_backedge(target, now)")
        with ctx.block("if jumped != now:"):
            ctx.line("now = jumped")
            ctx.line("last_ticks = clock.ticks")
            ctx.line(f"last_progress_at = now & {~mask}")


def _emit_snapshot_block(ctx: KernelContext) -> None:
    spec = ctx.spec
    with ctx.block(f"if not now & {spec.snapshot_mask}:"):
        ctx.line("ticks = clock.ticks")
        with ctx.block("if ticks != last_ticks:"):
            ctx.line("last_ticks = ticks")
            ctx.line("last_progress_at = now")
        with ctx.block(f"elif now - last_progress_at > {spec.deadlock_cycles}:"):
            ctx.line("raise sim._deadlock(now, last_progress_at, False)")
        if spec.replay:
            ctx.need("replay_check_runaway")
            ctx.line("replay_check_runaway()")
    with ctx.block(f"if now >= {spec.max_cycles}:"):
        ctx.line("raise sim._timeout(now, False)")


def _emit_wake_computation(ctx: KernelContext) -> None:
    spec = ctx.spec
    if spec.fold_wake_memory:
        ExternalMemory.emit_compiled_wake(ctx)
        TimedFpu.emit_compiled_wake(ctx)
    else:
        ctx.need("memory_next_event")
        ctx.line("wake = memory_next_event(now)")
    if spec.fold_wake_backend:
        Backend.emit_compiled_wake(ctx)
    else:
        ctx.need("backend_next_event")
        ctx.line("hint = backend_next_event(now)")
        with ctx.block("if hint < wake:"):
            ctx.line("wake = hint")
    if not spec.fold_hint_engine:
        ctx.need("engine_next_event")
        ctx.line("hint = engine_next_event(now)")
        with ctx.block("if hint < wake:"):
            ctx.line("wake = hint")
    if not spec.fold_hint_frontend:
        ctx.need("frontend_next_event")
        ctx.line("hint = frontend_next_event(now)")
        with ctx.block("if hint < wake:"):
            ctx.line("wake = hint")


def _emit_skip_block(ctx: KernelContext) -> None:
    spec = ctx.spec
    mask = spec.snapshot_mask
    interval = mask + 1
    with ctx.block("if clock.ticks == ticks_before:"):
        _emit_wake_computation(ctx)
        ctx.line("ticks = clock.ticks")
        with ctx.block("if ticks != last_ticks:"):
            ctx.line(f"first_snapshot = (now | {mask}) + 1")
            ctx.line("fire_base = first_snapshot")
        with ctx.block("else:"):
            ctx.line("first_snapshot = None")
            ctx.line("fire_base = last_progress_at")
        ctx.line(
            f"fire = -(-(fire_base + {spec.deadlock_cycles + 1}) "
            f"// {interval}) * {interval}"
        )
        with ctx.block(f"if fire <= wake and fire <= {spec.max_cycles}:"):
            ctx.line("target = fire")
            ctx.line("fate = 1")
        with ctx.block(f"elif {spec.max_cycles} <= wake:"):
            ctx.line(f"target = {spec.max_cycles}")
            ctx.line("fate = 2")
        with ctx.block("else:"):
            ctx.line("target = wake")
            ctx.line("fate = 0")
        with ctx.block("if target > now:"):
            ctx.line("span = target - now")
            ctx.line(
                "stall_reason = "
                "backend.last_stall_reason if not backend.halted else None"
            )
            with ctx.block("if stall_reason is not None:"):
                ctx.need("backend_stalls")
                ctx.line("backend_stalls[stall_reason] += span")
            ctx.line("conflict = mem_stats.acceptance_conflicts > conflicts_before")
            with ctx.block("if conflict:"):
                ctx.line("mem_stats.acceptance_conflicts += span")
            with ctx.block("if external.in_flight:"):
                ctx.need("external")
                ctx.line("external.busy_cycles += span")
            if spec.traced:
                with ctx.block("if stall_reason is not None or conflict:"):
                    ctx.line("candidates = memory.last_conflict_candidates")
                    with ctx.block("for cycle in range(now, target):"):
                        ctx.line("tracer.cycle = cycle")
                        with ctx.block("if stall_reason is not None:"):
                            ctx.line(
                                'tracer_emit("backend", "stall", '
                                "reason=stall_reason)"
                            )
                        with ctx.block("if conflict:"):
                            ctx.line(
                                'tracer_emit("mem", "conflict", '
                                "candidates=candidates)"
                            )
            with ctx.block("if first_snapshot is not None and first_snapshot <= target:"):
                ctx.line("last_ticks = ticks")
                ctx.line("last_progress_at = first_snapshot")
            ctx.line("now = target")
            with ctx.block("if fate == 1:"):
                ctx.line("raise sim._deadlock(now, last_progress_at, True)")
            with ctx.block("if fate == 2:"):
                ctx.line("raise sim._timeout(now, True)")


def generate_source(spec: KernelSpec) -> str:
    """Render the specialized run function for one spec.

    Pure: the same spec always renders byte-identical source (the
    golden test pins a representative config's output).
    """
    ctx = KernelContext(spec)
    traced = spec.traced
    ctx.need("memory", "mem_stats", "external", "fpu", "engine", "frontend",
             "backend", "clock", "frontend_halt")
    if traced:
        ctx.need("tracer", "tracer_emit")
        ctx.line("tracer.cycle = 0")
        ctx.line(
            f'tracer_emit("sim", "begin", strategy={spec.strategy!r}, '
            f"config={spec.describe!r})"
        )
    ctx.line("last_ticks = clock.ticks")
    ctx.line("last_progress_at = 0")
    with ctx.block("while True:"):
        if traced:
            ctx.line("tracer.cycle = now")
        ctx.line("ticks_before = clock.ticks")
        if spec.skip:
            ctx.line("conflicts_before = mem_stats.acceptance_conflicts")
        _emit_phase_begin(ctx)
        _emit_phase_update(ctx)
        _emit_phase_frontend_update(ctx)
        _emit_phase_step(ctx)
        with ctx.block("if backend.halted:"):
            ctx.line("frontend_halt()")
        _emit_phase_frontend_post_issue(ctx)
        _emit_phase_end(ctx)
        ctx.line("now += 1")
        _emit_drain_check(ctx)
        if spec.replay:
            _emit_replay_block(ctx)
        _emit_snapshot_block(ctx)
        if spec.skip:
            _emit_skip_block(ctx)
    ctx.line("return now")
    return ctx.render()


# ----------------------------------------------------------------------
# Compile cache
# ----------------------------------------------------------------------
class CompiledKernel:
    """One compiled specialization: the spec, its source, the function."""

    __slots__ = ("spec", "source", "fn")

    def __init__(self, spec: KernelSpec, source: str, fn):
        self.spec = spec
        self.source = source
        self.fn = fn

    def __call__(self, sim) -> int:
        """Run the kernel; returns the final architectural cycle."""
        return self.fn(sim)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CompiledKernel {self.spec.config_key[:12]} "
            f"traced={self.spec.traced} skip={self.spec.skip} "
            f"replay={self.spec.replay}>"
        )


_KERNEL_CACHE: dict[KernelSpec, CompiledKernel] = {}
_COMPILE_COUNT = 0
_KERNEL_HITS = 0
_CODEGEN_SECONDS = 0.0

#: Source-level cache: ``(source, code object)`` keyed by the *source
#: key* — every spec field the generated text depends on.  The untraced
#: kernel text is identical across icache sizes (only ``config_key``
#: and, when traced, ``describe`` vary within a config family), so a
#: five-size sweep family generates and byte-compiles once and only
#: re-``exec``s per spec.  Safe because kernels are pure text: all
#: per-spec state enters through :func:`_kernel_globals` at exec time.
_SOURCE_CACHE: dict[str, tuple[str, object]] = {}
_SOURCE_HITS = 0
_DISK_KERNEL_HITS = 0
_DISK_KERNEL_STORES = 0

#: The process's handle on the persistent artifact store (or ``None``
#: before first use / after ``clear_compile_cache``).  The escape hatch
#: is consulted on every access, so flipping ``REPRO_NO_DISK_CODEGEN``
#: mid-process takes effect immediately.
_DISK_STORE = None


def _disk_store():
    """The live :class:`~.codegen_store.CodegenStore`, or ``None`` (off)."""
    global _DISK_STORE
    if not disk_codegen_enabled_default():
        return None
    if _DISK_STORE is None:
        from .codegen_store import CodegenStore

        _DISK_STORE = CodegenStore()
    return _DISK_STORE


def _source_key(spec: KernelSpec) -> str:
    """Content address of the generated *text* for one spec.

    Excludes ``config_key`` (it appears only in the compile filename
    and the exec-time globals, never in the source) and blanks
    ``describe`` for untraced specs (it is only interpolated into the
    trace preamble), so every config in a kernel family — same machine
    shape, different icache size — shares one entry.  Folds
    :data:`ENGINE_REVISION` so a generator bump misses cleanly.
    """
    fields = asdict(spec)
    fields.pop("config_key")
    if not spec.traced:
        fields["describe"] = ""
    payload = repr(sorted(fields.items()))
    h = hashlib.sha256()
    h.update(ENGINE_REVISION.encode())
    h.update(b"\x00")
    h.update(payload.encode())
    return h.hexdigest()

#: Per-program dispatch tables, keyed ``(program_fingerprint,
#: config_key)``.  The config key already folds ``ENGINE_REVISION``
#: (see :func:`config_fingerprint`), so a generator bump invalidates
#: dispatch tables exactly as it invalidates kernels.
_DISPATCH_CACHE: dict[tuple[str, str], ProgramDispatchTable] = {}
_DISPATCH_HITS = 0

#: Per-program bundle bookkeeping for the persistent store:
#: ``program_fingerprint -> handler-entry count believed on disk``.
#: A program first seen in this process pre-installs its disk bundle
#: into the dispatch module's shared memo; :func:`flush_codegen_artifacts`
#: publishes back only when the fleet learned new handlers.
_BUNDLE_STATE: dict[str, int] = {}


def _dispatch_table_for(sim, config_key: str) -> ProgramDispatchTable:
    """The (cached) per-program dispatch table for one kernel run."""
    global _DISPATCH_HITS
    from ..cpu.dispatch import install_handler_bundle
    from .simcache import program_fingerprint

    program_key = program_fingerprint(sim.program)
    key = (program_key, config_key)
    table = _DISPATCH_CACHE.get(key)
    if table is None:
        if program_key not in _BUNDLE_STATE:
            _BUNDLE_STATE[program_key] = 0
            store = _disk_store()
            if store is not None:
                entries = store.load_dispatch(program_key)
                if entries:
                    install_handler_bundle(entries)
                    _BUNDLE_STATE[program_key] = len(entries)
        table = ProgramDispatchTable()
        _DISPATCH_CACHE[key] = table
    else:
        _DISPATCH_HITS += 1
    return table


def flush_codegen_artifacts() -> int:
    """Publish dispatch bundles that grew since their last publish.

    Kernel artifacts publish at compile time; handler bundles are
    filled lazily during kernel execution, so sweeps call this at
    natural barriers (end of a worker batch, end of a sweep).  Returns
    the number of bundles published.  Safe to call anytime: a bundle
    with nothing new is skipped, and an unwritable store never raises.
    """
    from ..cpu.dispatch import record_bundle_store, serialize_handlers

    store = _disk_store()
    if store is None or not _BUNDLE_STATE:
        return 0
    by_program: dict[str, set] = {}
    for (program_key, _config_key), table in _DISPATCH_CACHE.items():
        by_program.setdefault(program_key, set()).update(table.handlers)
    published = 0
    for program_key, instructions in by_program.items():
        if len(instructions) <= _BUNDLE_STATE.get(program_key, 0):
            continue
        entries = serialize_handlers(instructions)
        if not entries:
            continue
        try:
            store.store_dispatch(program_key, entries)
        except OSError:
            continue
        record_bundle_store()
        _BUNDLE_STATE[program_key] = len(entries)
        published += 1
    return published


def _kernel_globals(spec: KernelSpec) -> dict:
    return {
        "IDLE": IDLE,
        "execute": execute,
        "queue_effects": queue_effects,
        "_PendingBranch": _PendingBranch,
        "_is_fpu": is_fpu_address,
        "_acc_order": acceptance_order,
        "_PRIORITY": (
            RequestPriority.INSTRUCTION_FIRST
            if spec.instruction_first
            else RequestPriority.DATA_FIRST
        ),
        "K_LOAD": RequestKind.LOAD,
        "K_STORE": RequestKind.STORE,
        "DecodeError": DecodeError,
        "_dispatch_for": (
            lambda sim, _key=spec.config_key: _dispatch_table_for(sim, _key)
        ),
    }


def _compile(spec: KernelSpec) -> CompiledKernel:
    """Source/code for the spec's kernel family, ``exec``'d per spec.

    Resolution order: in-process source cache → disk artifact store
    (checksum-verified; corrupt entries quarantine and fall through) →
    full generation + bytecode compilation, published back to both.
    Only the last path counts as a *compile*; every path pays the
    per-spec ``exec`` that binds the family's code object to this
    spec's globals.
    """
    global _COMPILE_COUNT, _CODEGEN_SECONDS, _SOURCE_HITS
    global _DISK_KERNEL_HITS, _DISK_KERNEL_STORES
    started = time.perf_counter()
    skey = _source_key(spec)
    cached = _SOURCE_CACHE.get(skey)
    if cached is not None:
        source, code = cached
        _SOURCE_HITS += 1
    else:
        store = _disk_store()
        loaded = store.load_kernel(skey) if store is not None else None
        if loaded is not None:
            source, code = loaded
            _DISK_KERNEL_HITS += 1
        else:
            source = generate_source(spec)
            code = compile(source, f"<repro-kernel-{skey[:12]}>", "exec")
            _COMPILE_COUNT += 1
            if store is not None:
                try:
                    store.store_kernel(skey, source, code)
                    _DISK_KERNEL_STORES += 1
                except OSError:
                    pass  # unwritable store never blocks a run
        _SOURCE_CACHE[skey] = (source, code)
    namespace = _kernel_globals(spec)
    exec(code, namespace)  # noqa: S102 — the source is our own codegen
    _CODEGEN_SECONDS += time.perf_counter() - started
    return CompiledKernel(spec, source, namespace["__kernel"])


def prime_codegen_artifacts(program, configs) -> int:
    """Parent-side fleet warmup: publish each family's kernel artifact.

    Sweep drivers call this before fanning a cold sweep out to worker
    processes: every distinct kernel family in ``configs`` is resolved
    through the normal compile path (a disk load when the store
    already holds it, full codegen published back otherwise), so
    every worker's first point for a family costs a read + ``exec``
    instead of generation + bytecode compilation.  Without the
    persistent store this is a no-op — the fleet would have no channel
    to inherit the parent's warmth — as it is when the compiled engine
    itself is hatched off.  Returns the number of distinct families
    resolved.
    """
    from .scheduler import compiled_enabled_default
    from .simulator import Simulator

    store = _disk_store()
    if store is None or not compiled_enabled_default():
        return 0
    seen: set[str] = set()
    for config in configs:
        spec = kernel_spec_for(Simulator(config, program))
        skey = _source_key(spec)
        if skey in seen:
            continue
        seen.add(skey)
        kernel = _KERNEL_CACHE.get(spec)
        if kernel is None:
            _KERNEL_CACHE[spec] = _compile(spec)

    # Handler-bundle warmup: dispatch handlers fill only while a kernel
    # *runs*, so on a cold store every worker would re-derive the whole
    # per-program table before the first publish lands.  One parent-side
    # simulation of the first point fills and publishes the bundle ahead
    # of the pool; its result is discarded (the worker still owns the
    # point), and a failure here is never load-bearing — workers just
    # fall back to compiling their own handlers.
    from .simcache import program_fingerprint

    if configs and store.load_dispatch(program_fingerprint(program)) is None:
        from .simulator import simulate

        try:
            simulate(configs[0], program)
        except Exception:
            pass
        flush_codegen_artifacts()
    return len(seen)


def kernel_for(sim) -> CompiledKernel:
    """The (cached) compiled kernel serving one simulator instance."""
    global _KERNEL_HITS
    spec = kernel_spec_for(sim)
    kernel = _KERNEL_CACHE.get(spec)
    if kernel is None:
        kernel = _compile(spec)
        _KERNEL_CACHE[spec] = kernel
    else:
        _KERNEL_HITS += 1
    return kernel


def compile_stats() -> dict:
    """Codegen-cache observability: both cache levels plus codegen time.

    ``codegen_seconds`` sums kernel generation/compilation with the
    per-instruction dispatch-handler compiles (the dispatch module
    keeps its own cumulative clock).
    """
    dispatch = dispatch_codegen_stats()
    disk = _DISK_STORE
    return {
        "kernels": len(_KERNEL_CACHE),
        "compiles": _COMPILE_COUNT,
        "kernel_cache_hits": _KERNEL_HITS,
        "kernel_sources": len(_SOURCE_CACHE),
        "kernel_source_hits": _SOURCE_HITS,
        "disk_kernel_hits": _DISK_KERNEL_HITS,
        "disk_kernel_stores": _DISK_KERNEL_STORES,
        "codegen_seconds": _CODEGEN_SECONDS + dispatch["codegen_seconds"],
        "dispatch_tables": len(_DISPATCH_CACHE),
        "dispatch_handlers": sum(len(t) for t in _DISPATCH_CACHE.values()),
        "dispatch_handler_compiles": dispatch["handler_compiles"],
        "dispatch_handler_shared_hits": dispatch["shared_hits"],
        "dispatch_cache_hits": _DISPATCH_HITS,
        "disk_handler_hits": dispatch["disk_hits"],
        "disk_handler_stores": dispatch["disk_stores"],
        "codegen_quarantined": disk.stats.quarantined if disk is not None else 0,
    }


#: Numeric deltas reported back by pool workers, accumulated per worker
#: pid — the parent's own :func:`compile_stats` only ever sees its own
#: process, so fleet-wide codegen visibility rides the result channel.
_WORKER_STATS: dict[int, dict] = {}


def compile_stats_delta(baseline: dict | None = None) -> dict:
    """Current :func:`compile_stats` as a delta against ``baseline``.

    Tagged with the reporting process's pid so the parent can both
    count distinct workers and discard deltas that originated in its
    own process (the pool's serial fallback runs worker code inline,
    where the work is already visible to the parent's own counters).
    """
    stats = compile_stats()
    base = baseline or {}
    delta = {key: value - base.get(key, 0) for key, value in stats.items()}
    delta["pid"] = os.getpid()
    return delta


def record_worker_stats(delta: dict | None) -> None:
    """Fold one worker's :func:`compile_stats_delta` into the fleet view."""
    if not delta:
        return
    pid = delta.get("pid")
    if pid is None or pid == os.getpid():
        return  # in-process "worker": already counted by compile_stats
    accumulated = _WORKER_STATS.setdefault(pid, {})
    for key, value in delta.items():
        if key == "pid":
            continue
        accumulated[key] = accumulated.get(key, 0) + value


def fleet_compile_stats() -> dict:
    """:func:`compile_stats` summed across this process and its workers.

    Gauges (``kernels``, ``dispatch_tables``, ...) sum to fleet-resident
    totals; counters (``compiles``, ``disk_kernel_hits``, ...) sum to
    fleet-wide event counts.  ``workers`` counts the distinct worker
    processes that reported in.
    """
    fleet = dict(compile_stats())
    for accumulated in _WORKER_STATS.values():
        for key, value in accumulated.items():
            fleet[key] = fleet.get(key, 0) + value
    fleet["workers"] = len(_WORKER_STATS)
    return fleet


def clear_compile_cache(disk: bool = False) -> None:
    """Drop every cached kernel and per-program dispatch table.

    All in-process levels clear together — spec-keyed kernels, the
    shared source/code entries, dispatch tables, and the dispatch
    module's shared handler memo — so a stale program kernel cannot
    survive a clear (``tests/test_compiled_engine.py`` pins this).
    The handle on the persistent store is dropped too (a later compile
    re-resolves it against the current environment); pass ``disk=True``
    to also delete the on-disk artifacts themselves.  Fleet-stat
    accumulators and hit counters are cumulative across clears so
    tests can assert on deltas.
    """
    global _DISK_STORE
    _KERNEL_CACHE.clear()
    _SOURCE_CACHE.clear()
    _DISPATCH_CACHE.clear()
    _BUNDLE_STATE.clear()
    clear_dispatch_cache()
    if disk:
        store = _disk_store()
        if store is not None:
            store.clear()
    _DISK_STORE = None
