"""Simulation-as-a-service: a resilient asyncio job front door.

The design-space study behind every figure is the workload a shared
simulation service would receive: many clients probing overlapping
``(config, program)`` grids, most points repeats of each other.  This
module is that front door — a long-running asyncio job service over
the existing machinery (the engine-degradation ladder, the worker
pool, the content-addressed result cache) whose entire surface is
robustness:

**Admission control & backpressure.**  The service holds at most
:attr:`ServiceConfig.queue_limit` unfinished jobs (HTTP 429 beyond
that) and at most :attr:`ServiceConfig.tenant_quota` per tenant, so
one stampeding client cannot starve the rest.  When the number of
*distinct* in-flight simulations reaches
:attr:`ServiceConfig.shed_limit` the service sheds load: warm-cache
hits and coalesce joins are still served (they cost no pool work) but
requests that would start a new simulation get HTTP 503.

**Deadlines & cancellation.**  Every request carries a deadline
(default :attr:`ServiceConfig.default_deadline`).  It bounds the
per-attempt pool timeout, and a hung worker is killed — the pool is
respawned — rather than waited on.  A request whose deadline passes
gets a structured timeout, never a late result; a simulation whose
waiters have *all* timed out is abandoned, not requeued.

**Request coalescing.**  Jobs are keyed by the simulation cache's
content address (:func:`~repro.core.simcache.result_key`), so
concurrent requests for the same point share one in-flight simulation
and every waiter receives the byte-identical
:meth:`~repro.core.results.SimulationResult.checksum`.

**Graceful degradation.**  A :class:`~repro.core.resilience.BreakerBoard`
keeps one circuit breaker per fast-path engine rung: repeated rung
failures open the breaker and pin new points to the lower rungs
(byte-identical results, slower), half-open probes restore the fast
path when it heals.  The reference rung has no breaker — it is the
floor.

**Observability.**  ``GET /healthz`` answers from the event loop alone
(it cannot be wedged by pool trouble), ``GET /stats`` reports queue
depth, breaker states, coalesce hits, admission rejections, the
:class:`~repro.core.resilience.FaultReport` rollup and fleet codegen
stats, and sweep jobs stream per-point progress
(``GET /jobs/<id>/events``) backed by a
:class:`~repro.core.resilience.SweepCheckpoint` manifest.

Everything is stdlib: the HTTP layer is a minimal HTTP/1.1 parser over
``asyncio.start_server`` streams (no ``http.server``), and the
blocking :class:`ServiceClient` rides ``http.client``.  The
deterministic fault injectors (:mod:`repro.core.faults`) reach every
layer: ``worker_kill``/``point_hang`` fire inside pool workers,
``breaker_trip`` fails individual engine rungs, ``queue_full`` forces
admission rejections and ``slow_client`` delays response writes.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from ..asm.program import Program
from .config import MachineConfig
from .resilience import (
    BreakerBoard,
    FaultReport,
    SweepCheckpoint,
    _kill_pool,
    retry_backoff,
)
from .results import SimulationResult
from .simcache import SimulationCache, program_fingerprint, result_key

__all__ = [
    "AdmissionError",
    "DeadlineExceeded",
    "PointFailed",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceThread",
    "SimulationService",
    "serve",
]


# ----------------------------------------------------------------------
# Structured failures (each maps to one HTTP status + error type)
# ----------------------------------------------------------------------
class ServiceError(RuntimeError):
    """A request failure the service reports as structured JSON."""

    type = "error"
    status = 500


class AdmissionError(ServiceError):
    """The request was rejected before any work was done (429/503)."""

    def __init__(self, reason: str, status: int, detail: str):
        super().__init__(detail)
        self.type = reason
        self.status = status


class DeadlineExceeded(ServiceError):
    """The request's deadline passed before a result was produced."""

    type = "deadline"
    status = 504


class PointFailed(ServiceError):
    """The simulation itself failed after every recovery was exhausted."""

    type = "failed"
    status = 500


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass
class ServiceConfig:
    """Every robustness knob of one :class:`SimulationService`."""

    host: str = "127.0.0.1"
    #: 0 = pick a free port (read it back from ``service.port``)
    port: int = 0
    #: max unfinished jobs service-wide; beyond it submits get HTTP 429
    queue_limit: int = 64
    #: max unfinished jobs per tenant (the ``tenant`` request field)
    tenant_quota: int = 16
    #: distinct in-flight simulations beyond which *cold* requests are
    #: shed with HTTP 503 (warm hits and coalesce joins still served)
    shed_limit: int = 32
    #: worker processes; 0 runs points on in-process threads instead
    #: (fast to start, but a hung point cannot actually be killed and
    #: the process-level fault injectors are inert — test mode)
    pool_jobs: int = 0
    #: per-attempt ceiling on one pool execution; a point still running
    #: after this is treated as hung (pool killed, attempt charged)
    point_timeout: float | None = 30.0
    #: retries per point after worker crashes / hangs / engine faults
    max_retries: int = 2
    #: base for the decorrelated-jitter retry delay (0 disables)
    backoff: float = 0.05
    #: deadline applied to requests that do not carry their own
    default_deadline: float = 60.0
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0


# ----------------------------------------------------------------------
# The service core (usable directly from asyncio, no sockets required)
# ----------------------------------------------------------------------
class _Entry:
    """One in-flight simulation shared by every coalesced waiter."""

    __slots__ = ("key", "fields", "future", "deadlines", "task")

    def __init__(self, key: str, fields: dict, future: asyncio.Future):
        self.key = key
        self.fields = fields
        self.future = future
        #: absolute (monotonic) deadlines of currently-attached waiters;
        #: the executor abandons the point when all of them have passed
        self.deadlines: list[float] = []
        self.task: asyncio.Task | None = None


class _Job:
    """One asynchronous sweep job: many points, streamed progress."""

    __slots__ = (
        "id",
        "tenant",
        "total",
        "done",
        "state",
        "events",
        "subscribers",
        "errors",
        "checkpoint",
        "task",
    )

    def __init__(self, job_id: str, tenant: str, total: int):
        self.id = job_id
        self.tenant = tenant
        self.total = total
        self.done = 0
        self.state = "running"
        self.events: list[dict] = []
        self.subscribers: list[asyncio.Queue] = []
        self.errors: list[dict] = []
        self.checkpoint: SweepCheckpoint | None = None
        self.task: asyncio.Task | None = None

    def publish(self, event: dict) -> None:
        self.events.append(event)
        for queue in self.subscribers:
            queue.put_nowait(event)

    def to_dict(self) -> dict:
        payload = {
            "id": self.id,
            "state": self.state,
            "total": self.total,
            "done": self.done,
            "progress": (self.done / self.total) if self.total else 1.0,
            "errors": list(self.errors),
        }
        if self.checkpoint is not None:
            payload["checkpoint_points"] = len(self.checkpoint)
        return payload


class SimulationService:
    """The job service core plus its minimal HTTP/JSON front end.

    One instance serves one benchmark :class:`Program` (points differ
    by :class:`MachineConfig`), mirroring the sweep drivers.  The core
    methods (:meth:`resolve_point`, :meth:`submit_job`, :meth:`stats`)
    are plain asyncio and fully usable without any socket;``start()``
    additionally binds the HTTP listener.
    """

    def __init__(
        self,
        program: Program,
        config: ServiceConfig | None = None,
        cache: SimulationCache | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.program = program
        self.config = config or ServiceConfig()
        self.cache = cache
        self._clock = clock
        self._program_fp = program_fingerprint(program)
        self.report = FaultReport()
        self.breakers = BreakerBoard(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
            clock=clock,
        )
        self._inflight: dict[str, _Entry] = {}
        self._jobs: dict[str, _Job] = {}
        self._job_seq = itertools.count(1)
        self._open_jobs = 0
        self._tenant_jobs: dict[str, int] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._threads: ThreadPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._started_at = clock()
        # Counters (all surfaced by /stats)
        self.coalesce_hits = 0
        self.simulations = 0
        self.deadline_misses = 0
        self.pool_respawns = 0
        self.rejected: dict[str, int] = {
            "queue_full": 0,
            "tenant_quota": 0,
            "load_shed": 0,
        }

    # ------------------------------------------------------------------
    # Worker pool management
    # ------------------------------------------------------------------
    def _ensure_executor(self) -> None:
        from .parallel import _init_simulation_worker

        if self.config.pool_jobs <= 0:
            if self._threads is None:
                # In-process mode: the "workers" are threads of this
                # process, so the program must be installed here once.
                _init_simulation_worker(self.program)
                self._threads = ThreadPoolExecutor(
                    max_workers=max(4, self.config.shed_limit),
                    thread_name_prefix="repro-service",
                )
            return
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.pool_jobs,
                initializer=_init_simulation_worker,
                initargs=(self.program,),
            )

    def _respawn_pool(self, reason: str) -> None:
        if self._pool is None:
            return  # thread mode: nothing to kill
        _kill_pool(self._pool)
        self._pool = None
        self.pool_respawns += 1
        self.report.record("pool", "pool_respawn", detail=reason)

    async def _run_point(
        self, key: str, fields: dict, rungs: Sequence[str], timeout: float
    ):
        from .parallel import _service_point

        loop = asyncio.get_running_loop()
        self._ensure_executor()
        task = (key, fields, tuple(rungs))
        if self._pool is not None:
            future = asyncio.wrap_future(
                self._pool.submit(_service_point, task), loop=loop
            )
        else:
            future = loop.run_in_executor(self._threads, _service_point, task)
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.CancelledError:
            if asyncio.current_task().cancelling():
                raise  # the service is stopping: genuine cancellation
            # Crossfire from a pool respawn: killing the pool for one
            # hung point cancels sibling submissions still queued.
            # That is a pool-level failure of *this attempt*, not a
            # cancellation of the job — retry it like a worker crash.
            raise BrokenExecutor(
                "pool task cancelled by a respawn"
            ) from None

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _admit(self, key: str, tenant: str, cold: bool) -> None:
        from .faults import queue_full_rejection

        if queue_full_rejection(key):
            self.rejected["queue_full"] += 1
            raise AdmissionError(
                "queue_full", 429, "injected queue-full rejection"
            )
        if self._open_jobs >= self.config.queue_limit:
            self.rejected["queue_full"] += 1
            raise AdmissionError(
                "queue_full",
                429,
                f"job queue full ({self._open_jobs}/"
                f"{self.config.queue_limit} unfinished jobs)",
            )
        if self._tenant_jobs.get(tenant, 0) >= self.config.tenant_quota:
            self.rejected["tenant_quota"] += 1
            raise AdmissionError(
                "tenant_quota",
                429,
                f"tenant {tenant!r} already has "
                f"{self.config.tenant_quota} jobs in flight",
            )
        if cold and len(self._inflight) >= self.config.shed_limit:
            self.rejected["load_shed"] += 1
            raise AdmissionError(
                "load_shed",
                503,
                f"pool saturated ({len(self._inflight)} simulations in "
                "flight); serving warm-cache hits only",
            )

    # ------------------------------------------------------------------
    # The point pipeline: admission → coalesce → execute → deliver
    # ------------------------------------------------------------------
    async def resolve_point(
        self,
        fields: dict,
        tenant: str = "anon",
        deadline: float | None = None,
    ) -> dict:
        """Serve one simulation point; the synchronous request path.

        Returns the response payload (key, serving rung, checksum, the
        serialized result, and whether this waiter coalesced onto an
        existing simulation).  Raises a :class:`ServiceError` subclass
        for every structured failure.
        """
        try:
            config = MachineConfig.from_dict(dict(fields))
        except (TypeError, ValueError, KeyError) as exc:
            error = AdmissionError(
                "bad_request", 400, f"invalid config: {exc}"
            )
            raise error from exc
        key = result_key(config, self.program, self._program_fp)
        budget = (
            self.config.default_deadline if deadline is None else float(deadline)
        )
        abs_deadline = self._clock() + budget

        entry = self._inflight.get(key)
        coalesced = entry is not None
        if entry is None:
            hit = (
                self.cache.lookup(config, self.program)
                if self.cache is not None
                else None
            )
            if hit is not None:
                return self._payload(key, hit, "cache", coalesced=False)
            self._admit(key, tenant, cold=True)
            entry = _Entry(key, config.to_dict(), asyncio.get_running_loop().create_future())
            self._inflight[key] = entry
            entry.task = asyncio.create_task(self._execute(entry))
        else:
            self._admit(key, tenant, cold=False)
            self.coalesce_hits += 1

        self._open_jobs += 1
        self._tenant_jobs[tenant] = self._tenant_jobs.get(tenant, 0) + 1
        entry.deadlines.append(abs_deadline)
        try:
            remaining = abs_deadline - self._clock()
            result, rung = await asyncio.wait_for(
                asyncio.shield(entry.future), max(0.0, remaining)
            )
        except asyncio.TimeoutError:
            self.deadline_misses += 1
            raise DeadlineExceeded(
                f"deadline of {budget:g}s passed before point "
                f"{key[:12]} completed"
            ) from None
        finally:
            self._open_jobs -= 1
            self._tenant_jobs[tenant] -= 1
            if not self._tenant_jobs[tenant]:
                del self._tenant_jobs[tenant]
            try:
                entry.deadlines.remove(abs_deadline)
            except ValueError:
                pass
        return self._payload(key, result, rung, coalesced=coalesced)

    def _payload(
        self, key: str, result: SimulationResult, rung: str, coalesced: bool
    ) -> dict:
        return {
            "key": key,
            "rung": rung,
            "coalesced": coalesced,
            "checksum": result.checksum(),
            "result": result.to_dict(),
        }

    async def _execute(self, entry: _Entry) -> None:
        """Drive one unique simulation to a result (or a structured end).

        Runs as its own task; delivery happens through ``entry.future``
        so every coalesced waiter observes the same outcome.
        """
        from .simulator import DeadlockError, SimulationTimeout

        attempts = 0
        point = entry.key[:12]
        try:
            while True:
                now = self._clock()
                horizon = max(entry.deadlines, default=now)
                if horizon <= now:
                    # Nobody is waiting anymore: requeue nothing.
                    self.report.record(
                        point,
                        "abandoned",
                        detail="every waiter's deadline passed mid-run",
                        attempt=attempts,
                    )
                    raise DeadlineExceeded(
                        f"point {point} abandoned: all waiters timed out"
                    )
                budget = horizon - now
                timeout = (
                    budget
                    if self.config.point_timeout is None
                    else min(self.config.point_timeout, budget)
                )
                rungs = self.breakers.effective_rungs()
                try:
                    value = await self._run_point(
                        entry.key, entry.fields, rungs, timeout
                    )
                except asyncio.TimeoutError:
                    attempts += 1
                    self.report.record(
                        point,
                        "timeout",
                        detail=f"no result after {timeout:g}s",
                        attempt=attempts,
                    )
                    self._respawn_pool("hung worker killed after point timeout")
                    if attempts > self.config.max_retries:
                        raise DeadlineExceeded(
                            f"point {point} timed out on every attempt"
                        ) from None
                    continue
                except (BrokenExecutor, OSError) as exc:
                    attempts += 1
                    self.report.record(
                        point,
                        "worker_crash",
                        detail=f"worker died ({type(exc).__name__}: {exc})",
                        attempt=attempts,
                    )
                    self._respawn_pool("worker process died mid-point")
                    if attempts > self.config.max_retries:
                        raise PointFailed(
                            f"point {point} kept crashing workers: {exc}"
                        ) from exc
                    if self.config.backoff:
                        await asyncio.sleep(
                            retry_backoff(
                                self.config.backoff, attempts, entry.key
                            )
                        )
                    continue
                except (DeadlockError, SimulationTimeout) as exc:
                    # Architectural outcome: identical on every rung and
                    # every retry — report it, never mask it.
                    raise PointFailed(
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                except Exception as exc:  # noqa: BLE001 — supervisor boundary
                    attempts += 1
                    self.report.record(
                        point,
                        "retry",
                        detail=f"{type(exc).__name__}: {exc}",
                        attempt=attempts,
                    )
                    if attempts > self.config.max_retries:
                        raise PointFailed(
                            f"point {point} failed after {attempts} "
                            f"attempts: {type(exc).__name__}: {exc}"
                        ) from exc
                    if self.config.backoff:
                        await asyncio.sleep(
                            retry_backoff(
                                self.config.backoff, attempts, entry.key
                            )
                        )
                    continue

                result, rung, events = value
                self.breakers.observe(rung, events)
                self.report.extend(events)
                self.report.tally_rung(rung)
                self.simulations += 1
                if self.cache is not None:
                    config = MachineConfig.from_dict(entry.fields)
                    self.cache.store(config, self.program, result)
                entry.future.set_result((result, rung))
                return
        except asyncio.CancelledError:
            if not entry.future.done():
                entry.future.cancel()
            raise
        except BaseException as exc:
            if not entry.future.done():
                entry.future.set_exception(exc)
                # Every waiter may have timed out already; mark the
                # exception retrieved so an unobserved future does not
                # warn at teardown.
                entry.future.exception()
            if not isinstance(exc, ServiceError):
                raise
        finally:
            self._inflight.pop(entry.key, None)

    # ------------------------------------------------------------------
    # Sweep jobs: many points, checkpointed, progress streamed
    # ------------------------------------------------------------------
    def submit_job(
        self,
        configs: Sequence[dict],
        tenant: str = "anon",
        deadline: float | None = None,
    ) -> _Job:
        """Accept one asynchronous sweep job (admission applies)."""
        configs = [dict(fields) for fields in configs]
        if not configs:
            raise AdmissionError("bad_request", 400, "a job needs configs")
        self._admit(f"job:{tenant}", tenant, cold=False)
        job = _Job(f"job-{next(self._job_seq)}", tenant, len(configs))
        if self.cache is not None:
            job.checkpoint = SweepCheckpoint(
                self.cache.root / "service-jobs" / f"{job.id}.json"
            )
            job.checkpoint.acquire()
        self._jobs[job.id] = job
        job.task = asyncio.ensure_future(
            self._run_job(job, configs, tenant, deadline)
        )
        return job

    async def _run_job(
        self,
        job: _Job,
        configs: list[dict],
        tenant: str,
        deadline: float | None,
    ) -> None:
        semaphore = asyncio.Semaphore(max(1, self.config.shed_limit // 2))

        async def one(fields: dict) -> None:
            async with semaphore:
                try:
                    payload = await self.resolve_point(
                        fields, tenant=tenant, deadline=deadline
                    )
                except ServiceError as exc:
                    job.errors.append(
                        {"type": exc.type, "detail": str(exc)}
                    )
                    event = {"type": "error", "error": exc.type}
                except Exception as exc:  # noqa: BLE001 — job boundary
                    job.errors.append(
                        {
                            "type": "internal",
                            "detail": f"{type(exc).__name__}: {exc}",
                        }
                    )
                    event = {"type": "error", "error": "internal"}
                else:
                    if job.checkpoint is not None:
                        job.checkpoint.add(
                            payload["key"],
                            SimulationResult.from_dict(payload["result"]),
                        )
                    event = {
                        "type": "point",
                        "key": payload["key"],
                        "rung": payload["rung"],
                        "checksum": payload["checksum"],
                    }
                job.done += 1
                event["done"] = job.done
                event["total"] = job.total
                job.publish(event)

        try:
            await asyncio.gather(*(one(fields) for fields in configs))
        finally:
            job.state = "failed" if job.errors else "done"
            if job.checkpoint is not None:
                job.checkpoint.flush()
                job.checkpoint.release()
            job.publish({"type": "end", "state": job.state})

    async def job_events(self, job: _Job):
        """Async iterator over one job's events (replay, then live)."""
        queue: asyncio.Queue = asyncio.Queue()
        job.subscribers.append(queue)
        try:
            for event in list(job.events):
                yield event
                if event.get("type") == "end":
                    return
            while True:
                event = await queue.get()
                yield event
                if event.get("type") == "end":
                    return
        finally:
            job.subscribers.remove(queue)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        from .compiled import fleet_compile_stats

        cache_stats = None
        if self.cache is not None:
            cache_stats = {
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
                "stores": self.cache.stats.stores,
                "quarantined": self.cache.stats.quarantined,
            }
        job_states: dict[str, int] = {}
        for job in self._jobs.values():
            job_states[job.state] = job_states.get(job.state, 0) + 1
        return {
            "uptime": self._clock() - self._started_at,
            "queue": {
                "open_jobs": self._open_jobs,
                "queue_limit": self.config.queue_limit,
                "executing": len(self._inflight),
                "shed_limit": self.config.shed_limit,
            },
            "coalesce_hits": self.coalesce_hits,
            "simulations": self.simulations,
            "deadline_misses": self.deadline_misses,
            "pool_respawns": self.pool_respawns,
            "rejected": dict(self.rejected),
            "breakers": self.breakers.to_dict(),
            "faults": self.report.counts(),
            "rungs": dict(self.report.rungs),
            "cache": cache_stats,
            "jobs": job_states,
            "codegen": fleet_compile_stats(),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("service not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "SimulationService":
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for job in self._jobs.values():
            if job.task is not None and not job.task.done():
                job.task.cancel()
            if job.checkpoint is not None:
                job.checkpoint.release()
        for entry in list(self._inflight.values()):
            if entry.task is not None and not entry.task.done():
                entry.task.cancel()
        self._inflight.clear()
        if self._pool is not None:
            _kill_pool(self._pool)
            self._pool = None
        if self._threads is not None:
            self._threads.shutdown(wait=False, cancel_futures=True)
            self._threads = None

    # ------------------------------------------------------------------
    # The HTTP layer (minimal HTTP/1.1 over asyncio streams)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, body = request
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away: nothing to serve
        except ServiceError as exc:
            try:
                _write_response(
                    writer,
                    exc.status,
                    {"error": {"type": exc.type, "detail": str(exc)}},
                )
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        except Exception as exc:  # noqa: BLE001 — connection boundary
            try:
                _write_response(
                    writer,
                    500,
                    {"error": {"type": "internal", "detail": str(exc)}},
                )
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        from .faults import slow_client_delay

        if method == "GET" and path == "/healthz":
            # Answered entirely from the event loop: no pool, no disk.
            _write_response(
                writer,
                200,
                {"ok": True, "uptime": self._clock() - self._started_at},
            )
            await writer.drain()
            return
        if method == "GET" and path == "/stats":
            _write_response(writer, 200, self.stats())
            await writer.drain()
            return
        if method == "POST" and path == "/simulate":
            payload = _parse_json(body)
            fields = payload.get("config")
            if not isinstance(fields, dict):
                raise AdmissionError(
                    "bad_request", 400, "missing 'config' object"
                )
            try:
                response = await self.resolve_point(
                    fields,
                    tenant=str(payload.get("tenant", "anon")),
                    deadline=payload.get("deadline"),
                )
                status = 200
            except ServiceError as exc:
                response = {"error": {"type": exc.type, "detail": str(exc)}}
                status = exc.status
            delay = slow_client_delay(response.get("key", path))
            if delay:
                await asyncio.sleep(delay)
            _write_response(writer, status, response)
            await writer.drain()
            return
        if method == "POST" and path == "/jobs":
            payload = _parse_json(body)
            configs = payload.get("configs")
            if not isinstance(configs, list):
                raise AdmissionError(
                    "bad_request", 400, "missing 'configs' list"
                )
            try:
                job = self.submit_job(
                    configs,
                    tenant=str(payload.get("tenant", "anon")),
                    deadline=payload.get("deadline"),
                )
                _write_response(writer, 202, job.to_dict())
            except ServiceError as exc:
                _write_response(
                    writer,
                    exc.status,
                    {"error": {"type": exc.type, "detail": str(exc)}},
                )
            await writer.drain()
            return
        if method == "GET" and path.startswith("/jobs/"):
            parts = path.split("/")
            job = self._jobs.get(parts[2]) if len(parts) >= 3 else None
            if job is None:
                _write_response(
                    writer,
                    404,
                    {"error": {"type": "not_found", "detail": path}},
                )
                await writer.drain()
                return
            if len(parts) == 4 and parts[3] == "events":
                # Close-delimited NDJSON stream: one event per line,
                # ended by the job's terminal event + connection close.
                writer.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/x-ndjson\r\n"
                    b"Connection: close\r\n\r\n"
                )
                async for event in self.job_events(job):
                    writer.write(json.dumps(event).encode() + b"\n")
                    await writer.drain()
                return
            _write_response(writer, 200, job.to_dict())
            await writer.drain()
            return
        _write_response(
            writer,
            404,
            {"error": {"type": "not_found", "detail": f"{method} {path}"}},
        )
        await writer.drain()


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: ceiling on one request body (a config dict or a modest sweep)
_MAX_BODY = 8 * 1024 * 1024


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes] | None:
    """Parse one request: ``(method, path, body)``; ``None`` on EOF."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, path, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise ValueError(f"malformed request line {line!r}") from None
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = min(int(value.strip()), _MAX_BODY)
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, body


def _parse_json(body: bytes) -> dict:
    if not body:
        return {}
    try:
        payload = json.loads(body)
    except ValueError as exc:
        raise AdmissionError(
            "bad_request", 400, f"request body is not JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise AdmissionError(
            "bad_request", 400, "request body must be a JSON object"
        )
    return payload


def _write_response(
    writer: asyncio.StreamWriter, status: int, payload: dict
) -> None:
    body = json.dumps(payload).encode()
    writer.write(
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n".encode() + body
    )


# ----------------------------------------------------------------------
# Running the service
# ----------------------------------------------------------------------
async def serve(
    program: Program,
    config: ServiceConfig | None = None,
    cache: SimulationCache | None = None,
    ready: Callable[[SimulationService], None] | None = None,
) -> None:
    """Run a service until cancelled (the ``repro-sim serve`` body)."""
    service = SimulationService(program, config, cache)
    await service.start()
    if ready is not None:
        ready(service)
    try:
        await asyncio.Event().wait()  # until cancelled
    finally:
        await service.stop()


class ServiceThread:
    """A service on a background event loop — tests and scripted clients.

    ::

        with ServiceThread(program, config, cache) as handle:
            client = ServiceClient("127.0.0.1", handle.port)
            status, payload = client.simulate(config_fields)
    """

    def __init__(
        self,
        program: Program,
        config: ServiceConfig | None = None,
        cache: SimulationCache | None = None,
    ):
        self.service = SimulationService(program, config, cache)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.service.port

    def __enter__(self) -> "ServiceThread":
        started = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.service.start())
            except BaseException as exc:  # noqa: BLE001 — reported to caller
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.service.stop())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            raise failure[0]
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)


# ----------------------------------------------------------------------
# A blocking client (http.client; one connection per request)
# ----------------------------------------------------------------------
class ServiceClient:
    """Minimal synchronous client for scripts, tests and the CI session."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        import http.client

        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            return response.status, (json.loads(data) if data else {})
        finally:
            connection.close()

    def healthz(self) -> tuple[int, dict]:
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        return self.request("GET", "/stats")[1]

    def simulate(
        self,
        fields: dict,
        tenant: str = "anon",
        deadline: float | None = None,
    ) -> tuple[int, dict]:
        payload: dict = {"config": fields, "tenant": tenant}
        if deadline is not None:
            payload["deadline"] = deadline
        return self.request("POST", "/simulate", payload)

    def submit_job(
        self,
        configs: Sequence[dict],
        tenant: str = "anon",
        deadline: float | None = None,
    ) -> tuple[int, dict]:
        payload: dict = {"configs": list(configs), "tenant": tenant}
        if deadline is not None:
            payload["deadline"] = deadline
        return self.request("POST", "/jobs", payload)

    def job(self, job_id: str) -> tuple[int, dict]:
        return self.request("GET", f"/jobs/{job_id}")

    def job_events(self, job_id: str):
        """Iterate one job's NDJSON event stream until its end marker."""
        import http.client

        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", f"/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status != 200:
                raise ServiceError(
                    f"event stream failed with HTTP {response.status}"
                )
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()
