"""Simulation results and statistics containers.

The paper's performance metric is the **total number of cycles needed to
execute the benchmark program** (section 6).  :class:`SimulationResult`
carries that number plus the supporting statistics every component
collected, so the analysis layer can explain *why* one configuration
beats another (stall breakdowns, hit rates, bus occupancy, queue
pressure).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from ..frontend.base import FetchStats
from ..frontend.icache import CacheStats
from ..frontend.tib import TibStats
from ..memory.system import MemoryStats
from .config import MachineConfig

__all__ = ["QueueSnapshot", "SimulationResult"]

#: Tags used to round-trip the concrete FetchStats class through JSON.
_FETCH_STATS_KINDS: dict[str, type[FetchStats]] = {
    "fetch": FetchStats,
    "tib": TibStats,
}


@dataclass(frozen=True)
class QueueSnapshot:
    """Final statistics of one architectural queue."""

    name: str
    pushes: int
    pops: int
    max_occupancy: int


@dataclass
class SimulationResult:
    """Everything a finished cycle-level run reports."""

    config: MachineConfig
    cycles: int
    instructions: int
    halted: bool
    cache: CacheStats
    fetch: FetchStats
    memory: MemoryStats
    stalls: dict[str, int] = field(default_factory=dict)
    queues: dict[str, QueueSnapshot] = field(default_factory=dict)
    branches: int = 0
    branches_taken: int = 0
    loads: int = 0
    stores: int = 0
    fpu_operations: int = 0
    ordering_hazards: int = 0
    #: trace-derived counters (``TraceMetrics.to_dict()``) when the run
    #: was traced with a metrics sink; ``None`` for untraced runs
    trace_metrics: dict | None = None

    @property
    def ipc(self) -> float:
        """Instructions per cycle (1.0 is the machine's upper bound)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def total_stalls(self) -> int:
        return sum(self.stalls.values())

    # ------------------------------------------------------------------
    # Serialization (the simulation cache persists results as JSON)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe dict; :meth:`from_dict` round-trips to equality."""
        fetch_kind = next(
            tag
            for tag, cls in _FETCH_STATS_KINDS.items()
            if type(self.fetch) is cls
        )
        return {
            "config": self.config.to_dict(),
            "cycles": self.cycles,
            "instructions": self.instructions,
            "halted": self.halted,
            "cache": asdict(self.cache),
            "fetch_kind": fetch_kind,
            "fetch": asdict(self.fetch),
            "memory": asdict(self.memory),
            "stalls": dict(self.stalls),
            "queues": {name: asdict(snap) for name, snap in self.queues.items()},
            "branches": self.branches,
            "branches_taken": self.branches_taken,
            "loads": self.loads,
            "stores": self.stores,
            "fpu_operations": self.fpu_operations,
            "ordering_hazards": self.ordering_hazards,
            "trace_metrics": self.trace_metrics,
        }

    def canonical_json(self) -> str:
        """Deterministic JSON of :meth:`to_dict` (sorted keys, no spaces).

        Two results are byte-identical iff their canonical JSON is —
        the form the crash-safe simulation cache checksums, and the one
        the fault-injection tests compare against a clean reference.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def checksum(self) -> str:
        """SHA-256 of :meth:`canonical_json`; embedded in cache entries."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        fetch_cls = _FETCH_STATS_KINDS[data.get("fetch_kind", "fetch")]
        return cls(
            config=MachineConfig.from_dict(data["config"]),
            cycles=data["cycles"],
            instructions=data["instructions"],
            halted=data["halted"],
            cache=CacheStats(**data["cache"]),
            fetch=fetch_cls(**data["fetch"]),
            memory=MemoryStats(**data["memory"]),
            stalls=dict(data["stalls"]),
            queues={
                name: QueueSnapshot(**snap)
                for name, snap in data["queues"].items()
            },
            branches=data["branches"],
            branches_taken=data["branches_taken"],
            loads=data["loads"],
            stores=data["stores"],
            fpu_operations=data["fpu_operations"],
            ordering_hazards=data["ordering_hazards"],
            trace_metrics=data.get("trace_metrics"),
        )

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"configuration : {self.config.describe()}",
            f"cycles        : {self.cycles}",
            f"instructions  : {self.instructions} (IPC {self.ipc:.3f})",
            f"icache        : {self.cache.hits} hits / {self.cache.misses} misses "
            f"({self.cache.hit_rate:.1%})",
            f"fetch         : {self.fetch.demand_requests} demand + "
            f"{self.fetch.prefetch_requests} prefetch requests, "
            f"{self.fetch.prefetch_promotions} promotions, "
            f"{self.fetch.redirects} redirects",
            f"memory        : {self.memory.loads_accepted} loads, "
            f"{self.memory.stores_accepted} stores, "
            f"{self.memory.fpu_stores_accepted} FPU stores, "
            f"{self.memory.fpu_loads_accepted} FPU result loads",
            f"input bus     : busy {self.memory.input_bus_busy_cycles} cycles, "
            f"{self.memory.input_bus_bytes} bytes",
        ]
        stall_parts = [
            f"{name}={count}" for name, count in sorted(self.stalls.items()) if count
        ]
        lines.append(f"stalls        : {' '.join(stall_parts) or 'none'}")
        queue_parts = [
            f"{snapshot.name}:max={snapshot.max_occupancy}"
            for snapshot in self.queues.values()
        ]
        lines.append(f"queues        : {' '.join(queue_parts) or 'n/a'}")
        return "\n".join(lines)
