"""Simulation results and statistics containers.

The paper's performance metric is the **total number of cycles needed to
execute the benchmark program** (section 6).  :class:`SimulationResult`
carries that number plus the supporting statistics every component
collected, so the analysis layer can explain *why* one configuration
beats another (stall breakdowns, hit rates, bus occupancy, queue
pressure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.base import FetchStats
from ..frontend.icache import CacheStats
from ..memory.system import MemoryStats
from .config import MachineConfig

__all__ = ["QueueSnapshot", "SimulationResult"]


@dataclass(frozen=True)
class QueueSnapshot:
    """Final statistics of one architectural queue."""

    name: str
    pushes: int
    pops: int
    max_occupancy: int


@dataclass
class SimulationResult:
    """Everything a finished cycle-level run reports."""

    config: MachineConfig
    cycles: int
    instructions: int
    halted: bool
    cache: CacheStats
    fetch: FetchStats
    memory: MemoryStats
    stalls: dict[str, int] = field(default_factory=dict)
    queues: dict[str, QueueSnapshot] = field(default_factory=dict)
    branches: int = 0
    branches_taken: int = 0
    loads: int = 0
    stores: int = 0
    fpu_operations: int = 0
    ordering_hazards: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per cycle (1.0 is the machine's upper bound)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def total_stalls(self) -> int:
        return sum(self.stalls.values())

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"configuration : {self.config.describe()}",
            f"cycles        : {self.cycles}",
            f"instructions  : {self.instructions} (IPC {self.ipc:.3f})",
            f"icache        : {self.cache.hits} hits / {self.cache.misses} misses "
            f"({self.cache.hit_rate:.1%})",
            f"fetch         : {self.fetch.demand_requests} demand + "
            f"{self.fetch.prefetch_requests} prefetch requests, "
            f"{self.fetch.prefetch_promotions} promotions, "
            f"{self.fetch.redirects} redirects",
            f"memory        : {self.memory.loads_accepted} loads, "
            f"{self.memory.stores_accepted} stores, "
            f"{self.memory.fpu_stores_accepted} FPU stores, "
            f"{self.memory.fpu_loads_accepted} FPU result loads",
            f"input bus     : busy {self.memory.input_bus_busy_cycles} cycles, "
            f"{self.memory.input_bus_bytes} bytes",
        ]
        stall_parts = [
            f"{name}={count}" for name, count in sorted(self.stalls.items()) if count
        ]
        lines.append(f"stalls        : {' '.join(stall_parts) or 'none'}")
        queue_parts = [
            f"{snapshot.name}:max={snapshot.max_occupancy}"
            for snapshot in self.queues.values()
        ]
        lines.append(f"queues        : {' '.join(queue_parts) or 'n/a'}")
        return "\n".join(lines)
