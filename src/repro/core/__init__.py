"""Simulator core: configuration, the cycle-level machine, and results."""

from .config import (
    PAPER_CACHE_SIZES,
    PIPE_CONFIGURATIONS,
    FetchStrategy,
    MachineConfig,
    PipeConfiguration,
)
from .results import QueueSnapshot, SimulationResult
from .simulator import DeadlockError, SimulationTimeout, Simulator, simulate

__all__ = [
    "DeadlockError",
    "FetchStrategy",
    "MachineConfig",
    "PAPER_CACHE_SIZES",
    "PIPE_CONFIGURATIONS",
    "PipeConfiguration",
    "QueueSnapshot",
    "SimulationResult",
    "SimulationTimeout",
    "Simulator",
    "simulate",
]
