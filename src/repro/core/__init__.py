"""Simulator core: configuration, the cycle-level machine, and results.

Public names are imported lazily (PEP 562, like the top-level package)
so that low-level modules — the queues, the instruction cache, the
frontends — can import :mod:`repro.core.trace` without dragging the
whole simulator in and creating an import cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "DeadlockError": ("repro.core.simulator", "DeadlockError"),
    "FaultPlan": ("repro.core.faults", "FaultPlan"),
    "FaultReport": ("repro.core.resilience", "FaultReport"),
    "FetchStrategy": ("repro.core.config", "FetchStrategy"),
    "ServiceClient": ("repro.core.service", "ServiceClient"),
    "ServiceConfig": ("repro.core.service", "ServiceConfig"),
    "ServiceThread": ("repro.core.service", "ServiceThread"),
    "SimulationService": ("repro.core.service", "SimulationService"),
    "SweepCheckpoint": ("repro.core.resilience", "SweepCheckpoint"),
    "SweepPointError": ("repro.core.resilience", "SweepPointError"),
    "SweepSupervisor": ("repro.core.resilience", "SweepSupervisor"),
    "ladder_simulate": ("repro.core.resilience", "ladder_simulate"),
    "supervised_map": ("repro.core.resilience", "supervised_map"),
    "MachineConfig": ("repro.core.config", "MachineConfig"),
    "PAPER_CACHE_SIZES": ("repro.core.config", "PAPER_CACHE_SIZES"),
    "PIPE_CONFIGURATIONS": ("repro.core.config", "PIPE_CONFIGURATIONS"),
    "PipeConfiguration": ("repro.core.config", "PipeConfiguration"),
    "QueueSnapshot": ("repro.core.results", "QueueSnapshot"),
    "SimulationResult": ("repro.core.results", "SimulationResult"),
    "SimulationTimeout": ("repro.core.simulator", "SimulationTimeout"),
    "Simulator": ("repro.core.simulator", "Simulator"),
    "simulate": ("repro.core.simulator", "simulate"),
    "simulate_traced": ("repro.core.simulator", "simulate_traced"),
    "MetricsSink": ("repro.core.trace", "MetricsSink"),
    "TraceMetrics": ("repro.core.trace", "TraceMetrics"),
    "Tracer": ("repro.core.trace", "Tracer"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
