"""Deterministic fault injection for the resilient execution layer.

Large sweeps only earn trust in their fault handling if the faults can
be *reproduced*: a retry path that fires once a month is a retry path
that rots.  This module provides seeded injectors for the failure
classes the supervisor (:mod:`repro.core.resilience`) and the job
service (:mod:`repro.core.service`) must survive:

``worker_kill``
    the worker process running a sweep point calls ``os._exit`` —
    the hard crash that breaks a ``ProcessPoolExecutor`` mid-sweep;
``point_hang``
    a sweep point sleeps past the supervisor's per-point timeout;
``cache_corrupt``
    a just-stored simulation-cache entry is truncated in place,
    emulating a process killed halfway through a (non-atomic) write;
``replay_diverge``
    the steady-state replay engine raises :class:`InjectedFault` at a
    loop backedge, emulating a fast-path bug that escapes the
    engine's own divergence handling;
``breaker_trip``
    an engine rung raises :class:`InjectedFault` *before* simulating,
    emulating a persistently broken fast path — the repeated failures
    the service's per-rung circuit breakers exist to notice (the
    ``reference`` rung is exempt: the ladder's floor must hold);
``queue_full``
    the service's admission control reports a full job queue for the
    firing submission, exercising the structured 429 path without
    needing a real stampede;
``slow_client``
    the service handles the firing request as if its client trickled
    bytes (an injected delay), exercising per-connection timeouts and
    proving one slow connection cannot wedge the event loop.

Whether an injector fires for a given point is a pure function of the
plan's ``seed``, the injector kind, and the point's content key, so a
run with ``--inject-faults seed=7,...`` hits exactly the same points
every time.  Crash/hang/corrupt injectors additionally fire **once**
per point, coordinated across processes through marker files in the
plan's scratch directory — the retry of a killed point must succeed,
not die again forever.

The active plan travels through the ``REPRO_FAULT_PLAN`` environment
variable (as the CLI's engine switches do), so sweep worker processes
inherit it without any explicit plumbing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "InjectedFault",
    "activate",
    "active_plan",
    "deactivate",
    "point_key",
    "corrupt_stored_entry",
    "maybe_hang_point",
    "maybe_kill_worker",
    "maybe_trip_rung",
    "queue_full_rejection",
    "replay_fault_hook",
    "seeded_uniform",
    "slow_client_delay",
]

#: Environment variable carrying the active plan (JSON) to workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: The injector kinds, in the order they act on a sweep point (the
#: service-facing kinds act on a request before it becomes a point).
FAULT_KINDS = (
    "worker_kill",
    "point_hang",
    "cache_corrupt",
    "replay_diverge",
    "breaker_trip",
    "queue_full",
    "slow_client",
)

#: injectors that must fire at most once per point (their effect would
#: otherwise defeat every retry)
_ONCE_KINDS = frozenset({"worker_kill", "point_hang", "cache_corrupt"})

#: ``--inject-faults`` spec aliases → plan field names
_SPEC_ALIASES = {
    "kill": "worker_kill",
    "hang": "point_hang",
    "corrupt": "cache_corrupt",
    "diverge": "replay_diverge",
    "trip": "breaker_trip",
    "qfull": "queue_full",
    "queue-full": "queue_full",
    "slow": "slow_client",
    "hang-seconds": "hang_seconds",
    "hang_seconds": "hang_seconds",
    "slow-seconds": "slow_seconds",
    "slow_seconds": "slow_seconds",
    "seed": "seed",
}


def seeded_uniform(seed: int, *parts: str) -> float:
    """A deterministic uniform draw in ``[0, 1)`` from a pure hash.

    Every seeded decision in the fault/resilience stack — which points
    an injector fires for, how long a jittered retry backs off — flows
    through this one function, so "same seed, same behaviour" holds
    across processes and platforms (no :mod:`random` state involved).
    """
    digest = hashlib.sha256(
        ":".join((str(seed), *parts)).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class InjectedFault(RuntimeError):
    """An error raised deliberately by the fault-injection harness."""


@dataclass(frozen=True)
class FaultPlan:
    """One seeded fault-injection campaign.

    The ``worker_kill`` / ``point_hang`` / ``cache_corrupt`` /
    ``replay_diverge`` fields are per-point firing rates in ``[0, 1]``;
    which points fire is decided by :meth:`fires`, a pure hash of
    ``(seed, kind, point key)``.  ``scratch_dir`` hosts the cross-process
    once-markers; without one the once-only injectors stay inert.
    """

    seed: int = 0
    worker_kill: float = 0.0
    point_hang: float = 0.0
    cache_corrupt: float = 0.0
    replay_diverge: float = 0.0
    breaker_trip: float = 0.0
    queue_full: float = 0.0
    slow_client: float = 0.0
    #: how long a hung point sleeps (keep above the supervisor timeout)
    hang_seconds: float = 5.0
    #: how long an injected slow client stalls its request handling
    slow_seconds: float = 0.5
    #: directory for the cross-process once-only markers
    scratch_dir: str | None = None
    #: pid of the supervising process (set by :func:`activate`); the
    #: worker-crash/hang injectors emulate *worker* failures and stay
    #: inert in this process — killing the supervisor itself would turn
    #: a drill into the disaster, and the serial-fallback path runs
    #: points in exactly this process
    host_pid: int | None = None

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from an ``--inject-faults`` spec string.

        A bare integer (``"42"``) seeds a default campaign that enables
        every injector at a 25% rate; otherwise the spec is
        ``key=value`` pairs separated by commas, e.g.
        ``"seed=7,kill=0.3,hang=0.1,corrupt=0.5,diverge=0.5"`` or
        ``"seed=7,trip=0.5,qfull=0.2,slow=0.1,slow-seconds=0.3"``.
        """
        spec = spec.strip()
        if not spec:
            raise ValueError("empty --inject-faults spec")
        try:
            seed = int(spec)
        except ValueError:
            pass
        else:
            return cls(seed=seed, **{kind: 0.25 for kind in FAULT_KINDS})
        fields = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"bad --inject-faults item {part!r}")
            name = _SPEC_ALIASES.get(key.strip(), key.strip())
            if name not in {f.name for f in dataclasses.fields(cls)}:
                raise ValueError(f"unknown --inject-faults key {key.strip()!r}")
            if name == "seed":
                fields[name] = int(value)
            elif name == "scratch_dir":
                fields[name] = value.strip()
            else:
                fields[name] = float(value)
        return cls(**fields)

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, raw: str) -> "FaultPlan":
        return cls(**json.loads(raw))

    # ------------------------------------------------------------------
    def rate(self, kind: str) -> float:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        return getattr(self, kind)

    def fires(self, kind: str, key: str) -> bool:
        """Deterministic per-point decision: hash(seed, kind, key) < rate."""
        rate = self.rate(kind)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return seeded_uniform(self.seed, kind, key) < rate

    def fires_once(self, kind: str, key: str) -> bool:
        """:meth:`fires` gated by a cross-process once-per-point marker.

        The marker lives in ``scratch_dir`` and is claimed atomically
        (``O_CREAT | O_EXCL``), so exactly one process ever sees
        ``True`` for a given ``(kind, key)``.  Without a scratch
        directory the once-only injectors never fire — an injector that
        cannot promise "once" would turn every retry into a new fault.
        """
        if self.scratch_dir is None or not self.fires(kind, key):
            return False
        marker = Path(self.scratch_dir) / f"{kind}-{key[:32]}"
        try:
            marker.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False  # unwritable scratch: stay inert
        os.close(fd)
        return True


# ----------------------------------------------------------------------
# Activation (environment channel, so worker processes inherit it)
# ----------------------------------------------------------------------
_cached: tuple[str | None, FaultPlan | None] = (None, None)


def activate(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide (and for any workers spawned later).

    If the plan enables a once-only injector but names no scratch
    directory, a private temporary one is created for it; the
    (possibly updated) active plan is returned.
    """
    needs_scratch = any(plan.rate(kind) > 0 for kind in _ONCE_KINDS)
    if needs_scratch and plan.scratch_dir is None:
        plan = dataclasses.replace(
            plan, scratch_dir=tempfile.mkdtemp(prefix="repro-faults-")
        )
    if plan.host_pid is None:
        plan = dataclasses.replace(plan, host_pid=os.getpid())
    os.environ[FAULT_PLAN_ENV] = plan.to_json()
    return plan


def deactivate() -> None:
    """Disarm fault injection for this process and future workers."""
    os.environ.pop(FAULT_PLAN_ENV, None)


def active_plan() -> FaultPlan | None:
    """The armed plan, or ``None``.  Reads (and memoizes) the env var."""
    global _cached
    raw = os.environ.get(FAULT_PLAN_ENV)
    if raw == _cached[0]:
        return _cached[1]
    plan = None
    if raw:
        try:
            plan = FaultPlan.from_json(raw)
        except (ValueError, TypeError):
            plan = None  # a garbled plan injects nothing
    _cached = (raw, plan)
    return plan


# ----------------------------------------------------------------------
# Injection points
# ----------------------------------------------------------------------
def point_key(config) -> str:
    """The content key a sweep point is addressed by (config fingerprint)."""
    from .simcache import config_fingerprint  # late: avoid an import cycle

    return config_fingerprint(config)


def _in_worker(plan: FaultPlan) -> bool:
    """True when this process is a pool worker, not the supervisor."""
    return plan.host_pid is None or plan.host_pid != os.getpid()


def maybe_kill_worker(key: str) -> None:
    """Hard-crash this worker process if the plan says so (once per key).

    Inert in the supervising process (serial runs and the supervisor's
    serial-fallback path): this injector emulates a *worker* death.
    """
    plan = active_plan()
    if plan is not None and _in_worker(plan) and plan.fires_once(
        "worker_kill", key
    ):
        os._exit(33)


def maybe_hang_point(key: str) -> None:
    """Sleep past the supervisor timeout if the plan says so (once per key).

    Inert in the supervising process, where no timeout can kill the
    hang — a drill must not wedge the supervisor itself.
    """
    plan = active_plan()
    if plan is not None and _in_worker(plan) and plan.fires_once(
        "point_hang", key
    ):
        time.sleep(plan.hang_seconds)


def maybe_trip_rung(rung: str, key: str) -> None:
    """Fail engine rung ``rung`` for point ``key`` if the plan says so.

    Raised *before* the rung simulates, emulating a persistently broken
    fast path: unlike the once-only crash injectors this fires on every
    attempt for a firing ``(rung, key)`` pair, which is exactly the
    repeated-failure signature a per-rung circuit breaker must notice.
    The ``reference`` rung is exempt — the ladder's floor produces the
    ground-truth numbers and must always hold — so every injected trip
    still ends in a byte-identical result one rung down.
    """
    if rung == "reference":
        return
    plan = active_plan()
    if plan is not None and plan.fires("breaker_trip", f"{rung}:{key}"):
        raise InjectedFault(
            f"injected engine-rung failure ({rung}) for point {key}"
        )


def queue_full_rejection(key: str) -> bool:
    """True when admission control must pretend the job queue is full.

    Lets the service's structured 429 path be rehearsed deterministically
    — per submission key, not per wall-clock load — without needing a
    real client stampede to fill the queue first.
    """
    plan = active_plan()
    return plan is not None and plan.fires("queue_full", key)


def slow_client_delay(key: str) -> float:
    """Seconds the service should stall handling this request (0 = none).

    Emulates a client that trickles its request in: the service awaits
    the delay *asynchronously*, so the drill proves a slow connection
    costs only its own latency, never the event loop (``/healthz`` must
    keep answering throughout).
    """
    plan = active_plan()
    if plan is not None and plan.fires("slow_client", key):
        return plan.slow_seconds
    return 0.0


def corrupt_stored_entry(path, key: str) -> bool:
    """Truncate a just-stored cache entry in place (once per key).

    Emulates a writer killed mid-write *without* the atomic-publish
    protection: the entry exists, parses as a JSON prefix at best, and
    must be caught by the cache's checksum verification.
    """
    plan = active_plan()
    if plan is None or not plan.fires_once("cache_corrupt", key):
        return False
    try:
        raw = Path(path).read_text()
        Path(path).write_text(raw[: max(1, len(raw) // 2)])
    except OSError:
        return False
    return True


def replay_fault_hook(config):
    """A backedge hook raising :class:`InjectedFault`, or ``None``.

    Armed per simulation point: when the plan's ``replay_diverge``
    injector fires for this config, the returned callable — invoked by
    the replay controller at every loop backedge — raises, emulating a
    fast-path bug.  The engine-degradation ladder must then re-run the
    point with replay disabled.  Inert (``None``) when no plan is
    active, so the simulator pays nothing in normal runs.
    """
    plan = active_plan()
    if plan is None or plan.replay_diverge <= 0.0:
        return None
    if not plan.fires("replay_diverge", point_key(config)):
        return None

    def hook(target: int, now: int) -> None:
        raise InjectedFault(
            f"injected replay-engine divergence at backedge "
            f"pc={target:#x} cycle={now}"
        )

    return hook
