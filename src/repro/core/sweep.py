"""Parameter sweeps over cache size and machine configuration.

Every figure in the paper's evaluation plots **total execution cycles**
(y) against **instruction cache size in bytes** (x) for five curves: the
four PIPE configurations of Table II plus the conventional cache.  This
module provides that sweep as a reusable driver.

The sweep is the hot path of the whole reproduction, so it layers two
optimisations (both off by default and fully deterministic):

* ``jobs`` fans the independent ``(strategy, size)`` points out over
  worker processes (:mod:`repro.core.parallel`); series come back in
  the same order with bit-identical cycle counts;
* ``cache`` consults a content-addressed result store
  (:mod:`repro.core.simcache`) so points shared between experiments —
  or repeated across runs — are never re-simulated.

A third, orthogonal layer makes big sweeps *finish*: passing a
:class:`~repro.core.resilience.SweepSupervisor` routes cache misses
through the supervised worker pool (per-point timeouts, bounded
retries, crashed-pool recovery, the engine-degradation ladder inside
every worker), records every recovery action — including cache
quarantines — in the supervisor's
:class:`~repro.core.resilience.FaultReport`, and checkpoints completed
points so an interrupted sweep resumes instead of restarting.  The
numbers are byte-identical with or without a supervisor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..asm.program import Program
from .config import PAPER_CACHE_SIZES, PIPE_CONFIGURATIONS, MachineConfig
from .parallel import simulate_many
from .resilience import FaultReport, SweepSupervisor
from .results import SimulationResult
from .simcache import SimulationCache, sweep_point_keys

__all__ = [
    "SweepSeries",
    "standard_strategies",
    "run_cache_sweep",
]

#: A strategy factory maps a cache size (plus overrides) to a config.
StrategyFactory = Callable[..., MachineConfig]


@dataclass
class SweepSeries:
    """One curve of a figure: cycles for each swept cache size."""

    label: str
    cache_sizes: list[int]
    cycles: list[int]
    results: list[SimulationResult] = field(repr=False, default_factory=list)
    #: the sweep's recovery ledger when it ran supervised (shared by
    #: every series of the sweep); ``None`` for unsupervised sweeps
    fault_report: FaultReport | None = field(
        repr=False, compare=False, default=None
    )

    def as_dict(self) -> dict[int, int]:
        return dict(zip(self.cache_sizes, self.cycles))

    @property
    def flatness(self) -> float:
        """max/min cycles across the sweep — 1.0 means perfectly flat.

        The paper highlights that the best PIPE configurations "display a
        much more uniform performance across all cache sizes".  A series
        with fewer than two points (every swept size was skipped, or only
        one survived) is trivially flat: 1.0.
        """
        if len(self.cycles) < 2:
            return 1.0
        return max(self.cycles) / min(self.cycles)


def standard_strategies() -> dict[str, StrategyFactory]:
    """The five curves of every figure, in plotting order."""
    strategies: dict[str, StrategyFactory] = {}
    for name in PIPE_CONFIGURATIONS:
        strategies[f"PIPE {name}"] = (
            lambda size, _name=name, **overrides: MachineConfig.pipe(
                _name, size, **overrides
            )
        )
    strategies["conventional"] = (
        lambda size, **overrides: MachineConfig.conventional(size, **overrides)
    )
    return strategies


def run_cache_sweep(
    program: Program,
    cache_sizes: Sequence[int] = PAPER_CACHE_SIZES,
    strategies: dict[str, StrategyFactory] | None = None,
    jobs: int | None = 1,
    cache: SimulationCache | None = None,
    supervisor: SweepSupervisor | None = None,
    **overrides,
) -> list[SweepSeries]:
    """Simulate every strategy at every cache size.

    ``overrides`` are common machine parameters (``memory_access_time``,
    ``input_bus_width``, ``memory_pipelined``, ...).  Cache sizes smaller
    than a strategy's line size are skipped for that strategy (a 32-byte
    line cannot live in a 16-byte cache), mirroring the paper's figures
    where the 16-32/32-32 curves start at 32 bytes.

    ``jobs`` > 1 runs the points across worker processes; ``cache``
    short-circuits points already simulated (and persists the rest).
    ``supervisor`` runs the misses fault-tolerantly (timeouts, retries,
    crash recovery, engine degradation, checkpoint/resume) and attaches
    its :class:`~repro.core.resilience.FaultReport` to every returned
    series.  All three preserve ordering and produce results identical
    to the plain serial path.
    """
    if strategies is None:
        strategies = standard_strategies()

    # Enumerate every valid (series, size, config) point up front so
    # misses can be batched to the worker pool in one deterministic list.
    points: list[tuple[int, int, MachineConfig]] = []
    labels = list(strategies)
    for index, label in enumerate(labels):
        factory = strategies[label]
        for size in cache_sizes:
            try:
                config = factory(size, **overrides)
            except ValueError:
                continue  # cache smaller than this strategy's line size
            points.append((index, size, config))

    resolved: dict[int, SimulationResult] = {}
    if supervisor is not None:
        _run_supervised(program, points, cache, supervisor, resolved)
    else:
        misses: list[tuple[int, MachineConfig]] = []
        for point_id, (_index, _size, config) in enumerate(points):
            hit = cache.lookup(config, program) if cache is not None else None
            if hit is not None:
                resolved[point_id] = hit
            else:
                misses.append((point_id, config))

        if misses:
            fresh = simulate_many(
                program, [config for _, config in misses], jobs=jobs
            )
            for (point_id, config), result in zip(misses, fresh):
                resolved[point_id] = result
                if cache is not None:
                    cache.store(config, program, result)

    # Publish any dispatch handlers this process learned while filling
    # misses (workers flush at their own batch boundaries; the serial
    # path and the parent's share land here).  No-op when the
    # persistent store is disabled or nothing new was compiled.
    from .compiled import flush_codegen_artifacts

    flush_codegen_artifacts()

    report = supervisor.report if supervisor is not None else None
    series = [
        SweepSeries(
            label=label,
            cache_sizes=[],
            cycles=[],
            results=[],
            fault_report=report,
        )
        for label in labels
    ]
    for point_id, (index, size, _config) in enumerate(points):
        result = resolved[point_id]
        series[index].cache_sizes.append(size)
        series[index].cycles.append(result.cycles)
        series[index].results.append(result)
    return series


def _run_supervised(
    program: Program,
    points: list[tuple[int, int, MachineConfig]],
    cache: SimulationCache | None,
    supervisor: SweepSupervisor,
    resolved: dict[int, SimulationResult],
) -> None:
    """Resolve every sweep point under the fault supervisor.

    Resolution order per point: the checkpoint manifest (``--resume``),
    then the content-addressed cache (quarantines recorded in the
    supervisor's report), then the supervised worker pool.  Completed
    misses are stored to both the cache and the checkpoint as they
    arrive, so progress survives a crash at any moment.
    """
    report = supervisor.report
    checkpoint = supervisor.checkpoint
    if checkpoint is not None:
        # Exclusive manifest lock: a second supervised run against the
        # same checkpoint fails fast (CheckpointLockError) instead of
        # interleaving partial manifest publishes with this one.
        # Idempotent, so the sweeps of one report share one claim; the
        # caller releases it when the supervised session ends.
        checkpoint.acquire()
    configs = [config for _index, _size, config in points]
    keys = sweep_point_keys(program, configs)

    if cache is not None:
        cache.quarantine_hook = lambda key, reason: report.record(
            key[:12], "cache_quarantine", detail=reason
        )
    try:
        misses: list[tuple[int, MachineConfig, str]] = []
        for point_id, config in enumerate(configs):
            key = keys[point_id]
            if checkpoint is not None and supervisor.resume:
                result = checkpoint.get(key)
                if result is not None:
                    resolved[point_id] = result
                    supervisor.resumed += 1
                    continue
            hit = cache.lookup(config, program) if cache is not None else None
            if hit is not None:
                resolved[point_id] = hit
            else:
                misses.append((point_id, config, key))

        if misses:

            def on_result(miss_pos: int, result: SimulationResult) -> None:
                point_id, config, key = misses[miss_pos]
                resolved[point_id] = result
                if cache is not None:
                    cache.store(config, program, result)
                if checkpoint is not None:
                    checkpoint.add(key, result)

            supervisor.simulate_points(
                program,
                [config for _, config, _ in misses],
                keys=[key for _, _, key in misses],
                on_result=on_result,
            )
    finally:
        if cache is not None:
            cache.quarantine_hook = None
        if checkpoint is not None:
            checkpoint.flush()
