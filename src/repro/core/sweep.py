"""Parameter sweeps over cache size and machine configuration.

Every figure in the paper's evaluation plots **total execution cycles**
(y) against **instruction cache size in bytes** (x) for five curves: the
four PIPE configurations of Table II plus the conventional cache.  This
module provides that sweep as a reusable driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..asm.program import Program
from .config import PAPER_CACHE_SIZES, PIPE_CONFIGURATIONS, MachineConfig
from .results import SimulationResult
from .simulator import simulate

__all__ = [
    "SweepSeries",
    "standard_strategies",
    "run_cache_sweep",
]

#: A strategy factory maps a cache size (plus overrides) to a config.
StrategyFactory = Callable[..., MachineConfig]


@dataclass
class SweepSeries:
    """One curve of a figure: cycles for each swept cache size."""

    label: str
    cache_sizes: list[int]
    cycles: list[int]
    results: list[SimulationResult] = field(repr=False, default_factory=list)

    def as_dict(self) -> dict[int, int]:
        return dict(zip(self.cache_sizes, self.cycles))

    @property
    def flatness(self) -> float:
        """max/min cycles across the sweep — 1.0 means perfectly flat.

        The paper highlights that the best PIPE configurations "display a
        much more uniform performance across all cache sizes".
        """
        return max(self.cycles) / min(self.cycles)


def standard_strategies() -> dict[str, StrategyFactory]:
    """The five curves of every figure, in plotting order."""
    strategies: dict[str, StrategyFactory] = {}
    for name in PIPE_CONFIGURATIONS:
        strategies[f"PIPE {name}"] = (
            lambda size, _name=name, **overrides: MachineConfig.pipe(
                _name, size, **overrides
            )
        )
    strategies["conventional"] = (
        lambda size, **overrides: MachineConfig.conventional(size, **overrides)
    )
    return strategies


def run_cache_sweep(
    program: Program,
    cache_sizes: Sequence[int] = PAPER_CACHE_SIZES,
    strategies: dict[str, StrategyFactory] | None = None,
    **overrides,
) -> list[SweepSeries]:
    """Simulate every strategy at every cache size.

    ``overrides`` are common machine parameters (``memory_access_time``,
    ``input_bus_width``, ``memory_pipelined``, ...).  Cache sizes smaller
    than a strategy's line size are skipped for that strategy (a 32-byte
    line cannot live in a 16-byte cache), mirroring the paper's figures
    where the 16-32/32-32 curves start at 32 bytes.
    """
    if strategies is None:
        strategies = standard_strategies()
    series: list[SweepSeries] = []
    for label, factory in strategies.items():
        sizes: list[int] = []
        cycles: list[int] = []
        results: list[SimulationResult] = []
        for size in cache_sizes:
            try:
                config = factory(size, **overrides)
            except ValueError:
                continue  # cache smaller than this strategy's line size
            result = simulate(config, program)
            sizes.append(size)
            cycles.append(result.cycles)
            results.append(result)
        series.append(
            SweepSeries(label=label, cache_sizes=sizes, cycles=cycles, results=results)
        )
    return series
