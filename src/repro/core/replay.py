"""Steady-state loop replay: memoize warm loop iterations.

Once a benchmark loop reaches its steady state, every iteration drives
the machine through the *same* cycle-by-cycle evolution: the same
stalls, the same cache hits, the same bus arbitration — only the data
values stride.  This module exploits that by memoizing one iteration's
effect on the machine and then applying it arithmetically, iteration
after iteration, without simulating the cycles in between.

The protocol is **record → verify → engage**, keyed by loop backedge
target:

1. **Record.**  At a backward redirect (a loop backedge) the controller
   fingerprints the whole machine via the components'
   ``state_signature`` hooks (times relative to ``now``, sequence
   numbers relative to the allocator, LRU stamps reduced to rank order;
   data values excluded).  It then records one full iteration: the
   cycle and sequence-number deltas, the delta of *every* simulation
   counter (see :class:`StatsBook`), the issued instruction stream with
   outcomes, the data-engine event stream, and (when tracing) the raw
   trace-event batch.
2. **Verify.**  The next live iteration is recorded the same way and
   must reproduce the first record *exactly* — same cycles, same
   counter deltas, same instruction outcomes, same event shapes — and
   return the machine to the same signature.  Only then is the loop
   **engaged**.
3. **Replay.**  On each further signature match the controller replays
   iterations arithmetically: a *shadow functional pass* re-executes
   the recorded instruction stream against copies of the register
   banks, a memory-write overlay, and the FIFO value chain of the load
   queues, checking every timing-relevant data dependence (branch
   outcomes, FPU-window addresses, store/load ordering-hazard counts).
   If anything differs the shadow is discarded and live simulation
   resumes from the untouched boundary state — divergence never needs
   a rollback.  On success the shadow's functional state is committed,
   queue entries are rotated through their FIFO chains, all timed
   state is shifted by the iteration's deltas (``replay_shift``), and
   every counter advances by its recorded delta.

Byte-identity invariants:

* counters are *never* recomputed during replay — the shadow pass is
  counter-silent and the recorded deltas are applied arithmetically,
  so results match the reference engine field for field;
* max-style counters (queue ``max_occupancy``, LDQ wait high-water)
  must show a zero delta over the verified iteration, else the loop
  never engages;
* under tracing, a loop engages only if its recorded and verified
  event batches are byte-identical after cycle normalisation; batches
  containing striding payloads (data addresses, sequence numbers)
  never match, so such loops simply stay live and the JSONL output is
  trivially preserved;
* replay refuses to advance past ``max_cycles``, so timeout and
  deadlock errors report true architectural cycles.

``replay=False``, ``--no-replay`` or ``REPRO_NO_REPLAY=1`` disable the
controller entirely for differential testing.
"""

from __future__ import annotations

import dataclasses
from collections import deque

from ..asm.program import WORD_BYTES
from ..cpu.executor import execute
from ..cpu.state import ArchState
from ..memory.fpu import (
    FPU_OPERAND_A,
    FPU_RESULT,
    TRIGGER_OPERATIONS,
    float32_op,
    is_fpu_address,
)

__all__ = ["ReplayController", "StatsBook", "machine_signature"]


# ----------------------------------------------------------------------
# Machine fingerprint
# ----------------------------------------------------------------------
def machine_signature(sim, now: int) -> tuple:
    """Fingerprint of everything that determines future *timing*.

    Component signatures make times ``now``-relative and sequence
    numbers allocator-relative, so a steady-state loop produces the
    same tuple at every backedge.  Pure (no component state is
    mutated) and cheap enough to evaluate once per backedge.
    """
    base_seq = sim.seq.value
    return (
        sim.backend.state_signature(now, base_seq),
        sim.frontend.state_signature(now, base_seq),
        sim.engine.state_signature(now, base_seq),
        sim.memory.state_signature(now, base_seq),
        sim.cache.state_signature(),
    )


# ----------------------------------------------------------------------
# The counter ledger
# ----------------------------------------------------------------------
#: counters that track a running maximum rather than a sum; a loop may
#: only engage once these stop moving (delta 0 over an iteration)
MAX_FIELDS = frozenset({"ldq_max_wait_entries", "max_occupancy"})


class StatsBook:
    """Complete ledger of every counter a simulation reports.

    Dataclass-based stats objects are introspected field by field, so a
    newly added counter is picked up automatically — or, if its type is
    not something the replay engine knows how to delta (``int`` or a
    ``str -> int`` dict), :class:`StatsBook` raises at construction
    instead of silently corrupting replayed results.  Plain-attribute
    counters (backend, queues, external memory, timed FPU) are listed
    explicitly; ``tests/test_replay_engine.py`` pins those manifests.

    ``engine.fpu_core.operations_started`` is deliberately absent: the
    semantic FPU core is *functional* state, advanced by the shadow
    pass itself.
    """

    #: (owner attribute path, counter names) for non-dataclass counters
    PLAIN_COUNTERS = (
        ("backend", ("instructions", "branches", "branches_taken")),
        ("memory.external", ("total_accepted", "busy_cycles")),
        ("memory.fpu", ("operations_started", "results_delivered")),
    )
    QUEUE_COUNTERS = ("total_pushes", "total_pops", "max_occupancy")

    def __init__(self, sim):
        entries: list[tuple[str, str, object, object]] = []

        def add_attr(obj, name: str, label: str) -> None:
            kind = "max" if name in MAX_FIELDS else "add"
            value = getattr(obj, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise RuntimeError(
                    f"replay cannot account for counter {label!r} of type "
                    f"{type(value).__name__}; teach StatsBook about it"
                )
            entries.append((label, kind, obj, name))

        def add_dict(obj, name: str, label: str) -> None:
            entries.append((label, "dict", obj, name))

        def add_dataclass(obj, label: str) -> None:
            for field in dataclasses.fields(obj):
                value = getattr(obj, field.name)
                if isinstance(value, dict):
                    add_dict(obj, field.name, f"{label}.{field.name}")
                else:
                    add_attr(obj, field.name, f"{label}.{field.name}")

        backend = sim.backend
        add_dataclass(sim.frontend.stats, "fetch")
        add_dataclass(sim.cache.stats, "cache")
        add_dataclass(sim.memory.stats, "mem")
        add_dataclass(sim.engine.stats, "engine")
        for path, names in self.PLAIN_COUNTERS:
            obj = sim
            for part in path.split("."):
                obj = getattr(obj, part)
            for name in names:
                add_attr(obj, name, f"{path}.{name}")
        add_dict(backend, "stalls", "backend.stalls")
        for queue in (sim.engine.laq, sim.engine.ldq, sim.engine.saq, sim.engine.sdq):
            for name in self.QUEUE_COUNTERS:
                add_attr(queue, name, f"queue.{queue.name}.{name}")
        self._entries = entries
        self.labels = tuple(entry[0] for entry in entries)

    # ------------------------------------------------------------------
    def snapshot(self) -> tuple:
        """Current value of every counter (dicts canonicalised)."""
        values = []
        for _label, kind, obj, name in self._entries:
            value = getattr(obj, name)
            if kind == "dict":
                values.append(tuple(sorted(value.items())))
            else:
                values.append(value)
        return tuple(values)

    def diff(self, before: tuple, after: tuple) -> tuple:
        """Per-counter delta between two snapshots."""
        deltas = []
        for (_label, kind, _obj, _name), a, b in zip(self._entries, before, after):
            if kind == "dict":
                prior = dict(a)
                deltas.append(
                    tuple(
                        (key, value - prior.get(key, 0))
                        for key, value in b
                        if value != prior.get(key, 0)
                    )
                )
            else:
                deltas.append(b - a)
        return tuple(deltas)

    def max_deltas_zero(self, delta: tuple) -> bool:
        """True when no max-style counter moved over the iteration."""
        for (_label, kind, _obj, _name), d in zip(self._entries, delta):
            if kind == "max" and d != 0:
                return False
        return True

    def apply(self, delta: tuple) -> None:
        """Advance every counter by one iteration's recorded delta."""
        for (_label, kind, obj, name), d in zip(self._entries, delta):
            if kind == "add":
                if d:
                    setattr(obj, name, getattr(obj, name) + d)
            elif kind == "dict":
                if d:
                    target = getattr(obj, name)
                    for key, dv in d:
                        target[key] = target.get(key, 0) + dv
            # "max" deltas are zero by the engagement precondition


# ----------------------------------------------------------------------
# Iteration records
# ----------------------------------------------------------------------
class _IterationRecord:
    """One memoized loop iteration (deltas plus replay inputs)."""

    __slots__ = (
        "cycles",
        "seqs",
        "delta",
        "instrs",
        "events",
        "trace",
        "engageable",
        "sd_count",
    )

    def __init__(self, cycles, seqs, delta, instrs, events, trace, engageable):
        self.cycles = cycles
        self.seqs = seqs
        self.delta = delta
        self.instrs = instrs
        self.events = events
        self.trace = trace
        self.engageable = engageable
        self.sd_count = sum(1 for event in events if event[0] == "sd")

    def matches(self, other: "_IterationRecord") -> bool:
        return (
            self.cycles == other.cycles
            and self.seqs == other.seqs
            and self.delta == other.delta
            and self.instrs == other.instrs
            and self.events == other.events
            and self.trace == other.trace
        )


#: loop-state phases
_RECORD, _VERIFY, _ENGAGED, _DEAD = range(4)

_PHASE_NAMES = {
    _RECORD: "recording",
    _VERIFY: "verifying",
    _ENGAGED: "engaged",
    _DEAD: "abandoned",
}


class _LoopState:
    """Per-backedge-target replay state machine plus statistics."""

    __slots__ = (
        "phase",
        "sig",
        "candidate",
        "record",
        "fails",
        "restarts",
        "backedges",
        "sig_mismatches",
        "recorded",
        "replayed",
        "replayed_cycles",
        "divergences",
    )

    def __init__(self):
        self.phase = _RECORD
        self.sig = None
        self.candidate: _IterationRecord | None = None
        self.record: _IterationRecord | None = None
        self.fails = 0
        self.restarts = 0
        self.backedges = 0
        self.sig_mismatches = 0
        self.recorded = 0
        self.replayed = 0
        self.replayed_cycles = 0
        self.divergences = 0


class _Divergence(Exception):
    """The shadow pass cannot reproduce the recorded iteration."""


# ----------------------------------------------------------------------
# Shadow functional environment
# ----------------------------------------------------------------------
class _ShadowEnv:
    """Executor environment for the counter-silent shadow pass.

    Mirrors :class:`~repro.cpu.data_engine.DataQueueEngine`'s functional
    semantics without touching the real engine: memory writes land in
    an overlay, the semantic FPU is a private copy, and LDQ pops are
    served from the FIFO *value chain* (current LDQ contents, then
    in-flight load values, then LAQ entry values, then loads pushed by
    this very iteration — exactly the order the live machine would pop
    them in).
    """

    __slots__ = (
        "memory",
        "overlay",
        "chain",
        "unc_addrs",
        "unc_data",
        "fpu_operand_a",
        "fpu_results",
        "fpu_ops",
        "fpu_last",
        "laq_pushes",
        "saq_pushes",
        "sdq_pushes",
    )

    def __init__(self, engine):
        self.memory = engine.memory
        self.overlay: dict[int, int] = {}
        self.chain: deque[int] = deque(engine.ldq._items)
        self.chain.extend(flight.value for flight in engine._in_flight_loads)
        self.chain.extend(entry.value for entry in engine.laq)
        self.unc_addrs = deque(engine._uncommitted_addresses)
        self.unc_data = deque(engine._uncommitted_data)
        core = engine.fpu_core
        self.fpu_operand_a = core._operand_a
        self.fpu_results = deque(core._results)
        self.fpu_ops = 0
        self.fpu_last: str | None = None
        self.laq_pushes: list[int] = []
        self.saq_pushes: list[int] = []
        self.sdq_pushes: list[int] = []

    # -- functional memory ------------------------------------------------
    def _check(self, address: int) -> None:
        if address % WORD_BYTES:
            raise _Divergence
        if not is_fpu_address(address) and address + WORD_BYTES > len(self.memory):
            raise _Divergence

    def _read(self, address: int) -> int:
        self._check(address)
        if is_fpu_address(address):
            if address != FPU_RESULT or not self.fpu_results:
                raise _Divergence
            return self.fpu_results.popleft()
        value = self.overlay.get(address)
        if value is not None:
            return value
        return int.from_bytes(self.memory[address : address + WORD_BYTES], "little")

    def _write(self, address: int, value: int) -> None:
        self._check(address)
        if is_fpu_address(address):
            if address == FPU_OPERAND_A:
                self.fpu_operand_a = value & 0xFFFFFFFF
                return
            kind = TRIGGER_OPERATIONS.get(address)
            if kind is None:
                raise _Divergence
            self.fpu_results.append(float32_op(kind, self.fpu_operand_a, value))
            self.fpu_ops += 1
            self.fpu_last = kind
            return
        self.overlay[address] = value & 0xFFFFFFFF

    def _commit_pending(self) -> None:
        while self.unc_addrs and self.unc_data:
            self._write(self.unc_addrs.popleft(), self.unc_data.popleft())

    # -- ExecutionEnv protocol --------------------------------------------
    def pop_ldq(self) -> int:
        if not self.chain:
            raise _Divergence
        return self.chain.popleft()

    def push_laq(self, address: int) -> None:
        for pending in self.unc_addrs:
            if pending == address:
                raise _Divergence  # live execution would raise for real
        value = self._read(address)
        self.chain.append(value)
        self.laq_pushes.append(address)

    def push_saq(self, address: int) -> None:
        self.saq_pushes.append(address)
        self.unc_addrs.append(address)
        self._commit_pending()

    def push_sdq(self, value: int) -> None:
        self.sdq_pushes.append(value)
        self.unc_data.append(value)
        self._commit_pending()


# ----------------------------------------------------------------------
# The controller
# ----------------------------------------------------------------------
class ReplayController:
    """Memoizes warm loop iterations for one :class:`Simulator` run."""

    #: verify attempts (matching signature, mismatching record) before a
    #: target is abandoned as unstable
    VERIFY_LIMIT = 4
    #: signature changes at a target before it is abandoned
    RESTART_LIMIT = 64
    #: iterations longer than this are never memoized (outer loops)
    MAX_ITERATION_INSTRUCTIONS = 2048

    def __init__(self, sim):
        self.sim = sim
        self.book = StatsBook(sim)
        self.loops: dict[int, _LoopState] = {}
        self.traced = sim.tracer.enabled
        #: fault-injection hook (``None`` outside injected runs): called
        #: with ``(target, now)`` at every backedge, emulating a replay
        #: fast-path bug for the engine-degradation ladder to absorb
        self.fault_hook = getattr(sim, "replay_fault_hook", None)
        self._recording_target: int | None = None
        self._rec_now = 0
        self._rec_seq = 0
        self._rec_vector: tuple | None = None
        self._issue_buf: list = []
        self._engine_buf: list = []
        self._trace_buf: list = []
        self._shadow_arch = ArchState()

    # ------------------------------------------------------------------
    # Entry point from the run loop
    # ------------------------------------------------------------------
    def on_backedge(self, target: int, now: int) -> int:
        """Handle a loop backedge at cycle ``now``; returns the new ``now``.

        A return value greater than ``now`` means iterations were
        replayed arithmetically and the machine state already reflects
        the returned cycle.
        """
        if self.fault_hook is not None:
            self.fault_hook(target, now)
        state = self.loops.get(target)
        if state is None:
            state = _LoopState()
            self.loops[target] = state
        state.backedges += 1
        phase = state.phase
        if phase == _DEAD:
            # Dead targets neither record nor disturb an enclosing
            # loop's recording (their backedges are part of it).
            return now
        if phase == _ENGAGED:
            sig = machine_signature(self.sim, now)
            if sig != state.sig:
                state.sig_mismatches += 1
                return now
            self._abort_recording()
            return self._burst(state, now)
        # RECORD / VERIFY
        if self._recording_target == target:
            record, sig = self._finish_recording(now)
            self._advance(state, record, sig)
        else:
            # Innermost wins: a different target's backedge inside the
            # active recording means a nested loop is hotter.
            self._abort_recording()
            sig = machine_signature(self.sim, now)
        if state.phase == _ENGAGED and sig == state.sig:
            return self._burst(state, now)
        if state.phase != _DEAD:
            self._start_recording(target, now, sig)
        return now

    def check_runaway(self) -> None:
        """Abandon a recording that grew past the memoization bound.

        Called from the run loop's periodic snapshot branch so a
        recording for a backedge that never recurs cannot buffer the
        rest of the program.
        """
        target = self._recording_target
        if target is None:
            return
        if len(self._issue_buf) > self.MAX_ITERATION_INSTRUCTIONS:
            self.loops[target].phase = _DEAD
            self._abort_recording()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _start_recording(self, target: int, now: int, sig: tuple) -> None:
        sim = self.sim
        self._recording_target = target
        self._rec_now = now
        self._rec_seq = sim.seq.value
        self._rec_vector = self.book.snapshot()
        self._issue_buf.clear()
        sim.backend.issue_log = self._issue_buf
        self._engine_buf.clear()
        sim.engine.replay_log = self._engine_buf
        if self.traced:
            self._trace_buf.clear()
            sim.tracer.record = self._trace_buf
        self.loops[target].sig = sig

    def _abort_recording(self) -> None:
        if self._recording_target is None:
            return
        sim = self.sim
        self._recording_target = None
        sim.backend.issue_log = None
        sim.engine.replay_log = None
        if self.traced:
            sim.tracer.record = None

    def _finish_recording(self, now: int) -> tuple:
        """Close the active recording; returns ``(record|None, end_sig)``."""
        sim = self.sim
        instrs = tuple(sim.backend.issue_log)
        raw_events = tuple(sim.engine.replay_log)
        raw_trace = tuple(self._trace_buf) if self.traced else None
        self._abort_recording()
        sig_end = machine_signature(sim, now)
        if len(instrs) > self.MAX_ITERATION_INSTRUCTIONS:
            return None, sig_end
        cycles = now - self._rec_now
        seqs = sim.seq.value - self._rec_seq
        base_seq = self._rec_seq
        base_now = self._rec_now
        events = []
        for event in raw_events:
            kind = event[0]
            if kind == "laq":
                _kind, address, seq, hazards = event
                fpu = address if is_fpu_address(address) else None
                events.append(("laq", seq - base_seq, fpu, hazards))
            elif kind == "saq":
                _kind, address, seq = event
                fpu = address if is_fpu_address(address) else None
                events.append(("saq", seq - base_seq, fpu))
            elif kind == "sdq":
                events.append(("sdq", event[2] - base_seq))
            else:
                events.append(("sd",))
        trace = None
        if raw_trace is not None:
            trace = tuple(
                (cycle - base_now, component, kind, fields)
                for cycle, component, kind, fields in raw_trace
            )
        delta = self.book.diff(self._rec_vector, self.book.snapshot())
        record = _IterationRecord(
            cycles=cycles,
            seqs=seqs,
            delta=delta,
            instrs=instrs,
            events=tuple(events),
            trace=trace,
            engageable=cycles > 0 and self.book.max_deltas_zero(delta),
        )
        return record, sig_end

    def _advance(self, state: _LoopState, record, sig_end: tuple) -> None:
        """Move a target's state machine after a recorded iteration."""
        if record is None:
            state.phase = _DEAD
            return
        state.recorded += 1
        if state.phase == _RECORD:
            if sig_end == state.sig:
                state.candidate = record
                state.phase = _VERIFY
            else:
                state.restarts += 1
                if state.restarts > self.RESTART_LIMIT:
                    state.phase = _DEAD
            return
        # _VERIFY
        if sig_end != state.sig:
            state.restarts += 1
            state.candidate = None
            state.phase = _DEAD if state.restarts > self.RESTART_LIMIT else _RECORD
            return
        if state.candidate.matches(record) and record.engageable:
            state.record = record
            state.phase = _ENGAGED
            return
        state.fails += 1
        state.candidate = record
        if state.fails >= self.VERIFY_LIMIT:
            state.phase = _DEAD

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _burst(self, state: _LoopState, now: int) -> int:
        """Replay as many iterations as the shadow pass can confirm."""
        record = state.record
        sim = self.sim
        max_cycles = sim.config.max_cycles
        cycles = record.cycles
        replayed = 0
        while now + cycles <= max_cycles:
            env = self._shadow_iteration(record)
            if env is None:
                state.divergences += 1
                break
            self._commit(record, env)
            if self.traced:
                self._emit_batch(record.trace, now)
            now += cycles
            replayed += 1
        state.replayed += replayed
        state.replayed_cycles += replayed * cycles
        return now

    def _shadow_iteration(self, record: _IterationRecord):
        """Functionally execute one iteration off to the side.

        Returns the shadow environment on success, ``None`` on any
        divergence from the recorded iteration (in which case nothing
        was mutated and live simulation can resume at the boundary).
        """
        sim = self.sim
        engine = sim.engine
        real = sim.backend.state
        shadow = self._shadow_arch
        shadow._foreground[:] = real._foreground
        shadow._background[:] = real._background
        shadow._branch[:] = real._branch
        env = _ShadowEnv(engine)
        try:
            for _tag, _pc, instruction, rec_outcome in record.instrs:
                if execute(instruction, shadow, env) != rec_outcome:
                    return None
        except _Divergence:
            return None
        except (ValueError, IndexError, RuntimeError):
            # Live execution would raise for real; let it.
            return None
        if shadow._branch != real._branch:
            # A data-dependent branch-register write: the next
            # iteration would redirect elsewhere.
            return None
        # The boundary queue shapes must be conserved (pushes == pops
        # along every FIFO) for the chain partition below to hold.
        if len(env.chain) != (
            len(engine.ldq) + len(engine._in_flight_loads) + len(engine.laq)
        ):
            return None
        if len(env.unc_addrs) != len(engine._uncommitted_addresses) or len(
            env.unc_data
        ) != len(engine._uncommitted_data):
            return None
        if not self._check_events(record, env):
            return None
        return env

    def _check_events(self, record: _IterationRecord, env: _ShadowEnv) -> bool:
        """Validate the shadow pass against the recorded event stream.

        Checks the timing-relevant data dependences: FPU-window
        addressing (routes to a different unit with different latency)
        and store/load ordering-hazard counts (an exact counter in the
        results).  Store departures are interleaved in recorded order
        to reconstruct the SAQ contents each load saw.
        """
        shadow_saq = deque(entry.address for entry in self.sim.engine.saq)
        laq_pushes = env.laq_pushes
        saq_pushes = env.saq_pushes
        i_laq = i_saq = i_sdq = 0
        for event in record.events:
            kind = event[0]
            if kind == "laq":
                if i_laq >= len(laq_pushes):
                    return False
                address = laq_pushes[i_laq]
                i_laq += 1
                fpu = event[2]
                if is_fpu_address(address):
                    if address != fpu:
                        return False
                elif fpu is not None:
                    return False
                hazards = 0
                for pending in shadow_saq:
                    if pending == address:
                        hazards += 1
                if hazards != event[3]:
                    return False
            elif kind == "saq":
                if i_saq >= len(saq_pushes):
                    return False
                address = saq_pushes[i_saq]
                i_saq += 1
                fpu = event[2]
                if is_fpu_address(address):
                    if address != fpu:
                        return False
                elif fpu is not None:
                    return False
                shadow_saq.append(address)
            elif kind == "sdq":
                i_sdq += 1
            else:  # "sd"
                if not shadow_saq:
                    return False
                shadow_saq.popleft()
        return (
            i_laq == len(laq_pushes)
            and i_saq == len(saq_pushes)
            and i_sdq == len(env.sdq_pushes)
        )

    def _commit(self, record: _IterationRecord, env: _ShadowEnv) -> None:
        """Adopt one confirmed shadow iteration into the live machine."""
        sim = self.sim
        engine = sim.engine
        backend = sim.backend
        seqs = record.seqs
        cycles = record.cycles
        # Functional register state (values copied in place so every
        # live reference to the banks stays valid).
        real = backend.state
        shadow = self._shadow_arch
        real._foreground[:] = shadow._foreground
        real._background[:] = shadow._background
        # Functional memory and the semantic FPU core.
        memory = engine.memory
        for address, value in env.overlay.items():
            memory[address : address + WORD_BYTES] = value.to_bytes(
                WORD_BYTES, "little"
            )
        core = engine.fpu_core
        core._operand_a = env.fpu_operand_a
        core._results = env.fpu_results
        if env.fpu_ops:
            core.operations_started += env.fpu_ops
            core.last_operation = env.fpu_last
        # Rotate the load value chain one iteration forward: the same
        # FIFO positions hold the next iteration's values.
        chain = env.chain
        ldq_items = engine.ldq._items
        for i in range(len(ldq_items)):
            ldq_items[i] = chain.popleft()
        for flight in engine._in_flight_loads:
            flight.value = chain.popleft()
        accepted = len(env.laq_pushes)  # LAQ departures per iteration
        laq_addrs = [entry.address for entry in engine.laq]
        laq_addrs.extend(env.laq_pushes)
        for entry, address in zip(engine.laq, laq_addrs[accepted:]):
            entry.address = address
            entry.value = chain.popleft()
            entry.seq += seqs
        # Rotate the store queues by the recorded departure count.
        departed = record.sd_count
        saq_addrs = [entry.address for entry in engine.saq]
        saq_addrs.extend(env.saq_pushes)
        for entry, address in zip(engine.saq, saq_addrs[departed:]):
            entry.address = address
            entry.seq += seqs
        sdq_values = [entry.value for entry in engine.sdq]
        sdq_values.extend(env.sdq_pushes)
        for entry, value in zip(engine.sdq, sdq_values[departed:]):
            entry.value = value
            entry.seq += seqs
        engine._uncommitted_addresses = env.unc_addrs
        engine._uncommitted_data = env.unc_data
        # Shift every absolute time/seq in the timing skeleton.
        sim.memory.replay_shift(cycles, seqs)
        sim.frontend.replay_shift(cycles, seqs)
        backend.replay_shift(cycles, seqs)
        sim.seq.value += seqs
        # All counters advance arithmetically by the recorded deltas.
        self.book.apply(record.delta)

    def _emit_batch(self, batch: tuple, base: int) -> None:
        """Re-emit a recorded trace batch shifted to this iteration."""
        tracer = self.sim.tracer
        emit = tracer.emit
        for rel_cycle, component, kind, fields in batch:
            tracer.cycle = base + rel_cycle
            emit(component, kind, **fields)

    # ------------------------------------------------------------------
    # Reporting (the ``profile --engine`` surface)
    # ------------------------------------------------------------------
    def loop_reports(self) -> list[dict]:
        """Per-backedge-target replay statistics, hottest first."""
        reports = []
        for target, state in self.loops.items():
            record = state.record
            reports.append(
                {
                    "target": target,
                    "phase": _PHASE_NAMES[state.phase],
                    "backedges": state.backedges,
                    "live_iterations": state.backedges,
                    "replayed_iterations": state.replayed,
                    "iteration_cycles": record.cycles if record else None,
                    "live_cycles": (
                        state.backedges * record.cycles if record else None
                    ),
                    "replayed_cycles": state.replayed_cycles,
                    "recorded_iterations": state.recorded,
                    "verify_failures": state.fails,
                    "signature_restarts": state.restarts,
                    "signature_mismatches": state.sig_mismatches,
                    "divergences": state.divergences,
                }
            )
        reports.sort(key=lambda r: r["replayed_cycles"], reverse=True)
        return reports

    @property
    def replayed_cycles(self) -> int:
        return sum(state.replayed_cycles for state in self.loops.values())

    @property
    def replayed_iterations(self) -> int:
        return sum(state.replayed for state in self.loops.values())
