"""Fault-tolerant execution: supervised sweeps that finish.

A paper-scale design-space sweep is thousands of independent simulation
points across worker processes, a content-addressed result cache, and
three stacked fast-path engines.  Each of those layers can fail — a
worker segfaults, a point wedges, a cache blob is truncated, a replay
fast-path bug raises — and a single-shot sweep dies at 94% with its
completed work discarded.  This module makes the failure modes
survivable while keeping the numbers *exactly* what a clean serial
reference run would produce:

:class:`FaultReport`
    the ledger: every recovery action (retry, timeout, worker crash,
    pool respawn, serial fallback, engine degradation, cache
    quarantine) is recorded as a :class:`FaultEvent` against the point
    it happened to, so a sweep that healed itself says exactly how.

:func:`supervised_map`
    a worker-pool wrapper with per-point timeouts, bounded
    retry-with-backoff, and ``BrokenProcessPool`` recovery: the pool is
    respawned, in-flight points are requeued, and after repeated pool
    failures the remaining points run serially in-process.  Completed
    siblings are never discarded; points that stay broken after the
    whole ladder of recoveries raise :class:`SweepPointError` *after*
    everything recoverable has finished (and been checkpointed).

:func:`ladder_simulate`
    the engine-degradation ladder: a point that fails under the full
    fast path (the compiled step kernel with idle-skip + steady-state
    replay) is re-run with the interpreted engines, then under
    idle-skip alone, then under the reference cycle-by-cycle loop —
    :data:`~repro.core.scheduler.ENGINE_RUNGS` — recording which rung
    finally produced the result (successes included, so the compiled
    rung's engagement rate is visible in ``--fault-report`` JSON).
    Architectural outcomes
    (:class:`~repro.core.simulator.DeadlockError`,
    :class:`~repro.core.simulator.SimulationTimeout`) are identical on
    every rung and therefore never degraded, only reported.

:class:`SweepCheckpoint`
    a periodic atomic manifest of completed sweep points keyed by the
    simulation cache's content address, so ``repro-sim ... --resume``
    restarts a killed sweep from where it died.

:class:`SweepSupervisor` bundles the knobs for
:func:`repro.core.sweep.run_cache_sweep`; the deterministic fault
injectors live in :mod:`repro.core.faults`.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from pickle import PicklingError
from typing import Callable, Sequence

from ..asm.program import Program
from .config import MachineConfig
from .results import SimulationResult
from .scheduler import ENGINE_RUNGS, rung_kwargs

__all__ = [
    "BreakerBoard",
    "CheckpointLockError",
    "CircuitBreaker",
    "FaultEvent",
    "FaultReport",
    "SweepCheckpoint",
    "SweepPointError",
    "SweepSupervisor",
    "ladder_simulate",
    "retry_backoff",
    "supervised_map",
    "supervised_simulate_many",
]


# ----------------------------------------------------------------------
# The recovery ledger
# ----------------------------------------------------------------------
@dataclass
class FaultEvent:
    """One recovery action taken on behalf of one sweep point."""

    point: str  #: point label (content-key prefix or index)
    kind: str  #: retry | timeout | worker_crash | pool_respawn |
    #: serial_fallback | engine_fault | degraded | cache_quarantine |
    #: gave_up | resumed
    detail: str = ""
    attempt: int = 0
    rung: str | None = None

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "kind": self.kind,
            "detail": self.detail,
            "attempt": self.attempt,
            "rung": self.rung,
        }

    def __str__(self) -> str:
        parts = [f"[{self.kind}] point {self.point}"]
        if self.attempt:
            parts.append(f"attempt {self.attempt}")
        if self.rung:
            parts.append(f"rung {self.rung}")
        if self.detail:
            parts.append(self.detail)
        return " — ".join(parts)


@dataclass
class FaultReport:
    """Every recovery action taken during one supervised sweep."""

    events: list[FaultEvent] = field(default_factory=list)
    #: points served per engine rung (tallied even on full success, so
    #: the fast paths' engagement rate is observable in ``--fault-report``
    #: JSON); never affects :attr:`clean`
    rungs: dict[str, int] = field(default_factory=dict)

    def tally_rung(self, rung: str) -> None:
        """Count one point served by ``rung`` (success path included)."""
        self.rungs[rung] = self.rungs.get(rung, 0) + 1

    def record(
        self,
        point: str,
        kind: str,
        detail: str = "",
        attempt: int = 0,
        rung: str | None = None,
    ) -> FaultEvent:
        event = FaultEvent(
            point=point, kind=kind, detail=detail, attempt=attempt, rung=rung
        )
        self.events.append(event)
        return event

    def extend(self, events: Sequence[FaultEvent]) -> None:
        self.events.extend(events)

    def counts(self) -> dict[str, int]:
        """Event tally by kind, insertion-ordered."""
        tally: dict[str, int] = {}
        for event in self.events:
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return tally

    @property
    def clean(self) -> bool:
        return not self.events

    def to_dict(self) -> dict:
        return {
            "events": [event.to_dict() for event in self.events],
            "counts": self.counts(),
            "rungs": dict(self.rungs),
        }

    def summary(self) -> str:
        """Human-readable report (the CLI prints this after a sweep)."""
        if self.clean:
            lines = ["fault report  : clean (no recovery actions)"]
        else:
            lines = [f"fault report  : {len(self.events)} recovery action(s)"]
            for kind, count in self.counts().items():
                lines.append(f"  {kind:<16} {count}")
            for event in self.events:
                lines.append(f"  {event}")
        if self.rungs:
            served = ", ".join(
                f"{rung}={count}" for rung, count in self.rungs.items()
            )
            lines.append(f"  points by rung : {served}")
        return "\n".join(lines)


class SweepPointError(RuntimeError):
    """Points that stayed broken after every recovery was exhausted.

    Raised only after all *recoverable* points have completed (and been
    delivered through ``on_result``), so a partial sweep's progress is
    preserved in the cache/checkpoint for a ``--resume``.
    """

    def __init__(self, failures: list[tuple[str, BaseException]]):
        self.failures = failures
        detail = "; ".join(
            f"{label}: {type(exc).__name__}: {exc}" for label, exc in failures
        )
        super().__init__(
            f"{len(failures)} sweep point(s) failed permanently: {detail}"
        )


# ----------------------------------------------------------------------
# Retry backoff (decorrelated jitter, seeded-deterministic)
# ----------------------------------------------------------------------
#: default ceiling on one jittered retry delay, as a multiple of ``base``
BACKOFF_CAP_FACTOR = 16.0


def retry_backoff(
    base: float,
    attempt: int,
    key: str,
    cap: float | None = None,
    seed: int | None = None,
) -> float:
    """Decorrelated-jitter delay before retry ``attempt`` of point ``key``.

    A pool respawn hands every interrupted point back at the same
    instant; if they all sleep ``base * attempt`` they all return at the
    same instant too and stampede the fresh pool.  Jitter decorrelates
    them — each point walks its own delay sequence
    ``d(i) = min(cap, base + u * (3 * d(i-1) - base))`` with ``u`` drawn
    per ``(seed, key, i)`` — while staying a *pure function* of its
    inputs: the seed comes from the active fault plan
    (``REPRO_FAULT_PLAN``; 0 when disarmed), so an injected rehearsal
    replays byte-identical timing decisions.  ``base <= 0`` disables
    backoff entirely, as before.
    """
    if base <= 0 or attempt <= 0:
        return 0.0
    if cap is None:
        cap = base * BACKOFF_CAP_FACTOR
    from .faults import active_plan, seeded_uniform

    if seed is None:
        plan = active_plan()
        seed = plan.seed if plan is not None else 0
    delay = base
    for step in range(1, attempt + 1):
        u = seeded_uniform(seed, "backoff", key, str(step))
        delay = min(cap, base + u * (3.0 * delay - base))
    return delay


# ----------------------------------------------------------------------
# Circuit breakers (graceful degradation for the service's engine rungs)
# ----------------------------------------------------------------------
class CircuitBreaker:
    """A count-based breaker: closed → open → half-open → closed.

    ``threshold`` consecutive failures open the breaker; after
    ``cooldown`` seconds :meth:`allow` admits exactly one half-open
    probe.  A probe success closes the breaker (failure count reset); a
    probe failure re-opens it and restarts the cooldown.  A probe whose
    outcome never arrives (the worker died before reporting) expires
    after another ``cooldown``, so the breaker cannot wedge half-open.

    The clock is injectable for tests; all methods are synchronous and
    expected to run on one event loop (no internal locking).
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.threshold = max(1, int(threshold))
        self.cooldown = float(cooldown)
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self._probe_started: float | None = None
        #: lifetime transition tally (observability)
        self.opened_count = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._probe_started is not None:
            return "half-open"
        if self._clock() - self._opened_at >= self.cooldown:
            return "half-open"  # next allow() takes the probe token
        return "open"

    def allow(self) -> bool:
        """May the caller run the protected path right now?

        In the half-open window this hands out a single probe token;
        concurrent callers see ``False`` until the probe settles (or
        expires after ``cooldown``).
        """
        if self._opened_at is None:
            return True
        now = self._clock()
        if self._probe_started is not None:
            if now - self._probe_started >= self.cooldown:
                self._probe_started = now  # lost probe: hand out another
                return True
            return False
        if now - self._opened_at >= self.cooldown:
            self._probe_started = now
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probe_started = None

    def record_failure(self) -> None:
        if self._opened_at is not None:
            # A failed half-open probe (or a straggler from before the
            # open): re-open and restart the cooldown.
            self._opened_at = self._clock()
            self._probe_started = None
            return
        self._failures += 1
        if self._failures >= self.threshold:
            self._opened_at = self._clock()
            self._probe_started = None
            self.opened_count += 1

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self._failures,
            "opened_count": self.opened_count,
        }


class BreakerBoard:
    """One :class:`CircuitBreaker` per *degradable* engine rung.

    The last rung (the reference loop) has no breaker: it is the floor
    that produces ground truth and must always be available, so
    :meth:`effective_rungs` never returns an empty ladder.  Feed the
    board with :meth:`observe` after each point: ``engine_fault`` events
    count against their rung, the rung that finally served the point
    counts as its success (closing a half-open breaker).
    """

    def __init__(
        self,
        rungs: Sequence[str] = ENGINE_RUNGS,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rungs = tuple(rungs)
        if not self.rungs:
            raise ValueError("a breaker board needs at least one rung")
        self.breakers = {
            rung: CircuitBreaker(threshold, cooldown, clock)
            for rung in self.rungs[:-1]
        }

    def effective_rungs(self) -> tuple[str, ...]:
        """The ladder a new point should run, open breakers skipped."""
        allowed = [
            rung for rung in self.rungs[:-1] if self.breakers[rung].allow()
        ]
        allowed.append(self.rungs[-1])
        return tuple(allowed)

    def observe(
        self, served_rung: str | None, events: Sequence[FaultEvent] = ()
    ) -> None:
        """Settle one point's outcome into the per-rung breakers."""
        for event in events:
            if event.kind == "engine_fault" and event.rung in self.breakers:
                self.breakers[event.rung].record_failure()
        if served_rung in self.breakers:
            self.breakers[served_rung].record_success()

    def to_dict(self) -> dict:
        return {rung: breaker.to_dict() for rung, breaker in self.breakers.items()}


# ----------------------------------------------------------------------
# The engine-degradation ladder
# ----------------------------------------------------------------------
def ladder_simulate(
    config: MachineConfig,
    program: Program,
    report: FaultReport | None = None,
    point: str = "?",
    traced: bool = False,
    trace_path=None,
    rungs: Sequence[str] | None = None,
) -> tuple[SimulationResult, str]:
    """Simulate one point, degrading engines instead of crashing.

    Tries each rung of ``rungs`` (default: the full
    :data:`~repro.core.scheduler.ENGINE_RUNGS` ladder) in order; any
    exception from a fast-path engine moves one rung down and is
    recorded in ``report``.  Returns ``(result, rung)`` with the rung
    that produced the result — byte-identical across rungs, so a
    degraded point is indistinguishable in the numbers.  A restricted
    ``rungs`` list (the service passes its circuit-breaker board's
    surviving rungs) must be a subset of the ladder in ladder order;
    its last entry is the rung whose failure propagates.

    :class:`~repro.core.simulator.DeadlockError` and
    :class:`~repro.core.simulator.SimulationTimeout` are *architectural*
    outcomes (the same on every rung, with true cycle counts) and
    propagate immediately; so does a last-rung failure, which no
    ladder can fix.
    """
    from .faults import maybe_trip_rung
    from .simulator import (  # late: the simulator is heavy
        DeadlockError,
        SimulationTimeout,
        simulate,
        simulate_traced,
    )

    if rungs is None:
        ladder = ENGINE_RUNGS
    else:
        ladder = tuple(rungs)
        unknown = [rung for rung in ladder if rung not in ENGINE_RUNGS]
        if not ladder or unknown:
            raise ValueError(
                f"invalid engine ladder {ladder!r}; rungs must be a "
                f"non-empty subset of {ENGINE_RUNGS}"
            )
    last_exc: BaseException | None = None
    for index, rung in enumerate(ladder):
        kwargs = rung_kwargs(rung)
        try:
            maybe_trip_rung(rung, point)
            if traced:
                result = simulate_traced(
                    config, program, trace_path=trace_path, **kwargs
                )
            else:
                result = simulate(config, program, **kwargs)
        except (DeadlockError, SimulationTimeout):
            raise  # engine-independent architectural outcome
        except Exception as exc:  # noqa: BLE001 — the ladder exists for these
            last_exc = exc
            if report is not None:
                report.record(
                    point,
                    "engine_fault",
                    detail=f"{type(exc).__name__}: {exc}",
                    rung=rung,
                )
            if index == len(ladder) - 1:
                raise  # the last rung itself failed: nothing below it
            continue
        if index > 0 and report is not None:
            report.record(
                point,
                "degraded",
                detail=f"fast path failed ({type(last_exc).__name__}), "
                f"result produced by the {rung} engine",
                rung=rung,
            )
        if report is not None:
            report.tally_rung(rung)
        return result, rung
    raise AssertionError("unreachable: every rung either returned or raised")


# ----------------------------------------------------------------------
# The supervised worker pool
# ----------------------------------------------------------------------
#: consecutive pool deaths (crash or hang) tolerated before the
#: supervisor abandons worker processes and finishes serially
POOL_FAILURE_LIMIT = 4

#: exceptions that mean "the pool is unusable", not "the point failed"
_POOL_ERRORS = (BrokenExecutor, OSError, ImportError, PicklingError)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even if its workers are wedged.

    ``shutdown(wait=False)`` alone would leave a hung worker running
    forever; terminating the processes first (a CPython implementation
    detail, guarded accordingly) actually frees the machine.
    """
    try:
        for process in list(getattr(pool, "_processes", {}).values()):
            process.terminate()
    except Exception:  # noqa: BLE001 — best effort on internals
        pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001
        pass


def supervised_map(
    fn: Callable,
    items: Sequence,
    *,
    jobs: int | None = None,
    timeout: float | None = None,
    max_retries: int = 2,
    backoff: float = 0.25,
    report: FaultReport | None = None,
    labels: Sequence[str] | None = None,
    no_retry: tuple[type[BaseException], ...] = (),
    initializer: Callable | None = None,
    initargs: tuple = (),
    on_result: Callable[[int, object], None] | None = None,
) -> list:
    """``[fn(item) for item in items]`` under a fault supervisor.

    Like :func:`repro.core.parallel.parallel_map`, results come back in
    input order and the serial path is taken for ``jobs <= 1`` — but
    failures are *handled* instead of propagated:

    * an exception from ``fn`` retries the point up to ``max_retries``
      times with decorrelated-jitter backoff (:func:`retry_backoff`:
      per-point delays, so simultaneous retries after a pool respawn
      don't stampede the fresh pool in lockstep; ``no_retry`` types
      fail immediately: deterministic outcomes gain nothing from a
      retry);
    * a worker crash (``BrokenProcessPool``) respawns the pool and
      requeues every in-flight point, charging an attempt only to
      points the crash interrupted;
    * a point running past ``timeout`` seconds is charged an attempt
      and the pool is respawned (a wedged worker cannot be cancelled,
      only killed); other in-flight points are requeued for free;
    * after :data:`POOL_FAILURE_LIMIT` consecutive pool deaths without
      a single completed point in between, the remaining points run
      serially in this process (where a timeout is unenforceable but
      every other recovery still applies).

    Every recovery is recorded in ``report``; ``on_result(index,
    value)`` fires as each point completes (checkpoint hook).  Points
    still failing after all that raise :class:`SweepPointError` at the
    end — after every recoverable point has completed.
    """
    from .parallel import resolve_jobs

    items = list(items)
    count = len(items)
    if labels is None:
        labels = [str(index) for index in range(count)]
    if report is None:
        report = FaultReport()
    results: dict[int, object] = {}
    failed: dict[int, BaseException] = {}
    attempts = [0] * count

    def deliver(index: int, value) -> None:
        results[index] = value
        if on_result is not None:
            on_result(index, value)

    def charge(index: int, exc: BaseException, kind: str, detail: str) -> bool:
        """Record a failed attempt; True if the point may retry."""
        attempts[index] += 1
        report.record(
            labels[index], kind, detail=detail, attempt=attempts[index]
        )
        retryable = not isinstance(exc, no_retry)
        if retryable and attempts[index] <= max_retries:
            return True
        failed[index] = exc
        report.record(
            labels[index],
            "gave_up",
            detail=f"{type(exc).__name__}: {exc}",
            attempt=attempts[index],
        )
        return False

    def run_serial(indices) -> None:
        for index in indices:
            if index in results or index in failed:
                continue
            while True:
                try:
                    value = fn(items[index])
                except Exception as exc:  # noqa: BLE001 — supervisor boundary
                    if charge(
                        index,
                        exc,
                        "retry",
                        f"{type(exc).__name__}: {exc}",
                    ):
                        if backoff:
                            time.sleep(
                                retry_backoff(
                                    backoff, attempts[index], labels[index]
                                )
                            )
                        continue
                    break
                else:
                    deliver(index, value)
                    break

    jobs = min(resolve_jobs(jobs), count)
    if jobs <= 1:
        if initializer is not None:
            initializer(*initargs)
        run_serial(range(count))
    else:
        pending: deque[int] = deque(range(count))
        in_flight: dict = {}  # future -> index
        deadlines: dict = {}  # future -> monotonic deadline
        pool: ProcessPoolExecutor | None = None
        pool_failures = 0

        def serial_fallback() -> None:
            # So far the initializer has only run inside pool workers;
            # this process needs it before it can execute points itself.
            if initializer is not None:
                initializer(*initargs)
            run_serial(range(count))

        def respawn(reason: str) -> bool:
            """Kill the pool, requeue in-flight work; False → go serial."""
            nonlocal pool, pool_failures
            for future, index in in_flight.items():
                if (
                    index not in results
                    and index not in failed
                    and index not in pending
                ):
                    pending.append(index)
            in_flight.clear()
            deadlines.clear()
            if pool is not None:
                _kill_pool(pool)
                pool = None
            pool_failures += 1
            if pool_failures >= POOL_FAILURE_LIMIT:
                report.record(
                    "pool",
                    "serial_fallback",
                    detail=f"{pool_failures} pool failures ({reason}); "
                    "finishing the sweep serially",
                )
                return False
            report.record(
                "pool", "pool_respawn", detail=reason, attempt=pool_failures
            )
            return True

        try:
            while pending or in_flight:
                if pool is None:
                    try:
                        pool = ProcessPoolExecutor(
                            max_workers=jobs,
                            initializer=initializer,
                            initargs=initargs,
                        )
                    except _POOL_ERRORS as exc:
                        report.record(
                            "pool",
                            "serial_fallback",
                            detail=f"cannot spawn workers "
                            f"({type(exc).__name__}: {exc})",
                        )
                        break
                # Keep at most `jobs` points in flight so submission
                # time approximates start time and per-point deadlines
                # mean what they say.
                while pending and len(in_flight) < jobs:
                    index = pending.popleft()
                    if index in results or index in failed:
                        continue
                    try:
                        future = pool.submit(fn, items[index])
                    except _POOL_ERRORS as exc:
                        pending.appendleft(index)
                        if not respawn(
                            f"submit failed ({type(exc).__name__})"
                        ):
                            raise _GoSerial from None
                        break
                    in_flight[future] = index
                    if timeout is not None:
                        deadlines[future] = time.monotonic() + timeout
                if pool is None or not in_flight:
                    continue
                wait_for = None
                if deadlines:
                    wait_for = max(
                        0.0, min(deadlines.values()) - time.monotonic()
                    )
                done, _ = wait(
                    set(in_flight), timeout=wait_for, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Deadline expiry: charge the overdue points, then
                    # kill the pool — a running task cannot be
                    # cancelled, and a wedged worker never returns.
                    now = time.monotonic()
                    expired = [
                        (future, index)
                        for future, index in in_flight.items()
                        if deadlines.get(future, now + 1) <= now
                    ]
                    if not expired:
                        continue  # spurious wakeup
                    for future, index in expired:
                        in_flight.pop(future, None)
                        deadlines.pop(future, None)
                        if charge(
                            index,
                            TimeoutError(f"no result after {timeout:g}s"),
                            "timeout",
                            f"point exceeded --timeout {timeout:g}s",
                        ):
                            pending.append(index)
                    if not respawn("hung worker killed after point timeout"):
                        raise _GoSerial
                    continue
                broken = False
                for future in done:
                    index = in_flight.pop(future)
                    deadlines.pop(future, None)
                    try:
                        value = future.result()
                    except _POOL_ERRORS as exc:
                        broken = True
                        if charge(
                            index,
                            exc,
                            "worker_crash",
                            f"worker died ({type(exc).__name__}: {exc})",
                        ):
                            pending.append(index)
                    except Exception as exc:  # noqa: BLE001
                        if charge(
                            index, exc, "retry", f"{type(exc).__name__}: {exc}"
                        ):
                            if backoff:
                                time.sleep(
                                    retry_backoff(
                                        backoff, attempts[index], labels[index]
                                    )
                                )
                            pending.append(index)
                    else:
                        deliver(index, value)
                        # Progress resets the failure budget: the limit
                        # guards against a pool that *cannot* make
                        # progress, not against many recoverable deaths
                        # spread across a long sweep.
                        pool_failures = 0
                if broken and not respawn("worker process died mid-point"):
                    raise _GoSerial
        except _GoSerial:
            serial_fallback()
        finally:
            if pool is not None:
                _kill_pool(pool)
        # Pool path exhausted with a spawn failure: finish serially.
        if len(results) + len(failed) < count:
            serial_fallback()

    if failed:
        raise SweepPointError(
            [(labels[index], exc) for index, exc in sorted(failed.items())]
        )
    return [results[index] for index in range(count)]


class _GoSerial(Exception):
    """Internal: abandon worker pools and finish the map serially."""


# ----------------------------------------------------------------------
# Supervised simulation fan-out (ladder inside every worker)
# ----------------------------------------------------------------------
def _supervised_point(task: tuple[str, MachineConfig]):
    """Worker body: injectors first, then the full degradation ladder."""
    from . import parallel
    from .faults import maybe_hang_point, maybe_kill_worker

    key, config = task
    maybe_kill_worker(key)
    maybe_hang_point(key)
    program = parallel._worker_program
    assert program is not None, "worker initialized without a program"
    report = FaultReport()
    result, rung = ladder_simulate(config, program, report=report, point=key[:12])
    return result, rung, report.events


def _supervised_batch(task: Sequence[tuple[str, dict]]):
    """Worker body for one affinity batch of ``(key, config fields)``.

    Each point runs injectors + the degradation ladder exactly as
    :func:`_supervised_point` does, but outcomes are captured *per
    point*: an in-process exception (a deadlock, a timeout result, a
    reference-rung bug) becomes that point's outcome entry instead of
    failing its batch siblings.  Only process-level faults — a kill
    injector, a hang past the batch deadline, a real crash — surface as
    batch-level failures, which the supervisor retries as a whole
    (the once-only injector markers make that converge).  Returns the
    outcome list plus this worker's pid-tagged codegen-stat delta.
    """
    from . import parallel
    from .compiled import (
        compile_stats,
        compile_stats_delta,
        flush_codegen_artifacts,
    )
    from .faults import maybe_hang_point, maybe_kill_worker

    program = parallel._worker_program
    assert program is not None, "worker initialized without a program"
    baseline = compile_stats()
    outcomes = []
    for key, fields in task:
        config = MachineConfig.from_dict(fields)
        maybe_kill_worker(key)
        maybe_hang_point(key)
        report = FaultReport()
        try:
            result, rung = ladder_simulate(
                config, program, report=report, point=key[:12]
            )
        except Exception as exc:  # noqa: BLE001 — per-point boundary
            outcomes.append((key, None, None, report.events, exc))
        else:
            outcomes.append((key, result, rung, report.events, None))
    flush_codegen_artifacts()
    return outcomes, compile_stats_delta(baseline)


def supervised_simulate_many(
    program: Program,
    configs: Sequence[MachineConfig],
    *,
    keys: Sequence[str] | None = None,
    jobs: int | None = None,
    timeout: float | None = None,
    max_retries: int = 2,
    backoff: float = 0.25,
    report: FaultReport | None = None,
    on_result: Callable[[int, SimulationResult], None] | None = None,
) -> list[SimulationResult]:
    """:func:`~repro.core.parallel.simulate_many` under the supervisor.

    Every point runs the engine-degradation ladder inside its worker;
    rung degradations recorded there are merged into ``report``.
    Results come back in ``configs`` order, byte-identical to a clean
    serial reference run.
    """
    from .parallel import (
        _init_simulation_worker,
        affinity_batches,
        config_affinity_key,
        resolve_jobs,
    )
    from .scheduler import affinity_enabled_default
    from .simcache import sweep_point_keys
    from .simulator import DeadlockError, SimulationTimeout

    configs = list(configs)
    if keys is None:
        keys = sweep_point_keys(program, configs)
    if report is None:
        report = FaultReport()

    delivered: dict[int, SimulationResult] = {}

    def merge_point(index: int, value) -> None:
        result, rung, events = value
        report.extend(events)
        # The worker-local report is discarded, so its rung tally
        # (including the success-path count) is re-recorded here —
        # exactly once per delivered point.
        report.tally_rung(rung)
        delivered[index] = result
        if on_result is not None:
            on_result(index, result)

    effective_jobs = min(resolve_jobs(jobs), len(configs))
    if effective_jobs > 1 and len(configs) > 1 and affinity_enabled_default():
        # Phase 1: affinity batches.  One IPC round carries a batch of
        # points from one kernel family; per-point outcomes come back
        # individually (exceptions included), so retry granularity and
        # the fault ledger stay per-point.  Points a batch could not
        # deliver — a point that raised, a batch whose worker died past
        # the retry budget — fall through to the per-point phase below,
        # which owns the no-retry policy for architectural outcomes.
        from .compiled import record_worker_stats

        batches = affinity_batches(
            [config_affinity_key(config) for config in configs],
            effective_jobs,
        )
        tasks = [
            [(keys[index], configs[index].to_dict()) for index in batch]
            for batch in batches
        ]
        labels = [
            f"{keys[batch[0]][:12]}[x{len(batch)}]" for batch in batches
        ]
        # Fleet warmup: one published kernel artifact per family before
        # the pool spawns (no-op without the persistent store).
        from .compiled import prime_codegen_artifacts

        prime_codegen_artifacts(
            program, [configs[batch[0]] for batch in batches]
        )
        batch_timeout = (
            timeout * max(len(batch) for batch in batches)
            if timeout is not None
            else None
        )

        def merge_batch(position: int, value) -> None:
            outcomes, delta = value
            record_worker_stats(delta)
            for offset, (_key, result, rung, events, exc) in enumerate(outcomes):
                index = batches[position][offset]
                report.extend(events)
                if exc is not None:
                    continue  # re-resolved by the per-point phase
                report.tally_rung(rung)
                delivered[index] = result
                if on_result is not None:
                    on_result(index, result)

        try:
            supervised_map(
                _supervised_batch,
                tasks,
                jobs=jobs,
                timeout=batch_timeout,
                max_retries=max_retries,
                backoff=backoff,
                report=report,
                labels=labels,
                no_retry=(),  # batch failures are process-level: retryable
                initializer=_init_simulation_worker,
                initargs=(program,),
                on_result=merge_batch,
            )
        except SweepPointError:
            # A batch that stayed broken is not a verdict on its points:
            # each one gets an individual hearing below.
            pass

    # Phase 2 (and the whole story for serial / affinity-off runs):
    # every undelivered point as its own supervised task.
    leftovers = [
        index for index in range(len(configs)) if index not in delivered
    ]
    if leftovers:
        supervised_map(
            _supervised_point,
            [(keys[index], configs[index]) for index in leftovers],
            jobs=jobs,
            timeout=timeout,
            max_retries=max_retries,
            backoff=backoff,
            report=report,
            labels=[keys[index][:12] for index in leftovers],
            no_retry=(DeadlockError, SimulationTimeout),
            initializer=_init_simulation_worker,
            initargs=(program,),
            on_result=lambda position, value: merge_point(
                leftovers[position], value
            ),
        )
    return [delivered[index] for index in range(len(configs))]


# ----------------------------------------------------------------------
# Sweep checkpoint / resume
# ----------------------------------------------------------------------
class CheckpointLockError(RuntimeError):
    """Another live process holds the checkpoint manifest's lock."""


class SweepCheckpoint:
    """Atomic manifest of completed sweep points, for ``--resume``.

    Entries are keyed by the simulation cache's content address (which
    folds in the program image, every config field, the cache format
    and the engine revision), so a stale manifest can never satisfy a
    changed sweep — unmatched entries are simply ignored.  Writes go to
    a temp sibling and are published with ``os.replace``, every
    ``interval`` completions and at :meth:`flush`.

    **Exclusive lock.**  ``os.replace`` makes each individual publish
    atomic, but two ``--resume`` runs writing the same manifest would
    still interleave *whole* publishes and silently drop each other's
    points (last writer wins).  :meth:`acquire` takes an exclusive
    lockfile (``<manifest>.lock``, claimed with ``O_CREAT | O_EXCL``)
    before the manifest is read or written; a second run fails fast
    with :class:`CheckpointLockError` naming the holder instead of
    corrupting progress.  A lock left by a dead process (the pid inside
    no longer exists) is broken automatically — a crashed sweep must
    not brick its own resume.  The supervised sweep path and the job
    service acquire the lock for you; direct users can treat the
    checkpoint as a context manager.
    """

    MANIFEST_VERSION = 1

    def __init__(self, path: str | os.PathLike, interval: int = 8):
        self.path = Path(path)
        self.interval = max(1, int(interval))
        self._points: dict[str, dict] = {}
        self._dirty = 0
        self._lock_fd: int | None = None

    # ------------------------------------------------------------------
    # Exclusive lock (one live writer per manifest)
    # ------------------------------------------------------------------
    @property
    def lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".lock")

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except (PermissionError, OSError):
            return True  # exists but isn't ours — still alive
        return True

    def acquire(self) -> "SweepCheckpoint":
        """Take the manifest's exclusive lock (idempotent per instance).

        Raises :class:`CheckpointLockError` if a *live* process holds
        it; a stale lock (dead pid, or unreadable contents) is broken
        and re-claimed.
        """
        if self._lock_fd is not None:
            return self  # already ours
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for _attempt in range(16):
            try:
                fd = os.open(
                    self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                try:
                    holder = int(self.lock_path.read_text().strip())
                except (OSError, ValueError):
                    holder = None  # torn write or vanished: treat as stale
                if (
                    holder is not None
                    and holder != os.getpid()  # our own earlier claim
                    and self._pid_alive(holder)
                ):
                    raise CheckpointLockError(
                        f"checkpoint {self.path} is locked by running "
                        f"process {holder} ({self.lock_path})"
                    )
                # Stale: break it and race for the claim again.  Only
                # one of several breakers wins the O_EXCL create.
                try:
                    self.lock_path.unlink()
                except OSError:
                    pass
                continue
            os.write(fd, str(os.getpid()).encode())
            self._lock_fd = fd
            return self
        raise CheckpointLockError(
            f"could not claim {self.lock_path} after repeated stale-lock "
            "breaks (another process keeps re-claiming it)"
        )

    def release(self) -> None:
        """Drop the lock (no-op when not held by this instance)."""
        if self._lock_fd is None:
            return
        try:
            os.close(self._lock_fd)
        except OSError:
            pass
        self._lock_fd = None
        try:
            self.lock_path.unlink()
        except OSError:
            pass

    @property
    def locked(self) -> bool:
        return self._lock_fd is not None

    def __enter__(self) -> "SweepCheckpoint":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def load(self) -> int:
        """Read the manifest; a missing/corrupt one starts empty."""
        try:
            payload = json.loads(self.path.read_text())
            points = payload["points"]
            if payload.get("version") != self.MANIFEST_VERSION or not isinstance(
                points, dict
            ):
                raise ValueError("unrecognized checkpoint manifest")
        except (OSError, ValueError, KeyError, TypeError):
            self._points = {}
            return 0
        self._points = points
        return len(points)

    def get(self, key: str) -> SimulationResult | None:
        """A completed point's result, or ``None`` (bad entries ignored)."""
        payload = self._points.get(key)
        if payload is None:
            return None
        try:
            return SimulationResult.from_dict(payload)
        except (ValueError, KeyError, TypeError):
            self._points.pop(key, None)
            return None

    def add(self, key: str, result: SimulationResult) -> None:
        self._points[key] = result.to_dict()
        self._dirty += 1
        if self._dirty >= self.interval:
            self.flush()

    def flush(self) -> None:
        """Publish the manifest atomically (temp file + ``os.replace``)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": self.MANIFEST_VERSION, "points": self._points}
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        # Canonical key order: manifests written under different point
        # scheduling (affinity batches vs singletons vs serial) compare
        # byte-identical once they hold the same completed points.
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, self.path)
        self._dirty = 0

    def __len__(self) -> int:
        return len(self._points)


# ----------------------------------------------------------------------
# The bundle run_cache_sweep consumes
# ----------------------------------------------------------------------
@dataclass
class SweepSupervisor:
    """Fault-tolerance knobs for one supervised sweep.

    Passed to :func:`repro.core.sweep.run_cache_sweep`; the sweep
    routes its misses through :func:`supervised_simulate_many`, records
    cache quarantines into :attr:`report`, checkpoints completions into
    :attr:`checkpoint`, and — with :attr:`resume` — pre-resolves points
    the manifest already holds (counted in :attr:`resumed`).
    """

    jobs: int | None = None
    timeout: float | None = None
    max_retries: int = 2
    backoff: float = 0.25
    report: FaultReport = field(default_factory=FaultReport)
    checkpoint: SweepCheckpoint | None = None
    resume: bool = False
    resumed: int = 0  #: points satisfied from the manifest this run

    def simulate_points(
        self,
        program: Program,
        configs: Sequence[MachineConfig],
        keys: Sequence[str],
        on_result: Callable[[int, SimulationResult], None] | None = None,
    ) -> list[SimulationResult]:
        return supervised_simulate_many(
            program,
            configs,
            keys=keys,
            jobs=self.jobs,
            timeout=self.timeout,
            max_retries=self.max_retries,
            backoff=self.backoff,
            report=self.report,
            on_result=on_result,
        )
