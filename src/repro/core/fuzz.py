"""Differential fuzzing of the engine ladder over generated kernels.

For each seeded workload from :mod:`repro.kernels.generate` the harness
checks two layers of the system against each other:

1. **Compiler vs interpreter** — the kernel is compiled to a PIPE
   program, executed on the functional simulator, and every array
   element plus every scalar result slot is compared **bit-for-bit**
   against the float32-exact reference interpreter.
2. **Engine ladder** — for each machine configuration in the sample,
   the program runs through all four engines (reference, idle-skip,
   skip+replay, compiled) with tracing on, and the harness asserts
   identical cycle counts, identical stats dicts, and byte-identical
   trace streams.

A failing case is **shrunk**: the harness greedily applies
semantics-preserving reductions (drop statements, halve iteration/trip
counts, unwrap conditionals, prune unused arrays) while the failure
reproduces, then writes the minimal workload as a JSON reproducer
(:mod:`repro.kernels.serialize`) that can be committed under
``tests/corpus/`` as a permanent regression test.

Run it from the CLI::

    repro-sim fuzz --seed 0 --count 100 --budget default
    repro-sim fuzz --corpus tests/corpus          # re-check reproducers
"""

from __future__ import annotations

import json
import struct
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..cpu.functional import FunctionalSimulator
from ..kernels.dsl import (
    ArrayDecl,
    BinOp,
    If,
    Kernel,
    KernelValidationError,
    Loop,
    ScalarUpdate,
    Store,
    validate_kernel,
)
from ..kernels.codegen import CompileError, compile_kernel
from ..kernels.generate import BUDGETS, generate_workload
from ..kernels.reference import f32, run_kernel_reference
from ..kernels.serialize import workload_from_json, workload_to_json
from ..kernels.suite import KernelSuite, build_kernel_suite
from .config import MachineConfig
from .simulator import simulate_traced

__all__ = [
    "ENGINES",
    "FUZZ_CONFIGS",
    "FuzzFailure",
    "FuzzReport",
    "check_workload",
    "run_corpus",
    "run_fuzz",
    "shrink_workload",
]

#: The four-engine ladder, mirroring tests/test_scheduler_differential.
ENGINES = (
    ("reference", {"skip": False, "replay": False, "compiled": False}),
    ("idle-skip", {"skip": True, "replay": False, "compiled": False}),
    ("skip+replay", {"skip": True, "replay": True, "compiled": False}),
    ("compiled", {"skip": True, "replay": True, "compiled": True}),
)

#: Machine configurations the fuzzer cycles through (one per case, by
#: seed, so a 100-case run covers every row).  Factories, not instances:
#: configs stay immutable across cases.
FUZZ_CONFIGS = {
    "pipe-16-16": lambda: MachineConfig.pipe("16-16", 128, memory_access_time=6),
    "pipe-16-16-slow-mem": lambda: MachineConfig.pipe(
        "16-16", 128, memory_access_time=12
    ),
    "conventional-128": lambda: MachineConfig.conventional(
        128, memory_access_time=6
    ),
    "tib": lambda: MachineConfig.tib(memory_access_time=6),
}

_FUNCTIONAL_MAX_STEPS = 5_000_000


@dataclass
class FuzzFailure:
    """One diverging case, optionally with a minimized reproducer."""

    seed: int
    budget: str
    config_name: str
    problems: list[str]
    reproducer_path: str | None = None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "config": self.config_name,
            "problems": self.problems,
            "reproducer": self.reproducer_path,
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzzing run."""

    cases: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "cases": self.cases,
            "failures": [failure.to_dict() for failure in self.failures],
            "ok": self.ok,
        }

    def summary(self) -> str:
        if self.ok:
            return f"fuzz: {self.cases} cases, all engines byte-identical"
        return (
            f"fuzz: {len(self.failures)} of {self.cases} cases diverged "
            f"(seeds {[failure.seed for failure in self.failures]})"
        )


# ----------------------------------------------------------------------
# The per-case differential check
# ----------------------------------------------------------------------
def _functional_problems(suite: KernelSuite, kernel: Kernel) -> list[str]:
    """Compiled program vs reference interpreter, bit for bit."""
    reference_arrays = suite.initial_reference_arrays()
    try:
        scalars = run_kernel_reference(kernel, reference_arrays)
    except IndexError as error:
        return [f"reference interpreter rejected the kernel: {error}"]
    simulator = FunctionalSimulator(suite.program, max_steps=_FUNCTIONAL_MAX_STEPS)
    simulator.run()
    memory = simulator.memory

    problems: list[str] = []
    for decl in suite.arrays:
        base = suite.array_base(decl.name)
        expected = reference_arrays[decl.name]
        for position in range(decl.length):
            raw = bytes(memory[base + 4 * position : base + 4 * position + 4])
            if decl.kind == "float":
                want = struct.pack("<f", expected[position])
            else:
                want = struct.pack("<I", int(expected[position]) & 0xFFFFFFFF)
            if raw != want:
                problems.append(
                    f"memory: {decl.name}[{position}] = {raw.hex()} "
                    f"!= reference {want.hex()}"
                )
                break  # first divergence per array is enough
    for position, name in enumerate(kernel.scalars):
        address = suite.scalar_result_address(kernel.label, position)
        raw = bytes(memory[address : address + 4])
        want = struct.pack("<f", scalars[name])
        if raw != want:
            problems.append(
                f"scalar {name} = {raw.hex()} != reference {want.hex()}"
            )
    for position, name in enumerate(kernel.int_scalars):
        address = suite.int_scalar_result_address(kernel.label, position)
        raw = bytes(memory[address : address + 4])
        want = struct.pack("<I", scalars[name] & 0xFFFFFFFF)
        if raw != want:
            problems.append(
                f"int scalar {name} = {raw.hex()} != reference {want.hex()}"
            )
    return problems


def _select_engines(engines: list[str] | None) -> tuple:
    """Resolve an engine-tag filter against :data:`ENGINES`.

    ``reference`` is always included — it is the baseline every other
    rung is compared against — so ``engines=["compiled"]`` pins a run
    to the reference/compiled pair.
    """
    if engines is None:
        return ENGINES
    known = {tag for tag, _ in ENGINES}
    unknown = [tag for tag in engines if tag not in known]
    if unknown:
        raise ValueError(
            f"unknown engine tag(s) {unknown}; choose from {sorted(known)}"
        )
    wanted = set(engines) | {"reference"}
    return tuple(pair for pair in ENGINES if pair[0] in wanted)


def _ladder_problems(
    suite: KernelSuite,
    config: MachineConfig,
    engines: list[str] | None = None,
) -> list[str]:
    """Four-engine run: cycles, stats dicts, and trace bytes must match."""
    problems: list[str] = []
    selected = _select_engines(engines)
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
        runs = {}
        for tag, kwargs in selected:
            path = Path(tmp) / f"{tag.replace('+', '-')}.jsonl"
            try:
                result = simulate_traced(config, suite.program, path, **kwargs)
            except Exception as error:  # noqa: BLE001 - any engine crash is a finding
                problems.append(f"[{tag}] raised {type(error).__name__}: {error}")
                continue
            runs[tag] = (result, path)
        if "reference" not in runs:
            return problems
        reference_result, reference_path = runs["reference"]
        reference_trace = reference_path.read_bytes()
        for tag, _kwargs in selected:
            if tag == "reference" or tag not in runs:
                continue
            result, path = runs[tag]
            if result.cycles != reference_result.cycles:
                problems.append(
                    f"[{tag}] cycles {result.cycles} != "
                    f"reference {reference_result.cycles}"
                )
            fast_dict, reference_dict = result.to_dict(), reference_result.to_dict()
            if fast_dict != reference_dict:
                keys = [
                    key
                    for key in sorted(set(fast_dict) | set(reference_dict))
                    if fast_dict.get(key) != reference_dict.get(key)
                ]
                problems.append(f"[{tag}] stats differ on keys {keys}")
            if path.read_bytes() != reference_trace:
                problems.append(f"[{tag}] trace bytes differ from reference")
    return problems


def check_workload(
    kernel: Kernel,
    arrays,
    config: MachineConfig,
    engines: list[str] | None = None,
) -> list[str]:
    """All divergences for one workload × config (empty = clean).

    ``engines`` restricts the ladder to the named tags (plus the
    reference baseline); ``None`` runs all four rungs.
    """
    try:
        suite = build_kernel_suite([kernel], list(arrays))
    except (KernelValidationError, CompileError, ValueError) as error:
        return [f"suite build failed: {type(error).__name__}: {error}"]
    problems = _functional_problems(suite, kernel)
    problems.extend(_ladder_problems(suite, config, engines))
    return problems


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _block_variants(block: tuple):
    """Yield structurally smaller variants of one statement tuple."""
    for position in range(len(block)):
        yield block[:position] + block[position + 1 :]
    for position, statement in enumerate(block):
        before, after = block[:position], block[position + 1 :]
        if isinstance(statement, If):
            yield before + statement.then + statement.orelse + after
            if statement.orelse:
                yield before + (replace(statement, orelse=()),) + after
        if isinstance(statement, Loop):
            if statement.trips > 1:
                yield before + (
                    replace(statement, trips=max(1, statement.trips // 2)),
                ) + after
            for body in _block_variants(statement.body):
                if body:
                    yield before + (replace(statement, body=body),) + after
        if isinstance(statement, If):
            for then in _block_variants(statement.then):
                if then or statement.orelse:
                    yield before + (replace(statement, then=then),) + after
            for orelse in _block_variants(statement.orelse):
                yield before + (replace(statement, orelse=orelse),) + after
        if isinstance(statement, (Store, ScalarUpdate)) and isinstance(
            statement.expr, BinOp
        ):
            yield before + (replace(statement, expr=statement.expr.lhs),) + after
            yield before + (replace(statement, expr=statement.expr.rhs),) + after


def _kernel_variants(kernel: Kernel):
    """Smaller candidate kernels, most aggressive reductions first."""
    for iterations in (1, 2, kernel.iterations // 2):
        if 0 < iterations < kernel.iterations:
            yield replace(kernel, iterations=iterations)
    for statements in _block_variants(kernel.statements):
        if statements:
            yield replace(kernel, statements=statements)


def _prune_arrays(kernel: Kernel, arrays) -> list[ArrayDecl]:
    used = kernel.referenced_arrays()
    kept = [decl for decl in arrays if decl.name in used]
    return kept if kept else list(arrays)


def shrink_workload(
    kernel: Kernel,
    arrays,
    config: MachineConfig,
    max_rounds: int = 40,
    still_fails=None,
) -> tuple[Kernel, list[ArrayDecl]]:
    """Greedy shrink: keep any smaller variant that still diverges.

    The returned workload is guaranteed to still fail the predicate
    (it is only ever replaced by variants that do).  ``still_fails``
    defaults to running :func:`check_workload` on ``config``; tests can
    inject a cheaper predicate.  Bounded by ``max_rounds`` accepted
    reductions.
    """
    if still_fails is None:
        still_fails = lambda k, a: bool(check_workload(k, a, config))  # noqa: E731
    arrays = list(arrays)
    for _ in range(max_rounds):
        for candidate in _kernel_variants(kernel):
            try:
                validate_kernel(candidate, arrays)
                compile_kernel(candidate)
            except (KernelValidationError, CompileError):
                continue
            candidate_arrays = _prune_arrays(candidate, arrays)
            if still_fails(candidate, candidate_arrays):
                kernel, arrays = candidate, candidate_arrays
                break  # restart the pass from the smaller kernel
        else:
            break  # no variant reproduces: fixed point
    return kernel, arrays


# ----------------------------------------------------------------------
# Campaign drivers
# ----------------------------------------------------------------------
def _config_for_case(index: int, config_names: list[str]) -> str:
    return config_names[index % len(config_names)]


def run_fuzz(
    start_seed: int = 0,
    count: int = 100,
    budget: str = "default",
    configs: list[str] | None = None,
    failures_dir: str | Path | None = None,
    shrink: bool = True,
    progress=None,
    engines: list[str] | None = None,
) -> FuzzReport:
    """Fuzz ``count`` seeded workloads starting at ``start_seed``.

    Each case pairs one generated workload with one configuration from
    ``configs`` (default: all of :data:`FUZZ_CONFIGS`, round-robin).
    Failures are shrunk and written as JSON reproducers under
    ``failures_dir`` (if given); ``progress`` is an optional callable
    receiving one status line per case.  ``engines`` pins the ladder to
    the named rungs plus the reference baseline (default: all four).
    """
    _select_engines(engines)  # validate tags before the first case
    config_names = list(configs or FUZZ_CONFIGS)
    for name in config_names:
        if name not in FUZZ_CONFIGS:
            raise ValueError(
                f"unknown fuzz config {name!r}; choose from {sorted(FUZZ_CONFIGS)}"
            )
    if budget not in BUDGETS:
        raise ValueError(f"unknown budget {budget!r}; choose from {sorted(BUDGETS)}")

    report = FuzzReport()
    for index in range(count):
        seed = start_seed + index
        config_name = _config_for_case(index, config_names)
        config = FUZZ_CONFIGS[config_name]()
        workload = generate_workload(seed, budget)
        problems = check_workload(
            workload.kernel, workload.arrays, config, engines=engines
        )
        report.cases += 1
        if progress is not None:
            status = "ok" if not problems else f"FAIL ({len(problems)} problems)"
            progress(f"seed {seed} [{config_name}] {status}")
        if not problems:
            continue
        failure = FuzzFailure(
            seed=seed,
            budget=budget,
            config_name=config_name,
            problems=problems,
        )
        if failures_dir is not None:
            kernel, arrays = workload.kernel, list(workload.arrays)
            if shrink:
                kernel, arrays = shrink_workload(kernel, arrays, config)
            directory = Path(failures_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"seed{seed}-{config_name}.json"
            path.write_text(
                workload_to_json(
                    kernel,
                    arrays,
                    seed=seed,
                    note=(
                        f"minimized from seed {seed}, budget {budget}, "
                        f"config {config_name}: {problems[0]}"
                    ),
                )
            )
            failure.reproducer_path = str(path)
        report.failures.append(failure)
    return report


def run_corpus(
    corpus_dir: str | Path,
    configs: list[str] | None = None,
    progress=None,
    engines: list[str] | None = None,
) -> FuzzReport:
    """Re-check every JSON reproducer in ``corpus_dir`` on all configs."""
    _select_engines(engines)  # validate tags before the first case
    config_names = list(configs or FUZZ_CONFIGS)
    paths = sorted(Path(corpus_dir).glob("*.json"))
    if not paths:
        raise ValueError(f"no corpus entries (*.json) under {corpus_dir}")
    report = FuzzReport()
    for path in paths:
        kernel, arrays, metadata = workload_from_json(path.read_text())
        for config_name in config_names:
            config = FUZZ_CONFIGS[config_name]()
            problems = check_workload(kernel, arrays, config, engines=engines)
            report.cases += 1
            if progress is not None:
                status = "ok" if not problems else f"FAIL ({len(problems)} problems)"
                progress(f"{path.name} [{config_name}] {status}")
            if problems:
                report.failures.append(
                    FuzzFailure(
                        seed=metadata.get("seed") or -1,
                        budget="corpus",
                        config_name=config_name,
                        problems=problems,
                        reproducer_path=str(path),
                    )
                )
    return report
