"""Architectural data queues.

PIPE exposes four queues to the memory system (paper section 3.1.2):

* **LAQ** — Load Address Queue: load instructions push effective addresses.
* **LDQ** — Load Data Queue: memory pushes returned data; reading register
  7 as a source pops the head.
* **SAQ** — Store Address Queue: store instructions push effective
  addresses.
* **SDQ** — Store Data Queue: writing register 7 pushes data; the memory
  interface pairs SAQ/SDQ heads and sends them off chip together.

All four are plain bounded FIFOs; the *timing* of entries arriving and
leaving is the memory engine's business (:mod:`repro.memory`), not the
queue's.  Queues keep occupancy statistics because queue pressure is one
of the effects the paper's evaluation studies.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Iterator, TypeVar

from ..core.scheduler import ProgressClock
from ..core.trace import NULL_TRACER, Tracer

__all__ = [
    "QueueEmptyError",
    "QueueFullError",
    "ArchitecturalQueue",
]

T = TypeVar("T")


class QueueFullError(RuntimeError):
    """Pushed to a full architectural queue (a simulator bug: the issue
    logic must block instead)."""


class QueueEmptyError(RuntimeError):
    """Popped from an empty architectural queue (a simulator bug: the
    issue logic must block instead)."""


class ArchitecturalQueue(Generic[T]):
    """A bounded FIFO with occupancy statistics.

    ``capacity`` of ``None`` means unbounded (useful in the functional
    simulator, where queue pressure is irrelevant).
    """

    #: compiled-kernel contract (``repro.core.compiled``): ``_items``
    #: is never rebound (``clear`` empties it in place), so the kernel
    #: may hoist the deque and fold ``is_full``/``is_empty`` into
    #: ``len()`` checks against the capacity literal.  Mutations still
    #: go through ``push``/``pop`` so ticks/stats/trace stay exact.
    COMPILED_PLAIN_FIFO = True

    def __init__(
        self,
        name: str,
        capacity: int | None = None,
        tracer: Tracer | None = None,
        clock: ProgressClock | None = None,
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"queue {name}: capacity must be positive or None")
        self.name = name
        self.capacity = capacity
        self._items: deque[T] = deque()
        self.total_pushes = 0
        self.total_pops = 0
        self.max_occupancy = 0
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock if clock is not None else ProgressClock()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def free_slots(self) -> int | None:
        if self.capacity is None:
            return None
        return self.capacity - len(self._items)

    # ------------------------------------------------------------------
    def push(self, item: T) -> None:
        if self.is_full:
            raise QueueFullError(f"queue {self.name} is full (capacity {self.capacity})")
        self._items.append(item)
        self._clock.ticks += 1
        self.total_pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._items))
        if self._tracer.enabled:
            self._tracer.emit("queue", "push", queue=self.name, depth=len(self._items))

    def pop(self) -> T:
        if not self._items:
            raise QueueEmptyError(f"queue {self.name} is empty")
        self.total_pops += 1
        self._clock.ticks += 1
        item = self._items.popleft()
        if self._tracer.enabled:
            self._tracer.emit("queue", "pop", queue=self.name, depth=len(self._items))
        return item

    def peek(self) -> T:
        if not self._items:
            raise QueueEmptyError(f"queue {self.name} is empty")
        return self._items[0]

    def clear(self) -> None:
        self._items.clear()

    # ------------------------------------------------------------------
    def state_signature(self) -> tuple:
        """Occupancy shape for the replay engine's machine fingerprint.

        Entry *contents* are data (addresses and values stride across
        loop iterations), so only the occupancy participates; the
        data-engine signature layers entry sequence offsets on top for
        the queues where relative age drives arbitration.
        """
        return (self.name, len(self._items))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} {self.name} "
            f"{len(self._items)}/{self.capacity or '∞'}>"
        )
