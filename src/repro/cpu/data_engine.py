"""The data-queue engine: LAQ/LDQ/SAQ/SDQ and their memory interface.

This is the timing-side owner of PIPE's architectural data queues (paper
section 3.1.2) and a request source for the memory system:

* a **load** instruction pushes its effective address on the LAQ at
  issue; the engine offers the LAQ head to output-bus arbitration (with
  a credit check so outstanding loads can never overflow the LDQ); data
  returns over the input bus and enters the LDQ *in program order*;
* a **store** leaves the chip when both the SAQ head (address) and the
  SDQ head (data) are present and the pair wins arbitration;
* loads and stores are offered oldest-first, so a load can never bypass
  an older store at the memory interface (which also keeps the values
  consistent with the functional commit order).

Value semantics follow the functional-first discipline: load values and
store commits are computed *at issue time* against an engine-private
functional memory (plus the semantic FPU core), while the queues, buses
and latencies only decide *when* the LDQ head becomes poppable.  Issue
order equals program order, so the values are exact; the paper's
performance effects (queue pressure, bus competition between I-fetch and
D-fetch) are all timing effects, which this engine models in full.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..asm.program import WORD_BYTES, Program
from ..core.scheduler import IDLE, ProgressClock
from ..core.trace import NULL_TRACER, Tracer
from ..memory.fpu import FPU_BASE, FpuCore, is_fpu_address
from ..memory.requests import MemoryRequest, RequestKind
from .queues import ArchitecturalQueue

__all__ = ["DataQueueEngine", "DataEngineStats"]


@dataclass
class _LaqEntry:
    address: int
    value: int  #: functionally-computed load value
    seq: int


@dataclass
class _SaqEntry:
    address: int
    seq: int


@dataclass
class _SdqEntry:
    value: int
    seq: int


@dataclass
class _InFlightLoad:
    value: int
    arrived: bool = False


@dataclass
class DataEngineStats:
    loads_issued: int = 0
    stores_issued: int = 0
    fpu_loads: int = 0
    fpu_stores: int = 0
    ordering_hazards: int = 0  #: loads overlapping an in-queue store address
    ldq_max_wait_entries: int = field(default=0, repr=False)


class DataQueueEngine:
    """Owns the four architectural queues and talks to the memory system."""

    #: compiled-kernel contract: ``next_event_cycle`` is statically
    #: ``IDLE`` (see its docstring), so the generator may drop this
    #: component from the idle-skip wake scan entirely.
    COMPILED_IDLE_HINT = True

    def __init__(
        self,
        program: Program,
        next_seq,
        laq_capacity: int = 8,
        ldq_capacity: int = 8,
        saq_capacity: int = 8,
        sdq_capacity: int = 8,
        tracer: Tracer | None = None,
        clock: ProgressClock | None = None,
    ):
        if program.memory_size > FPU_BASE:
            raise ValueError(
                f"program image ({program.memory_size} bytes) overlaps the "
                f"FPU window at {FPU_BASE:#x}"
            )
        self.memory = bytearray(program.image)
        self.fpu_core = FpuCore()
        self._next_seq = next_seq
        self._tracer = tracer if tracer is not None else NULL_TRACER
        tracer = self._tracer
        clock = clock if clock is not None else ProgressClock()
        self._clock = clock
        self.laq: ArchitecturalQueue[_LaqEntry] = ArchitecturalQueue(
            "LAQ", laq_capacity, tracer=tracer, clock=clock
        )
        self.ldq: ArchitecturalQueue[int] = ArchitecturalQueue(
            "LDQ", ldq_capacity, tracer=tracer, clock=clock
        )
        self.saq: ArchitecturalQueue[_SaqEntry] = ArchitecturalQueue(
            "SAQ", saq_capacity, tracer=tracer, clock=clock
        )
        self.sdq: ArchitecturalQueue[_SdqEntry] = ArchitecturalQueue(
            "SDQ", sdq_capacity, tracer=tracer, clock=clock
        )
        self._in_flight_loads: deque[_InFlightLoad] = deque()
        #: store pairs committed functionally but not yet paired in the
        #: timing queues (addresses awaiting their SDQ half)
        self._uncommitted_addresses: deque[int] = deque()
        self._uncommitted_data: deque[int] = deque()
        self.stats = DataEngineStats()
        self._offered: MemoryRequest | None = None
        self._offered_is_store = False
        #: replay recording: when a list, issue-side pushes append
        #: ``("laq", addr, seq, hazards)`` / ``("saq", addr, seq)`` /
        #: ``("sdq", value, seq)`` and store departures append
        #: ``("sd",)``, in true temporal order
        self.replay_log: list | None = None

    # ------------------------------------------------------------------
    # Functional memory
    # ------------------------------------------------------------------
    def _check_address(self, address: int) -> None:
        if address % WORD_BYTES != 0:
            raise ValueError(f"unaligned data access at {address:#x}")
        if not is_fpu_address(address) and address + WORD_BYTES > len(self.memory):
            raise IndexError(
                f"data access at {address:#x} outside memory of "
                f"{len(self.memory)} bytes"
            )

    def _functional_read(self, address: int) -> int:
        self._check_address(address)
        if is_fpu_address(address):
            return self.fpu_core.read(address)
        return int.from_bytes(self.memory[address : address + WORD_BYTES], "little")

    def _functional_write(self, address: int, value: int) -> None:
        self._check_address(address)
        if is_fpu_address(address):
            before = self.fpu_core.operations_started
            self.fpu_core.write(address, value)
            if self._tracer.enabled and self.fpu_core.operations_started > before:
                self._tracer.emit("engine", "fpu_op", addr=address)
        else:
            self.memory[address : address + WORD_BYTES] = (
                value & 0xFFFFFFFF
            ).to_bytes(WORD_BYTES, "little")

    def _commit_pending_stores(self) -> None:
        while self._uncommitted_addresses and self._uncommitted_data:
            self._functional_write(
                self._uncommitted_addresses.popleft(),
                self._uncommitted_data.popleft(),
            )

    # ------------------------------------------------------------------
    # Issue-side interface (the back-end's execution environment)
    # ------------------------------------------------------------------
    def ldq_has_data(self) -> bool:
        return not self.ldq.is_empty

    def pop_ldq(self) -> int:
        return self.ldq.pop()

    @property
    def laq_full(self) -> bool:
        return self.laq.is_full

    @property
    def saq_full(self) -> bool:
        return self.saq.is_full

    @property
    def sdq_full(self) -> bool:
        return self.sdq.is_full

    def push_laq(self, address: int) -> None:
        for pending in self._uncommitted_addresses:
            if pending == address:
                raise RuntimeError(
                    f"load from {address:#x} while a store to the same address "
                    "awaits its SDQ data — miscompiled program"
                )
        hazards = 0
        for entry in self.saq:
            if entry.address == address:
                hazards += 1
                self.stats.ordering_hazards += 1
                if self._tracer.enabled:
                    self._tracer.emit("engine", "hazard", addr=address)
        value = self._functional_read(address)
        seq = self._next_seq()
        self.laq.push(_LaqEntry(address=address, value=value, seq=seq))
        if self.replay_log is not None:
            self.replay_log.append(("laq", address, seq, hazards))
        self.stats.loads_issued += 1
        if is_fpu_address(address):
            self.stats.fpu_loads += 1

    def push_saq(self, address: int) -> None:
        seq = self._next_seq()
        self.saq.push(_SaqEntry(address=address, seq=seq))
        if self.replay_log is not None:
            self.replay_log.append(("saq", address, seq))
        self._uncommitted_addresses.append(address)
        self._commit_pending_stores()
        self.stats.stores_issued += 1
        if is_fpu_address(address):
            self.stats.fpu_stores += 1

    def push_sdq(self, value: int) -> None:
        seq = self._next_seq()
        self.sdq.push(_SdqEntry(value=value, seq=seq))
        if self.replay_log is not None:
            self.replay_log.append(("sdq", value, seq))
        self._uncommitted_data.append(value)
        self._commit_pending_stores()

    # ------------------------------------------------------------------
    # Per-cycle update: deliver arrived loads into the LDQ, in order
    # ------------------------------------------------------------------
    def update(self, now: int) -> None:
        while (
            self._in_flight_loads
            and self._in_flight_loads[0].arrived
            and not self.ldq.is_full
        ):
            self.ldq.push(self._in_flight_loads.popleft().value)
        self.stats.ldq_max_wait_entries = max(
            self.stats.ldq_max_wait_entries, len(self._in_flight_loads)
        )

    # ------------------------------------------------------------------
    # compiled-kernel lowering (repro.core.compiled)
    # ------------------------------------------------------------------
    @classmethod
    def emit_compiled_update(cls, ctx) -> None:
        """Lower :meth:`update` into the kernel.

        The LDQ-full check folds the capacity literal; the push still
        goes through the queue's bound ``push`` (hoisted in the
        prologue) so occupancy stats, progress ticks, and trace events
        stay exactly the reference's.  ``_in_flight_loads`` is read
        through the engine because replay's commit may replace flight
        entries in place while the deque object itself persists.
        """
        spec = ctx.spec
        ctx.need("engine", "engine_stats", "ldq_items", "ldq_push")
        ctx.line("ifl = engine._in_flight_loads")
        condition = "ifl and ifl[0].arrived"
        if spec.ldq_capacity is not None:
            condition += f" and len(ldq_items) < {spec.ldq_capacity}"
        with ctx.block(f"while {condition}:"):
            ctx.line("ldq_push(ifl.popleft().value)")
        with ctx.block("if len(ifl) > engine_stats.ldq_max_wait_entries:"):
            ctx.line("engine_stats.ldq_max_wait_entries = len(ifl)")

    # ------------------------------------------------------------------
    # Request source (output-bus arbitration)
    # ------------------------------------------------------------------
    def _load_credit_available(self) -> bool:
        capacity = self.ldq.capacity
        if capacity is None:
            return True
        return len(self._in_flight_loads) + len(self.ldq) < capacity

    def poll_requests(self, now: int) -> list[MemoryRequest]:
        """Offer the oldest ready data transaction (at most one).

        Head-of-line, program order: the LAQ head and the SAQ/SDQ pair
        compete by sequence number, so memory always sees data requests
        in issue order.
        """
        load_entry = None
        if not self.laq.is_empty and self._load_credit_available():
            load_entry = self.laq.peek()
        store_ready = not self.saq.is_empty and not self.sdq.is_empty
        if load_entry is not None and store_ready:
            if load_entry.seq > self.saq.peek().seq:
                load_entry = None  # the store is older
        elif load_entry is None and not store_ready:
            return []
        if load_entry is not None:
            request = MemoryRequest(
                kind=RequestKind.LOAD,
                address=load_entry.address,
                size=WORD_BYTES,
                seq=load_entry.seq,
                demand=True,
            )
            self._offered_is_store = False
        else:
            saq_head = self.saq.peek()
            sdq_head = self.sdq.peek()
            request = MemoryRequest(
                kind=RequestKind.STORE,
                address=saq_head.address,
                size=WORD_BYTES,
                seq=saq_head.seq,
                demand=True,
                store_value=sdq_head.value,
            )
            self._offered_is_store = True
        self._offered = request
        return [request]

    def notify_accepted(self, request: MemoryRequest, now: int) -> None:
        if self._offered_is_store:
            self.saq.pop()
            self.sdq.pop()
            if self.replay_log is not None:
                self.replay_log.append(("sd",))
            return
        entry = self.laq.pop()
        flight = _InFlightLoad(value=entry.value)

        def on_complete(_now: int, flight=flight) -> None:
            flight.arrived = True

        request.on_complete = on_complete
        self._in_flight_loads.append(flight)

    # ------------------------------------------------------------------
    def next_event_cycle(self, now: int) -> int:
        """Always ``IDLE``: the data engine is purely event-woken.

        Arrived loads enter the LDQ at the ``update`` following their
        delivery (an input-bus tick); a load blocked on a full LDQ waits
        for an issue-side pop (an issue tick); queue heads waiting at
        output-bus arbitration wait for acceptance (an acceptance tick).
        The engine never schedules an event on its own clock.
        """
        return IDLE

    # ------------------------------------------------------------------
    def state_signature(self, now: int, base_seq: int) -> tuple:
        """Queue-pipeline fingerprint with anchor-relative seqs.

        Addresses and values are data (they stride across iterations and
        are re-derived by functional re-execution); what must recur is
        the *shape*: occupancies, arrival flags, and each entry's age
        relative to the sequence allocator, which drives load-vs-store
        ordering at output-bus arbitration.  ``_offered`` is rebuilt by
        every poll, so it never participates.
        """
        return (
            self.ldq.state_signature(),
            tuple(flight.arrived for flight in self._in_flight_loads),
            tuple(entry.seq - base_seq for entry in self.laq),
            tuple(entry.seq - base_seq for entry in self.saq),
            tuple(entry.seq - base_seq for entry in self.sdq),
            len(self._uncommitted_addresses),
            len(self._uncommitted_data),
            self.fpu_core.results_pending,
        )

    # ------------------------------------------------------------------
    @property
    def drained(self) -> bool:
        """All data activity finished (used for end-of-run detection)."""
        return (
            self.laq.is_empty
            and self.saq.is_empty
            and self.sdq.is_empty
            and not self._in_flight_loads
        )
