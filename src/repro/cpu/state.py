"""Architectural register state.

PIPE has sixteen 32-bit data registers organised as a *foreground* bank of
8 (the only ones instructions can name) and a *background* bank of 8,
swapped wholesale by the ``EXCH`` instruction to speed up subroutine
calls (paper section 3.1).  Register 7 is the queue register and has **no
backing storage**: it is an architected window onto the LDQ (as a source)
and the SDQ (as a destination).  :class:`ArchState` therefore refuses to
read or write slot 7 directly — the executor routes those accesses to the
queues.

There are also eight branch registers holding PBR target addresses.
"""

from __future__ import annotations

from ..isa.registers import (
    NUM_BRANCH_REGISTERS,
    NUM_VISIBLE_REGISTERS,
    QUEUE_REGISTER,
    check_branch_register,
    check_data_register,
)
from .alu import to_unsigned

__all__ = ["ArchState"]


class ArchState:
    """Foreground/background data register banks plus branch registers."""

    def __init__(self) -> None:
        self._foreground = [0] * NUM_VISIBLE_REGISTERS
        self._background = [0] * NUM_VISIBLE_REGISTERS
        self._branch = [0] * NUM_BRANCH_REGISTERS

    # ------------------------------------------------------------------
    # Data registers
    # ------------------------------------------------------------------
    def read(self, register: int) -> int:
        """Read a foreground data register (never the queue register)."""
        check_data_register(register)
        if register == QUEUE_REGISTER:
            raise ValueError(
                "r7 is the queue register; reads must go through the LDQ"
            )
        return self._foreground[register]

    def write(self, register: int, value: int) -> None:
        """Write a foreground data register (never the queue register)."""
        check_data_register(register)
        if register == QUEUE_REGISTER:
            raise ValueError(
                "r7 is the queue register; writes must go through the SDQ"
            )
        self._foreground[register] = to_unsigned(value)

    def exchange_banks(self) -> None:
        """Swap the foreground and background banks (the EXCH instruction)."""
        self._foreground, self._background = self._background, self._foreground

    # ------------------------------------------------------------------
    # Branch registers
    # ------------------------------------------------------------------
    def read_branch(self, register: int) -> int:
        check_branch_register(register)
        return self._branch[register]

    def write_branch(self, register: int, value: int) -> None:
        check_branch_register(register)
        self._branch[register] = to_unsigned(value)

    # ------------------------------------------------------------------
    # Introspection (used by tests and debug dumps)
    # ------------------------------------------------------------------
    def branch_signature(self) -> tuple[int, ...]:
        """Branch-register contents for the replay machine fingerprint.

        Branch registers hold code addresses (PBR targets), which recur
        exactly in a steady-state loop; data registers are excluded —
        their values stride and are advanced by functional re-execution.
        """
        return tuple(self._branch)

    def snapshot(self) -> dict[str, list[int]]:
        """A copy of all register state for assertions and debugging."""
        return {
            "foreground": list(self._foreground),
            "background": list(self._background),
            "branch": list(self._branch),
        }
