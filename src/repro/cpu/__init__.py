"""Processor back-end: register state, architectural queues, instruction
semantics, the functional simulator, and (in :mod:`repro.cpu.backend`) the
cycle-level issue engine used by the timing simulator."""

from .alu import MASK32, alu_operate, to_signed, to_unsigned
from .executor import (
    ExecutionEnv,
    ExecutionOutcome,
    QueueEffects,
    execute,
    queue_effects,
)
from .functional import (
    FunctionalResult,
    FunctionalSimulator,
    MemoryOrderingError,
    SimulationLimitExceeded,
    run_functional,
)
from .queues import ArchitecturalQueue, QueueEmptyError, QueueFullError
from .state import ArchState

__all__ = [
    "ArchState",
    "ArchitecturalQueue",
    "ExecutionEnv",
    "ExecutionOutcome",
    "FunctionalResult",
    "FunctionalSimulator",
    "MASK32",
    "MemoryOrderingError",
    "QueueEffects",
    "QueueEmptyError",
    "QueueFullError",
    "SimulationLimitExceeded",
    "alu_operate",
    "execute",
    "queue_effects",
    "run_functional",
    "to_signed",
    "to_unsigned",
]
