"""Pure 32-bit ALU semantics.

All values are stored as unsigned 32-bit integers (0..2**32-1); signed
interpretation happens only inside comparison and arithmetic-shift
operations.  These helpers are shared by the functional and cycle-level
simulators so the two can never disagree about instruction semantics.
"""

from __future__ import annotations

from ..isa.opcodes import Opcode

__all__ = [
    "MASK32",
    "to_signed",
    "to_unsigned",
    "alu_operate",
]

MASK32 = 0xFFFFFFFF
_SHIFT_MASK = 31


def to_signed(value: int) -> int:
    """Reinterpret an unsigned 32-bit value as signed."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def to_unsigned(value: int) -> int:
    """Wrap any integer into unsigned 32-bit representation."""
    return value & MASK32


def alu_operate(op: Opcode, lhs: int, rhs: int) -> int:
    """Apply the ALU operation named by ``op`` to two 32-bit values.

    Works for both the register-register opcodes and their immediate
    twins (the caller passes the sign-extended or raw immediate as
    ``rhs`` as appropriate).
    """
    if op in (Opcode.ADD, Opcode.ADDI):
        return to_unsigned(lhs + rhs)
    if op in (Opcode.SUB, Opcode.SUBI):
        return to_unsigned(lhs - rhs)
    if op in (Opcode.AND, Opcode.ANDI):
        return to_unsigned(lhs & rhs)
    if op in (Opcode.OR, Opcode.ORI):
        return to_unsigned(lhs | rhs)
    if op in (Opcode.XOR, Opcode.XORI):
        return to_unsigned(lhs ^ rhs)
    if op in (Opcode.SLL, Opcode.SLLI):
        return to_unsigned(lhs << (rhs & _SHIFT_MASK))
    if op in (Opcode.SRL, Opcode.SRLI):
        return to_unsigned(lhs) >> (rhs & _SHIFT_MASK)
    if op in (Opcode.SRA, Opcode.SRAI):
        return to_unsigned(to_signed(lhs) >> (rhs & _SHIFT_MASK))
    if op in (Opcode.SEQ, Opcode.SEQI):
        return int(to_unsigned(lhs) == to_unsigned(rhs))
    if op in (Opcode.SNE, Opcode.SNEI):
        return int(to_unsigned(lhs) != to_unsigned(rhs))
    if op in (Opcode.SLT, Opcode.SLTI):
        return int(to_signed(lhs) < to_signed(rhs))
    if op in (Opcode.SLE, Opcode.SLEI):
        return int(to_signed(lhs) <= to_signed(rhs))
    raise ValueError(f"{op!r} is not an ALU operation")
