"""A functional (timing-free) simulator.

Runs a :class:`~repro.asm.program.Program` to completion, applying full
instruction semantics — architectural queues, the memory-mapped FPU,
prepare-to-branch delay slots — but charging no time.  It serves three
purposes:

* validating the kernel compiler (computed array results are compared
  against NumPy references in the test suite);
* providing the dynamic instruction counts that calibrate the benchmark
  suite against the paper's 150,575 executed instructions;
* acting as a semantic oracle for the cycle-level simulator (both must
  retire identical instruction streams and memory values).

Memory-ordering discipline
--------------------------
Loads are serviced instantly at execution, and store address/data pairs
commit as soon as both halves are present.  A load whose address matches
a store address still waiting for its data would read a stale value on
real decoupled hardware; the simulator raises
:class:`MemoryOrderingError` instead so miscompiled programs are caught
loudly (the kernel compiler always emits the SDQ push immediately after
the store address).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.program import WORD_BYTES, Program
from ..isa.encoding import decode_instruction
from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass
from ..memory.fpu import FPU_BASE, FpuCore, is_fpu_address
from .executor import execute
from .queues import ArchitecturalQueue
from .state import ArchState

__all__ = [
    "FunctionalResult",
    "FunctionalSimulator",
    "MemoryOrderingError",
    "SimulationLimitExceeded",
    "run_functional",
]


class MemoryOrderingError(RuntimeError):
    """A load overtook a store to the same address that lacked its data."""


class SimulationLimitExceeded(RuntimeError):
    """The program exceeded ``max_steps`` without halting."""


@dataclass
class FunctionalResult:
    """Outcome of a functional run."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    fpu_operations: int = 0
    branches: int = 0
    branches_taken: int = 0
    halted: bool = False
    #: dynamic instruction count per named region (see ``regions`` argument)
    by_region: dict[str, int] = field(default_factory=dict)


class _FunctionalEnv:
    """Execution environment with instantly-serviced queues."""

    def __init__(self, simulator: "FunctionalSimulator"):
        self._sim = simulator

    def pop_ldq(self) -> int:
        if self._sim.ldq.is_empty:
            raise RuntimeError(
                "r7 read with empty LDQ: the program consumed more load data "
                "than it requested"
            )
        return self._sim.ldq.pop()

    def push_sdq(self, value: int) -> None:
        self._sim.sdq.push(value)
        self._sim._commit_stores()

    def push_laq(self, address: int) -> None:
        self._sim._service_load(address)

    def push_saq(self, address: int) -> None:
        self._sim.saq.push(address)
        self._sim._commit_stores()


class FunctionalSimulator:
    """Executes a program with full semantics and zero timing."""

    def __init__(
        self,
        program: Program,
        max_steps: int = 50_000_000,
        regions: list[tuple[str, int, int]] | None = None,
    ):
        if program.memory_size > FPU_BASE:
            raise ValueError(
                f"program image ({program.memory_size} bytes) overlaps the "
                f"FPU window at {FPU_BASE:#x}"
            )
        self.program = program
        self.memory = bytearray(program.image)
        self.max_steps = max_steps
        self.regions = list(regions or [])
        self.state = ArchState()
        self.fpu = FpuCore()
        self.ldq: ArchitecturalQueue[int] = ArchitecturalQueue("LDQ")
        self.saq: ArchitecturalQueue[int] = ArchitecturalQueue("SAQ")
        self.sdq: ArchitecturalQueue[int] = ArchitecturalQueue("SDQ")
        self.result = FunctionalResult(
            by_region={name: 0 for name, _b, _e in self.regions}
        )
        self._env = _FunctionalEnv(self)

    # ------------------------------------------------------------------
    # Data memory
    # ------------------------------------------------------------------
    def _check_data_address(self, address: int) -> None:
        if address % WORD_BYTES != 0:
            raise ValueError(f"unaligned data access at {address:#x}")
        if not is_fpu_address(address) and address + WORD_BYTES > len(self.memory):
            raise IndexError(
                f"data access at {address:#x} outside memory of "
                f"{len(self.memory)} bytes"
            )

    def read_word(self, address: int) -> int:
        self._check_data_address(address)
        if is_fpu_address(address):
            return self.fpu.read(address)
        return int.from_bytes(self.memory[address : address + WORD_BYTES], "little")

    def write_word(self, address: int, value: int) -> None:
        self._check_data_address(address)
        if is_fpu_address(address):
            self.fpu.write(address, value)
            self.result.fpu_operations = self.fpu.operations_started
        else:
            self.memory[address : address + WORD_BYTES] = (value & 0xFFFFFFFF).to_bytes(
                WORD_BYTES, "little"
            )

    def _service_load(self, address: int) -> None:
        for pending in self.saq:
            if pending == address:
                raise MemoryOrderingError(
                    f"load from {address:#x} while a store to the same address "
                    "awaits its data (SDQ push missing?)"
                )
        self.ldq.push(self.read_word(address))
        self.result.loads += 1

    def _commit_stores(self) -> None:
        while not self.saq.is_empty and not self.sdq.is_empty:
            address = self.saq.pop()
            value = self.sdq.pop()
            self.write_word(address, value)
            self.result.stores += 1

    # ------------------------------------------------------------------
    # Execution loop
    # ------------------------------------------------------------------
    def _count_region(self, pc: int) -> None:
        for name, begin, end in self.regions:
            if begin <= pc < end:
                self.result.by_region[name] += 1

    def step_stream(self):
        """Yield ``(pc, instruction)`` pairs as the program executes.

        The generator drives execution: each yielded pair has already been
        executed.  Used by tests that want to trace the dynamic stream.
        """
        pc = self.program.entry_point
        pending: list[int | bool] | None = None  # [remaining, taken, target]
        steps = 0
        while True:
            if steps >= self.max_steps:
                raise SimulationLimitExceeded(
                    f"no HALT after {self.max_steps} instructions"
                )
            instruction, size = decode_instruction(self.memory, pc, self.program.fmt)
            outcome = execute(instruction, self.state, self._env)
            steps += 1
            self.result.instructions += 1
            if self.regions:
                self._count_region(pc)
            if instruction.op.op_class == OpClass.BRANCH:
                self.result.branches += 1
                if outcome.branch_taken:
                    self.result.branches_taken += 1
            yield pc, instruction
            if outcome.halted:
                self.result.halted = True
                if not self.saq.is_empty or not self.sdq.is_empty:
                    raise RuntimeError(
                        "program halted with unpaired store address/data "
                        f"(SAQ={len(self.saq)}, SDQ={len(self.sdq)})"
                    )
                return
            next_pc = pc + size
            if outcome.is_branch:
                if pending is not None:
                    raise RuntimeError(
                        f"PBR at {pc:#x} while another branch is pending"
                    )
                pending = [outcome.branch_delay, outcome.branch_taken,
                           outcome.branch_target]
            elif pending is not None:
                pending[0] = int(pending[0]) - 1
            if pending is not None and int(pending[0]) <= 0:
                if pending[1]:
                    next_pc = int(pending[2])
                pending = None
            pc = next_pc

    def run(self) -> FunctionalResult:
        """Run to HALT and return the result statistics."""
        for _pc, _instruction in self.step_stream():
            pass
        return self.result


def run_functional(
    program: Program,
    max_steps: int = 50_000_000,
    regions: list[tuple[str, int, int]] | None = None,
) -> FunctionalResult:
    """Convenience wrapper: run ``program`` functionally and return stats."""
    return FunctionalSimulator(program, max_steps=max_steps, regions=regions).run()
