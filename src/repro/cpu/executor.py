"""Instruction semantics, shared by the functional and timing simulators.

:func:`execute` applies one decoded instruction to architectural state
plus an *environment* that provides the queue operations (the two
simulators plug in different environments: the functional simulator's
queues are serviced instantly, the cycle-level simulator's are wired into
the memory engine).

Queue-register semantics (paper section 3.1.2):

* each instruction that names r7 as a **source** pops exactly one value
  from the LDQ, even if r7 appears in both source fields (the single
  popped value feeds both operands);
* naming r7 as the **destination** pushes the result onto the SDQ.

The executor computes *values*; it never advances time.  Timing (when the
LDQ head is actually available, whether the LAQ has room, ...) is the
caller's responsibility, checked *before* calling :func:`execute` via
:func:`queue_effects`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass, Opcode
from ..isa.registers import QUEUE_REGISTER
from .alu import alu_operate, to_signed, to_unsigned
from .state import ArchState

__all__ = [
    "ExecutionEnv",
    "ExecutionOutcome",
    "QueueEffects",
    "execute",
    "queue_effects",
]


class ExecutionEnv(Protocol):
    """Queue operations an executor environment must provide."""

    def pop_ldq(self) -> int: ...

    def push_sdq(self, value: int) -> None: ...

    def push_laq(self, address: int) -> None: ...

    def push_saq(self, address: int) -> None: ...


@dataclass(frozen=True)
class QueueEffects:
    """Which architectural queues one instruction touches.

    The issue logic uses this to decide whether the instruction can issue
    this cycle (LDQ head available?  room in LAQ/SAQ/SDQ?).
    """

    pops_ldq: bool = False
    pushes_sdq: bool = False
    pushes_laq: bool = False
    pushes_saq: bool = False


@dataclass(frozen=True)
class ExecutionOutcome:
    """Everything that happened when an instruction executed.

    ``branch`` is filled only for the PBR family: ``branch_taken`` tells
    whether the branch will redirect the instruction stream once its
    ``delay`` slots have been issued, and ``branch_target`` is the target
    byte address read from the branch register.
    """

    halted: bool = False
    is_branch: bool = False
    branch_taken: bool = False
    branch_target: int = 0
    branch_delay: int = 0


def queue_effects(instruction: Instruction) -> QueueEffects:
    """Statically determine the queue interactions of ``instruction``."""
    op = instruction.op
    pops_ldq = False
    pushes_sdq = False
    if op.reads_rs1 and instruction.rs1 == QUEUE_REGISTER:
        pops_ldq = True
    if op.reads_rs2 and instruction.rs2 == QUEUE_REGISTER:
        pops_ldq = True
    if op == Opcode.PBRA:
        pops_ldq = False  # PBRA ignores its condition field
    if op.writes_rd and instruction.rd == QUEUE_REGISTER:
        pushes_sdq = True
    return QueueEffects(
        pops_ldq=pops_ldq,
        pushes_sdq=pushes_sdq,
        pushes_laq=op.op_class == OpClass.LOAD,
        pushes_saq=op.op_class == OpClass.STORE,
    )


class _OperandReader:
    """Reads source operands, popping the LDQ at most once."""

    def __init__(self, state: ArchState, env: ExecutionEnv):
        self._state = state
        self._env = env
        self._queue_value: int | None = None

    def read(self, register: int) -> int:
        if register == QUEUE_REGISTER:
            if self._queue_value is None:
                self._queue_value = to_unsigned(self._env.pop_ldq())
            return self._queue_value
        return self._state.read(register)


def _write_destination(
    state: ArchState, env: ExecutionEnv, register: int, value: int
) -> None:
    if register == QUEUE_REGISTER:
        env.push_sdq(to_unsigned(value))
    else:
        state.write(register, value)


def execute(
    instruction: Instruction, state: ArchState, env: ExecutionEnv
) -> ExecutionOutcome:
    """Execute one instruction against ``state`` and ``env``.

    The caller must already have verified (via :func:`queue_effects` and
    its own queue occupancy knowledge) that the instruction can proceed;
    the environment's queue operations are expected not to block.
    """
    op = instruction.op
    cls = op.op_class
    reader = _OperandReader(state, env)

    if cls == OpClass.SYSTEM:
        if op == Opcode.HALT:
            return ExecutionOutcome(halted=True)
        if op == Opcode.EXCH:
            state.exchange_banks()
        return ExecutionOutcome()

    if cls == OpClass.ALU_RR:
        lhs = reader.read(instruction.rs1)
        rhs = reader.read(instruction.rs2)
        _write_destination(state, env, instruction.rd, alu_operate(op, lhs, rhs))
        return ExecutionOutcome()

    if cls == OpClass.ALU_RI:
        if op == Opcode.LI:
            _write_destination(
                state, env, instruction.rd, to_unsigned(instruction.imm_signed)
            )
            return ExecutionOutcome()
        if op == Opcode.LIH:
            # LIH merges into the destination's current low half.  For the
            # queue register there is no readable current value; define the
            # low half as zero in that case (the assembler never emits it).
            if instruction.rd == QUEUE_REGISTER:
                low = 0
            else:
                low = state.read(instruction.rd) & 0xFFFF
            _write_destination(
                state, env, instruction.rd, low | (instruction.imm << 16)
            )
            return ExecutionOutcome()
        lhs = reader.read(instruction.rs1)
        imm = (
            instruction.imm
            if op in (Opcode.ANDI, Opcode.ORI, Opcode.XORI)
            else instruction.imm_signed
        )
        _write_destination(state, env, instruction.rd, alu_operate(op, lhs, imm))
        return ExecutionOutcome()

    if cls == OpClass.LOAD:
        if op == Opcode.LD:
            address = to_unsigned(reader.read(instruction.rs1) + instruction.imm_signed)
        else:  # LDX
            address = to_unsigned(
                reader.read(instruction.rs1) + reader.read(instruction.rs2)
            )
        env.push_laq(address)
        return ExecutionOutcome()

    if cls == OpClass.STORE:
        if op == Opcode.ST:
            address = to_unsigned(reader.read(instruction.rs1) + instruction.imm_signed)
        else:  # STX
            address = to_unsigned(
                reader.read(instruction.rs1) + reader.read(instruction.rs2)
            )
        env.push_saq(address)
        return ExecutionOutcome()

    if cls == OpClass.LBR:
        if op == Opcode.LBR:
            state.write_branch(instruction.breg, instruction.imm)
        else:  # LBRR
            state.write_branch(instruction.breg, reader.read(instruction.rs1))
        return ExecutionOutcome()

    if cls == OpClass.BRANCH:
        target = state.read_branch(instruction.breg)
        if op == Opcode.PBRA:
            taken = True
        else:
            condition = to_signed(reader.read(instruction.rs1))
            if op == Opcode.PBREQ:
                taken = condition == 0
            elif op == Opcode.PBRNE:
                taken = condition != 0
            elif op == Opcode.PBRLT:
                taken = condition < 0
            elif op == Opcode.PBRGE:
                taken = condition >= 0
            else:  # pragma: no cover
                raise AssertionError(f"unhandled branch {op!r}")
        return ExecutionOutcome(
            is_branch=True,
            branch_taken=taken,
            branch_target=target,
            branch_delay=instruction.delay,
        )

    raise AssertionError(f"unhandled opcode {op!r}")  # pragma: no cover
