"""The cycle-level issue engine (pipeline back-end).

The PIPE processor issues at most one instruction per cycle (paper
section 6: "the underlying architecture can issue one instruction per
cycle").  With full forwarding between its two ALU stages, register
dependences never stall a single-issue in-order pipeline, so all stalls
come from the memory side — exactly the effects the paper studies:

* the frontend has no instruction ready (I-fetch starvation);
* a source names r7 and the LDQ head has not arrived (load latency);
* a destination queue (LAQ/SAQ/SDQ) is full (store/load back-pressure);
* a prepare-to-branch has exhausted its delay slots but its condition has
  not resolved yet (branch latency not covered by delay slots);
* a second PBR reaches issue while one is still pending.

PBR timing: the branch register (target) is read at issue; the condition
resolves ``branch_resolution_latency`` cycles later (end of ALU1).  The
``delay`` instructions after the PBR issue unconditionally; when they are
exhausted, issue either continues sequentially (not taken) or redirects
the frontend to the target (taken).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scheduler import IDLE, ProgressClock
from ..core.trace import NULL_TRACER, Tracer
from ..frontend.base import FetchUnit
from .data_engine import DataQueueEngine
from .executor import execute, queue_effects
from .state import ArchState

__all__ = ["Backend", "StallReason"]


class StallReason:
    """Names for the issue-stall counters."""

    FRONTEND = "frontend_empty"
    LDQ_EMPTY = "ldq_empty"
    LAQ_FULL = "laq_full"
    SAQ_FULL = "saq_full"
    SDQ_FULL = "sdq_full"
    BRANCH_UNRESOLVED = "branch_unresolved"
    BRANCH_OVERLAP = "branch_overlap"

    ALL = (
        FRONTEND,
        LDQ_EMPTY,
        LAQ_FULL,
        SAQ_FULL,
        SDQ_FULL,
        BRANCH_UNRESOLVED,
        BRANCH_OVERLAP,
    )


@dataclass
class _PendingBranch:
    target: int
    taken: bool
    resolve_at: int
    slots_remaining: int
    notified: bool = False


class _BackendEnv:
    """Execution environment wiring the executor to the data engine."""

    def __init__(self, engine: DataQueueEngine):
        self._engine = engine

    def pop_ldq(self) -> int:
        return self._engine.pop_ldq()

    def push_sdq(self, value: int) -> None:
        self._engine.push_sdq(value)

    def push_laq(self, address: int) -> None:
        self._engine.push_laq(address)

    def push_saq(self, address: int) -> None:
        self._engine.push_saq(address)


class Backend:
    """Single-issue, in-order instruction issue with PBR handling."""

    def __init__(
        self,
        frontend: FetchUnit,
        engine: DataQueueEngine,
        branch_resolution_latency: int = 2,
        tracer: Tracer | None = None,
        clock: ProgressClock | None = None,
    ):
        self.frontend = frontend
        self.engine = engine
        self.branch_resolution_latency = branch_resolution_latency
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock if clock is not None else ProgressClock()
        self.state = ArchState()
        self.halted = False
        self.instructions = 0
        self.branches = 0
        self.branches_taken = 0
        #: pc of the most recently issued instruction (cycle attribution)
        self.last_pc: int | None = None
        #: reason of the most recent stall (the skip scheduler charges
        #: every cycle of a quiescent span to this counter)
        self.last_stall_reason: str | None = None
        self.stalls: dict[str, int] = {reason: 0 for reason in StallReason.ALL}
        self._pending: _PendingBranch | None = None
        self._env = _BackendEnv(engine)
        #: replay recording: when a list, every issue appends
        #: ``("i", pc, instruction, outcome)``
        self.issue_log: list | None = None
        #: target of a backward redirect taken this cycle (a loop
        #: backedge); the replay run loop reads and clears it
        self.replay_backedge: int | None = None

    # ------------------------------------------------------------------
    def _stall(self, reason: str) -> None:
        self.stalls[reason] += 1
        self.last_stall_reason = reason
        if self._tracer.enabled:
            self._tracer.emit("backend", "stall", reason=reason)

    def _handle_branch_bookkeeping(self, now: int) -> bool:
        """Resolve/redirect pending branches.  Returns False on a stall."""
        pending = self._pending
        if pending is None:
            return True
        if not pending.notified and now >= pending.resolve_at:
            pending.notified = True
            self._clock.ticks += 1
            self.frontend.branch_resolved(pending.taken)
            if not pending.taken:
                # Sequential flow simply continues; nothing left to do.
                self._pending = None
                return True
        if pending.slots_remaining == 0:
            if now < pending.resolve_at:
                self._stall(StallReason.BRANCH_UNRESOLVED)
                return False
            # Taken (not-taken branches were cleared at notification).
            self._clock.ticks += 1
            target = pending.target
            self.frontend.redirect(target, now)
            self._pending = None
            if self.last_pc is not None and target < self.last_pc:
                self.replay_backedge = target
        return True

    def step(self, now: int) -> bool:
        """Attempt to issue one instruction.  Returns True if one issued."""
        if self.halted:
            return False
        if not self._handle_branch_bookkeeping(now):
            return False
        fetched = self.frontend.next_instruction()
        if fetched is None:
            self._stall(StallReason.FRONTEND)
            return False
        pc, instruction, size = fetched
        if instruction.op.is_branch and self._pending is not None:
            self._stall(StallReason.BRANCH_OVERLAP)
            return False
        effects = queue_effects(instruction)
        if effects.pops_ldq and not self.engine.ldq_has_data():
            self._stall(StallReason.LDQ_EMPTY)
            return False
        if effects.pushes_laq and self.engine.laq_full:
            self._stall(StallReason.LAQ_FULL)
            return False
        if effects.pushes_saq and self.engine.saq_full:
            self._stall(StallReason.SAQ_FULL)
            return False
        if effects.pushes_sdq and self.engine.sdq_full:
            self._stall(StallReason.SDQ_FULL)
            return False

        outcome = execute(instruction, self.state, self._env)
        if self.issue_log is not None:
            self.issue_log.append(("i", pc, instruction, outcome))
        self._clock.ticks += 1
        self.frontend.consume(now)
        self.instructions += 1
        self.last_pc = pc
        if self._tracer.enabled:
            self._tracer.emit("backend", "issue", pc=pc)
        if outcome.halted:
            self.halted = True
            return True
        if outcome.is_branch:
            self.branches += 1
            if outcome.branch_taken:
                self.branches_taken += 1
            if self._tracer.enabled:
                self._tracer.emit(
                    "backend",
                    "branch",
                    pc=pc,
                    taken=outcome.branch_taken,
                    target=outcome.branch_target,
                    delay=outcome.branch_delay,
                )
            self._pending = _PendingBranch(
                target=outcome.branch_target,
                taken=outcome.branch_taken,
                resolve_at=now + self.branch_resolution_latency,
                slots_remaining=outcome.branch_delay,
            )
            self.frontend.note_branch(
                pc, pc + size, outcome.branch_delay, outcome.branch_target
            )
        elif self._pending is not None:
            self._pending.slots_remaining -= 1
        return True

    # ------------------------------------------------------------------
    # compiled-kernel lowering (repro.core.compiled)
    # ------------------------------------------------------------------
    @classmethod
    def emit_compiled_step(cls, ctx) -> None:
        """Lower :meth:`step` into straight-line kernel code.

        Must mirror :meth:`step` (and the ``_handle_branch_bookkeeping``
        /``_stall`` helpers it calls) statement for statement: same
        counter updates, same trace events, same ordering.  The only
        licensed deviations are pure-code motion: ``queue_effects`` is
        memoized per instruction object (it is a pure function of the
        instruction) and computed before the branch-overlap check, and
        queue-full checks fold the capacity literals from the spec.
        The differential matrix pins byte-identical behavior.
        """
        spec = ctx.spec
        traced = spec.traced
        frontend_cls = ctx.frontend_cls
        ctx.need(
            "backend",
            "clock",
            "backend_stalls",
            "backend_state",
            "backend_env",
            "effects_memo",
            "frontend_note_branch",
            "frontend_branch_resolved",
            "frontend_redirect",
            "ldq_items",
            "laq_items",
            "saq_items",
            "sdq_items",
        )
        if frontend_cls is None:
            ctx.need("frontend_next_instruction", "frontend_consume")
        if spec.specialize_dispatch:
            ctx.need("dispatch_get")

        def stall(reason: str) -> None:
            ctx.line(f"backend_stalls[{reason!r}] += 1")
            ctx.line(f"backend.last_stall_reason = {reason!r}")
            if traced:
                ctx.line(f'tracer_emit("backend", "stall", reason={reason!r})')

        with ctx.block("if not backend.halted:"):
            ctx.line("ok = True")
            ctx.line("pending = backend._pending")
            with ctx.block("if pending is not None:"):
                with ctx.block(
                    "if not pending.notified and now >= pending.resolve_at:"
                ):
                    ctx.line("pending.notified = True")
                    ctx.line("clock.ticks += 1")
                    ctx.line("frontend_branch_resolved(pending.taken)")
                    with ctx.block("if not pending.taken:"):
                        ctx.line("backend._pending = None")
                        ctx.line("pending = None")
                with ctx.block(
                    "if pending is not None and pending.slots_remaining == 0:"
                ):
                    with ctx.block("if now < pending.resolve_at:"):
                        stall(StallReason.BRANCH_UNRESOLVED)
                        ctx.line("ok = False")
                    with ctx.block("else:"):
                        ctx.line("clock.ticks += 1")
                        ctx.line("target = pending.target")
                        ctx.line("frontend_redirect(target, now)")
                        ctx.line("backend._pending = None")
                        ctx.line("pending = None")
                        ctx.line("last_pc = backend.last_pc")
                        with ctx.block(
                            "if last_pc is not None and target < last_pc:"
                        ):
                            ctx.line("backend.replay_backedge = target")
            with ctx.block("if ok:"):
                if frontend_cls is not None:
                    frontend_cls.emit_compiled_next_instruction(ctx)
                else:
                    ctx.line("fetched = frontend_next_instruction()")
                with ctx.block("if fetched is None:"):
                    stall(StallReason.FRONTEND)
                with ctx.block("else:"):
                    ctx.line("pc, instruction, size = fetched")
                    ctx.line("entry = effects_memo.get(id(instruction))")
                    with ctx.block("if entry is None:"):
                        ctx.line("_fx = queue_effects(instruction)")
                        if spec.specialize_dispatch:
                            ctx.line(
                                "entry = (instruction, _fx.pops_ldq, "
                                "_fx.pushes_laq, _fx.pushes_saq, "
                                "_fx.pushes_sdq, instruction.op.is_branch, "
                                "dispatch_get(instruction))"
                            )
                        else:
                            ctx.line(
                                "entry = (instruction, _fx.pops_ldq, "
                                "_fx.pushes_laq, _fx.pushes_saq, "
                                "_fx.pushes_sdq, instruction.op.is_branch)"
                            )
                        ctx.line("effects_memo[id(instruction)] = entry")
                    with ctx.block("if entry[5] and pending is not None:"):
                        stall(StallReason.BRANCH_OVERLAP)
                    with ctx.block("elif entry[1] and not ldq_items:"):
                        stall(StallReason.LDQ_EMPTY)
                    if spec.laq_capacity is not None:
                        with ctx.block(
                            f"elif entry[2] and len(laq_items) >= "
                            f"{spec.laq_capacity}:"
                        ):
                            stall(StallReason.LAQ_FULL)
                    if spec.saq_capacity is not None:
                        with ctx.block(
                            f"elif entry[3] and len(saq_items) >= "
                            f"{spec.saq_capacity}:"
                        ):
                            stall(StallReason.SAQ_FULL)
                    if spec.sdq_capacity is not None:
                        with ctx.block(
                            f"elif entry[4] and len(sdq_items) >= "
                            f"{spec.sdq_capacity}:"
                        ):
                            stall(StallReason.SDQ_FULL)
                    with ctx.block("else:"):
                        if spec.specialize_dispatch:
                            ctx.line(
                                "outcome = entry[6](backend_state, "
                                "backend_env)"
                            )
                        else:
                            ctx.line(
                                "outcome = execute(instruction, "
                                "backend_state, backend_env)"
                            )
                        if spec.replay:
                            with ctx.block(
                                "if backend.issue_log is not None:"
                            ):
                                ctx.line(
                                    "backend.issue_log.append("
                                    '("i", pc, instruction, outcome))'
                                )
                        ctx.line("clock.ticks += 1")
                        if frontend_cls is not None:
                            frontend_cls.emit_compiled_consume(ctx)
                        else:
                            ctx.line("frontend_consume(now)")
                        ctx.line("backend.instructions += 1")
                        ctx.line("backend.last_pc = pc")
                        if traced:
                            ctx.line('tracer_emit("backend", "issue", pc=pc)')
                        with ctx.block("if outcome.halted:"):
                            ctx.line("backend.halted = True")
                        with ctx.block("elif outcome.is_branch:"):
                            ctx.line("backend.branches += 1")
                            with ctx.block("if outcome.branch_taken:"):
                                ctx.line("backend.branches_taken += 1")
                            if traced:
                                ctx.line(
                                    'tracer_emit("backend", "branch", pc=pc, '
                                    "taken=outcome.branch_taken, "
                                    "target=outcome.branch_target, "
                                    "delay=outcome.branch_delay)"
                                )
                            ctx.line(
                                "backend._pending = _PendingBranch("
                                "target=outcome.branch_target, "
                                "taken=outcome.branch_taken, "
                                f"resolve_at=now + "
                                f"{spec.branch_resolution_latency}, "
                                "slots_remaining=outcome.branch_delay)"
                            )
                            ctx.line(
                                "frontend_note_branch(pc, pc + size, "
                                "outcome.branch_delay, outcome.branch_target)"
                            )
                        with ctx.block("elif pending is not None:"):
                            ctx.line("pending.slots_remaining -= 1")

    @classmethod
    def emit_compiled_wake(cls, ctx) -> None:
        """Fold :meth:`next_event_cycle` into the idle-skip wake scan."""
        ctx.need("backend")
        ctx.line("bpending = backend._pending")
        with ctx.block(
            "if bpending is not None and not bpending.notified "
            "and bpending.resolve_at < wake:"
        ):
            ctx.line("wake = bpending.resolve_at")

    # ------------------------------------------------------------------
    def next_event_cycle(self, now: int) -> int:
        """Resolution time of an unresolved pending branch, else ``IDLE``.

        ``resolve_at`` is the backend's only self-scheduled event: at
        that cycle the condition resolves (waking the frontend through
        ``branch_resolved``/``redirect``).  Everything else the backend
        does is a reaction to frontend- or memory-side progress.
        """
        pending = self._pending
        if pending is not None and not pending.notified:
            return pending.resolve_at
        return IDLE

    # ------------------------------------------------------------------
    def state_signature(self, now: int, base_seq: int) -> tuple:
        """Issue-side fingerprint: pending branch, halt/stall posture,
        and the branch registers (PBR targets recur; data registers are
        excluded — functional re-execution advances them)."""
        pending = self._pending
        return (
            self.halted,
            self.last_pc,
            self.last_stall_reason,
            None
            if pending is None
            else (
                pending.target,
                pending.taken,
                pending.resolve_at - now,
                pending.slots_remaining,
                pending.notified,
            ),
            self.state.branch_signature(),
        )

    def replay_shift(self, cycles: int, seqs: int) -> None:
        """Advance the pending branch's resolution time after a replay."""
        if self._pending is not None:
            self._pending.resolve_at += cycles

    # ------------------------------------------------------------------
    @property
    def total_stalls(self) -> int:
        return sum(self.stalls.values())
