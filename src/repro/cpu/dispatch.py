"""Program-specialized instruction dispatch for compiled step kernels.

The generic :func:`repro.cpu.executor.execute` pays per-issue overhead
that is constant for a given instruction *value*: the opcode-class
ladder, the ``_OperandReader`` allocation, the queue-register tests on
every operand, and the ``alu_operate`` opcode ladder.  An
:class:`~repro.isa.instruction.Instruction` is a frozen value object,
so all of those decisions can be taken once per distinct instruction
and burned into a tiny ``exec``-compiled handler::

    def __handler(state, env):
        f = state._foreground
        f[3] = (f[1] + f[2]) & 4294967295
        return OUT_PLAIN

A :class:`ProgramDispatchTable` lazily compiles one handler per
distinct instruction value reached by a program and memoizes it; the
table itself is cached process-wide by :mod:`repro.core.compiled`
under a ``(program_fingerprint, config_fingerprint)`` key (both fold
:data:`~repro.core.scheduler.ENGINE_REVISION`).

**Byte-identity contract.**  ``handler(state, env)`` must be
observationally identical to ``execute(instruction, state, env)``:
the same queue pops/pushes in the same order (r7 named in both source
fields pops exactly once), the same register writes, and an
:class:`~repro.cpu.executor.ExecutionOutcome` equal by value — replay
verification (and anything else) compares outcomes by equality, never
identity, so the shared ``OUT_PLAIN``/``OUT_HALT`` singletons are
safe.  ``tests/test_cpu_dispatch.py`` pins handler-vs-executor
equivalence across the opcode space.

``REPRO_NO_SPECIALIZE_DISPATCH=1`` keeps the generic executor on the
compiled engine's hot path for differential testing.
"""

from __future__ import annotations

import time

from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass, Opcode
from ..isa.registers import QUEUE_REGISTER
from .alu import to_signed
from .executor import ExecutionOutcome

__all__ = [
    "ProgramDispatchTable",
    "clear_dispatch_cache",
    "dispatch_codegen_stats",
    "generate_handler_source",
    "install_handler_bundle",
    "instruction_key",
    "record_bundle_store",
    "reset_dispatch_codegen_stats",
    "serialize_handlers",
]

_MASK = "4294967295"  #: 32-bit wrap mask, folded into handler source

#: Value-equal to what ``execute`` returns for non-branch instructions;
#: shared because every consumer compares outcomes by value.
OUT_PLAIN = ExecutionOutcome()
OUT_HALT = ExecutionOutcome(halted=True)

#: Folded ALU expressions; ``{l}``/``{r}`` are parenthesised operands.
#: Each mirrors one :func:`repro.cpu.alu.alu_operate` arm exactly
#: (inputs are already 32-bit unsigned: registers store masked values
#: and queue pops are masked at the pop site).
_ALU_EXPR: dict[Opcode, str] = {}
for _ops, _expr in (
    ((Opcode.ADD, Opcode.ADDI), "({l} + {r}) & " + _MASK),
    ((Opcode.SUB, Opcode.SUBI), "({l} - {r}) & " + _MASK),
    ((Opcode.AND, Opcode.ANDI), "{l} & {r}"),
    ((Opcode.OR, Opcode.ORI), "{l} | {r}"),
    ((Opcode.XOR, Opcode.XORI), "{l} ^ {r}"),
    ((Opcode.SLL, Opcode.SLLI), "({l} << ({r} & 31)) & " + _MASK),
    ((Opcode.SRL, Opcode.SRLI), "{l} >> ({r} & 31)"),
    ((Opcode.SRA, Opcode.SRAI), "(to_signed({l}) >> ({r} & 31)) & " + _MASK),
    ((Opcode.SEQ, Opcode.SEQI), "int({l} == {r})"),
    ((Opcode.SNE, Opcode.SNEI), "int({l} != {r})"),
    ((Opcode.SLT, Opcode.SLTI), "int(to_signed({l}) < to_signed({r}))"),
    ((Opcode.SLE, Opcode.SLEI), "int(to_signed({l}) <= to_signed({r}))"),
):
    for _op in _ops:
        _ALU_EXPR[_op] = _expr
del _ops, _expr, _op

_BRANCH_TAKEN: dict[Opcode, str] = {
    Opcode.PBREQ: "condition == 0",
    Opcode.PBRNE: "condition != 0",
    Opcode.PBRLT: "condition < 0",
    Opcode.PBRGE: "condition >= 0",
}


class _Reads:
    """Operand-read emitter honoring the pop-at-most-once r7 rule."""

    def __init__(self, lines: list[str]):
        self._lines = lines
        self._popped = False
        self._bank_bound = False

    def bank(self) -> str:
        """Bind ``f = state._foreground`` once (read fresh per call:
        EXCH rebinds the attribute, so it must never be cached across
        handler invocations)."""
        if not self._bank_bound:
            self._lines.append("    f = state._foreground")
            self._bank_bound = True
        return "f"

    def read(self, register: int) -> str:
        if register == QUEUE_REGISTER:
            if not self._popped:
                self._lines.append(f"    q = env.pop_ldq() & {_MASK}")
                self._popped = True
            return "q"
        return f"{self.bank()}[{register}]"


def _write_destination(lines: list[str], reads: _Reads, register: int, expr: str) -> None:
    """Emit the masked destination write (register file or SDQ push).

    Every ``expr`` this generator produces is already 32-bit unsigned
    (each folded ALU arm masks exactly where ``alu_operate`` does), so
    the reference's ``to_unsigned`` on the write path is a no-op.
    """
    if register == QUEUE_REGISTER:
        lines.append(f"    env.push_sdq({expr})")
    else:
        lines.append(f"    {reads.bank()}[{register}] = {expr}")


def _signed_imm(instruction: Instruction) -> int:
    return instruction.imm_signed


def generate_handler_source(instruction: Instruction) -> str:
    """Render the specialized handler for one instruction value.

    Pure: equal instructions render byte-identical source.
    """
    op = instruction.op
    cls = op.op_class
    lines = [f"def __handler(state, env):  # {instruction.disassemble()}"]
    reads = _Reads(lines)

    if cls == OpClass.SYSTEM:
        if op == Opcode.HALT:
            lines.append("    return OUT_HALT")
        else:
            if op == Opcode.EXCH:
                lines.append("    state.exchange_banks()")
            lines.append("    return OUT_PLAIN")

    elif cls == OpClass.ALU_RR:
        lhs = reads.read(instruction.rs1)
        rhs = reads.read(instruction.rs2)
        expr = _ALU_EXPR[op].format(l=f"({lhs})", r=f"({rhs})")
        _write_destination(lines, reads, instruction.rd, expr)
        lines.append("    return OUT_PLAIN")

    elif cls == OpClass.ALU_RI:
        if op == Opcode.LI:
            _write_destination(
                lines, reads, instruction.rd, str(_signed_imm(instruction) & 0xFFFFFFFF)
            )
        elif op == Opcode.LIH:
            high = instruction.imm << 16
            if instruction.rd == QUEUE_REGISTER:
                _write_destination(lines, reads, instruction.rd, str(high))
            else:
                bank = reads.bank()
                lines.append(
                    f"    {bank}[{instruction.rd}] = "
                    f"({bank}[{instruction.rd}] & 65535) | {high}"
                )
        else:
            imm = (
                instruction.imm
                if op in (Opcode.ANDI, Opcode.ORI, Opcode.XORI)
                else _signed_imm(instruction)
            )
            lhs = reads.read(instruction.rs1)
            # Comparison immediates fold their to_unsigned/to_signed
            # conversion into the literal (a negative imm_signed must
            # compare as its 32-bit unsigned image for SEQ/SNE).
            if op in (Opcode.SEQI, Opcode.SNEI):
                relation = "==" if op == Opcode.SEQI else "!="
                expr = f"int(({lhs}) {relation} {imm & 0xFFFFFFFF})"
            elif op in (Opcode.SLTI, Opcode.SLEI):
                relation = "<" if op == Opcode.SLTI else "<="
                expr = f"int(to_signed(({lhs})) {relation} {imm})"
            else:
                expr = _ALU_EXPR[op].format(l=f"({lhs})", r=f"({imm})")
            _write_destination(lines, reads, instruction.rd, expr)
        lines.append("    return OUT_PLAIN")

    elif cls == OpClass.LOAD or cls == OpClass.STORE:
        lhs = reads.read(instruction.rs1)
        if op in (Opcode.LD, Opcode.ST):
            addr = f"(({lhs}) + ({_signed_imm(instruction)})) & {_MASK}"
        else:  # LDX / STX
            rhs = reads.read(instruction.rs2)
            addr = f"(({lhs}) + ({rhs})) & {_MASK}"
        push = "push_laq" if cls == OpClass.LOAD else "push_saq"
        lines.append(f"    env.{push}({addr})")
        lines.append("    return OUT_PLAIN")

    elif cls == OpClass.LBR:
        if op == Opcode.LBR:
            lines.append(
                f"    state._branch[{instruction.breg}] = "
                f"{instruction.imm & 0xFFFFFFFF}"
            )
        else:  # LBRR
            lhs = reads.read(instruction.rs1)
            lines.append(f"    state._branch[{instruction.breg}] = {lhs}")
        lines.append("    return OUT_PLAIN")

    elif cls == OpClass.BRANCH:
        lines.append(f"    target = state._branch[{instruction.breg}]")
        if op == Opcode.PBRA:
            taken = "True"
        else:
            lhs = reads.read(instruction.rs1)
            lines.append(f"    condition = to_signed({lhs})")
            taken = _BRANCH_TAKEN[op]
        lines.append(
            "    return ExecutionOutcome(is_branch=True, "
            f"branch_taken={taken}, branch_target=target, "
            f"branch_delay={instruction.delay})"
        )

    else:  # pragma: no cover - opcode space is closed
        raise AssertionError(f"unhandled opcode {op!r}")

    return "\n".join(lines) + "\n"


_HANDLER_COMPILES = 0
_CODEGEN_SECONDS = 0.0
_SHARED_HITS = 0
_DISK_HITS = 0
_DISK_STORES = 0

#: Process-wide handler memo.  Handlers are pure functions of the
#: instruction *value* (the module docstring's byte-identity contract
#: does not mention the program or the config), so one compile serves
#: every per-(program, config) table that reaches the instruction —
#: previously each table recompiled its own copy.
_SHARED_HANDLERS: dict[Instruction, object] = {}

#: ``(source, code object)`` behind each shared handler, kept so the
#: compiled engine can serialize a program's bundle to the persistent
#: codegen store without regenerating anything.
_SHARED_ARTIFACTS: dict[Instruction, tuple[str, object]] = {}


def _handler_namespace() -> dict:
    return {
        "to_signed": to_signed,
        "OUT_PLAIN": OUT_PLAIN,
        "OUT_HALT": OUT_HALT,
        "ExecutionOutcome": ExecutionOutcome,
    }


def _compile_handler(instruction: Instruction):
    global _HANDLER_COMPILES, _CODEGEN_SECONDS
    started = time.perf_counter()
    source = generate_handler_source(instruction)
    namespace = _handler_namespace()
    code = compile(source, f"<repro-dispatch-{instruction.op.mnemonic}>", "exec")
    exec(code, namespace)  # noqa: S102 — the source is our own codegen
    _HANDLER_COMPILES += 1
    _CODEGEN_SECONDS += time.perf_counter() - started
    handler = namespace["__handler"]
    _SHARED_HANDLERS[instruction] = handler
    _SHARED_ARTIFACTS[instruction] = (source, code)
    return handler


def instruction_key(instruction: Instruction) -> str:
    """Stable textual key of one instruction value (bundle entry key)."""
    return (
        f"{instruction.op.name}:{instruction.a}:{instruction.b}:"
        f"{instruction.c}:{instruction.imm}"
    )


def serialize_handlers(instructions) -> dict[str, dict]:
    """Bundle entries for every given instruction with a known artifact.

    Entries carry the instruction's constructor fields (so the reader
    can rebuild the memo key), the generated source (for humans and
    round-trip tests), and the marshaled code object (so installing a
    bundle costs ``exec``, not ``compile``).
    """
    from ..core.codegen_store import encode_code

    entries: dict[str, dict] = {}
    for instruction in instructions:
        artifact = _SHARED_ARTIFACTS.get(instruction)
        if artifact is None:
            continue
        source, code = artifact
        entries[instruction_key(instruction)] = {
            "instruction": {
                "op": instruction.op.name,
                "a": instruction.a,
                "b": instruction.b,
                "c": instruction.c,
                "imm": instruction.imm,
            },
            "source": source,
            "code": encode_code(code),
        }
    return entries


def install_handler_bundle(entries: dict[str, dict]) -> int:
    """Install one verified disk bundle into the shared memo.

    Returns the number of handlers installed.  Entries for
    already-memoized instructions are skipped; a malformed entry is
    skipped too (its handler simply regenerates lazily) — the store
    checksummed the bundle, so malformation means a writer bug, never
    silent corruption.
    """
    global _DISK_HITS
    from ..core.codegen_store import decode_code

    installed = 0
    for entry in entries.values():
        try:
            described = entry["instruction"]
            instruction = Instruction(
                op=Opcode[described["op"]],
                a=described["a"],
                b=described["b"],
                c=described["c"],
                imm=described["imm"],
            )
            if instruction in _SHARED_HANDLERS:
                continue
            source = entry["source"]
            code = decode_code(entry["code"])
        except (KeyError, ValueError, TypeError):
            continue
        namespace = _handler_namespace()
        exec(code, namespace)  # noqa: S102 — checksum-verified own codegen
        _SHARED_HANDLERS[instruction] = namespace["__handler"]
        _SHARED_ARTIFACTS[instruction] = (source, code)
        installed += 1
    _DISK_HITS += installed
    return installed


def shared_handler_count() -> int:
    """How many handlers the process-wide memo currently holds."""
    return len(_SHARED_HANDLERS)


def record_bundle_store(count: int = 1) -> None:
    """Note ``count`` bundle publishes (called by the compiled engine)."""
    global _DISK_STORES
    _DISK_STORES += count


class ProgramDispatchTable:
    """Lazy ``{instruction value: handler}`` map for one program.

    Handlers are pure functions of the instruction *value*, so the map
    stays correct for any program; the per-program cache key merely
    bounds each table to the instructions one program can reach.
    Compiles go through the process-wide shared memo, so two tables
    reaching the same instruction share one handler object.
    """

    __slots__ = ("handlers",)

    def __init__(self) -> None:
        self.handlers: dict[Instruction, object] = {}

    def handler_for(self, instruction: Instruction):
        """The compiled handler for ``instruction`` (compiling on first use)."""
        handler = self.handlers.get(instruction)
        if handler is None:
            global _SHARED_HITS
            handler = _SHARED_HANDLERS.get(instruction)
            if handler is None:
                handler = _compile_handler(instruction)
            else:
                _SHARED_HITS += 1
            self.handlers[instruction] = handler
        return handler

    def __len__(self) -> int:
        return len(self.handlers)


def dispatch_codegen_stats() -> dict:
    """Cumulative handler-compile accounting (merged by ``compile_stats``)."""
    return {
        "handler_compiles": _HANDLER_COMPILES,
        "codegen_seconds": _CODEGEN_SECONDS,
        "shared_hits": _SHARED_HITS,
        "disk_hits": _DISK_HITS,
        "disk_stores": _DISK_STORES,
    }


def reset_dispatch_codegen_stats() -> None:
    """Zero the cumulative counters (test isolation)."""
    global _HANDLER_COMPILES, _CODEGEN_SECONDS, _SHARED_HITS
    global _DISK_HITS, _DISK_STORES
    _HANDLER_COMPILES = 0
    _CODEGEN_SECONDS = 0.0
    _SHARED_HITS = 0
    _DISK_HITS = 0
    _DISK_STORES = 0


def clear_dispatch_cache() -> None:
    """Drop the shared handler memo and its serializable artifacts.

    Counters stay cumulative (tests assert on deltas); the compiled
    engine's ``clear_compile_cache`` calls this so every in-process
    codegen cache level clears together.
    """
    _SHARED_HANDLERS.clear()
    _SHARED_ARTIFACTS.clear()
