"""Instruction-fetch frontends.

Two strategies, as compared by the paper:

* :class:`~repro.frontend.pipe_fetch.PipeFetchUnit` — the PIPE approach:
  a small direct-mapped cache plus an Instruction Queue and Instruction
  Queue Buffer (the paper's contribution);
* :class:`~repro.frontend.conventional.ConventionalFetchUnit` — Hill's
  always-prefetch conventional cache (the baseline).

Both are built on the shared sub-blocked
:class:`~repro.frontend.icache.InstructionCache` array.
"""

from .base import FetchStats, FetchUnit, decode_at, delay_region_end
from .conventional import ConventionalFetchUnit, PrefetchPolicy
from .icache import CacheStats, InstructionCache
from .pipe_fetch import PipeFetchUnit
from .tib import TibFetchUnit, TibStats

__all__ = [
    "CacheStats",
    "ConventionalFetchUnit",
    "FetchStats",
    "FetchUnit",
    "InstructionCache",
    "PrefetchPolicy",
    "PipeFetchUnit",
    "TibFetchUnit",
    "TibStats",
    "decode_at",
    "delay_region_end",
]
