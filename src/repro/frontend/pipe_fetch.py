"""The PIPE instruction-fetch strategy: I-cache + IQ + IQB.

Paper section 4.2.  Two queues sit between the instruction cache and the
instruction register:

* the **IQ** (instruction queue) — "if not empty, is guaranteed to always
  contain at least one instruction to be executed";
* the **IQB** (instruction queue buffer) — holds the next line of the
  stream, with no execution guarantee.

Operation:

* when the IQ becomes empty it refills from the IQB;
* when the IQB becomes empty, the next sequential line past the one in
  the IQ is prefetched from the on-chip cache; a cache miss turns into an
  off-chip request (a *prefetch* if the IQ still has instructions, a
  *demand* fetch otherwise — and an in-flight prefetch is promoted to
  demand the moment the IQ drains);
* the control logic scans the IQ for PBR instructions (a single opcode
  bit); with the paper's original policy an off-chip request is only made
  when some part of the line is guaranteed to execute, while the
  presented results allow **true prefetch** past unresolved branches
  (``true_prefetch=True``, our default, matching section 6);
* once a PBR resolves taken and all its delay-slot instructions have
  passed into the IQ, the IQB is redirected to the branch-target line, so
  a target that hits in the cache (or returns from memory early enough)
  causes no interruption in the supply of instructions.

Timing conventions: on-chip work (cache lookup, IQB→IQ transfer) is free
within a cycle; all waiting comes from the memory system.  The unit is
driven by :meth:`update` (pre-issue) and :meth:`post_issue`, and offers
off-chip requests through the :class:`repro.memory.system.RequestSource`
protocol.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core.scheduler import ProgressClock
from ..core.trace import NULL_TRACER, Tracer
from ..isa.encoding import DecodeError, InstructionFormat
from ..isa.instruction import Instruction
from ..isa.predecode import PredecodedImage
from ..memory.requests import MemoryRequest, RequestKind
from .base import FetchStats, FetchUnit
from .icache import InstructionCache

__all__ = ["PipeFetchUnit"]

_FAR_FUTURE = 1 << 62


@dataclass
class _PendingBranch:
    """Frontend-side view of an issued PBR."""

    target: int
    delay_end_pc: int  #: first byte past the guaranteed delay-slot region
    resolved: bool = False
    taken: bool = False


class PipeFetchUnit(FetchUnit):
    """Cache + IQ + IQB frontend (the paper's contribution)."""

    #: ``poll_requests`` is side-effect free and empty whenever no
    #: unaccepted request is outstanding (see the method), so the
    #: compiled kernel may guard the poll behind that test.
    COMPILED_POLL_GUARD = True
    #: the ``emit_compiled_*`` classmethods below lower this unit's
    #: state machines into the kernel (``docs/COMPILED.md``)
    COMPILED_FRONTEND_INLINE = True

    def __init__(
        self,
        image: bytes | bytearray,
        fmt: InstructionFormat,
        cache: InstructionCache,
        iq_size: int,
        iqb_size: int,
        entry_point: int,
        next_seq,
        true_prefetch: bool = True,
        predecode: PredecodedImage | None = None,
        tracer: Tracer | None = None,
        clock: ProgressClock | None = None,
    ):
        line_size = cache.line_size
        if iqb_size < line_size:
            raise ValueError(
                f"IQB ({iqb_size} bytes) must hold a full cache line ({line_size})"
            )
        if iq_size < 4:
            raise ValueError("IQ must hold at least one instruction (4 bytes)")
        self._install_decoder(image, fmt, predecode)
        self.cache = cache
        self.iq_size = iq_size
        self.iqb_size = iqb_size
        self.line_size = line_size
        self.true_prefetch = true_prefetch
        self._next_seq = next_seq
        self.stats = FetchStats()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock if clock is not None else ProgressClock()

        # Instruction queue: decoded (pc, instruction, size) entries.
        self._iq: deque[tuple[int, Instruction, int]] = deque()
        self._iq_bytes = 0
        self._iq_next_pc = entry_point

        # Instruction queue buffer: one line's worth of stream bytes.
        self._iqb_loaded = False
        self._iqb_base = 0  #: line-aligned base address
        self._iqb_read_pc = 0  #: next byte to hand to the IQ
        self._iqb_valid_end = 0  #: bytes [base, valid_end) have arrived

        # Off-chip fetch in progress (created at miss, offered until
        # accepted, delivering in chunks until complete).
        self._request: MemoryRequest | None = None
        self._request_accepted = False
        self._request_discarded = False  #: chunks still fill the cache only

        # A two-parcel instruction whose head parcel sat at the end of
        # the previous line (parcel format only).  The hardware keeps the
        # head parcel in a latch; the instruction enters the IQ once the
        # next line's leading bytes arrive.
        self._span_pc: int | None = None

        self._branch: _PendingBranch | None = None

    # ------------------------------------------------------------------
    # Cycle phases
    # ------------------------------------------------------------------
    def update(self, now: int) -> None:
        self._promote_if_starving()
        self._advance(now)

    def post_issue(self, now: int) -> None:
        self._advance(now)

    def _advance(self, now: int) -> None:
        self._transfer_to_iq()
        if not self._halted:
            self._choose_fill(now)
        self._transfer_to_iq()

    def _promote_if_starving(self) -> None:
        request = self._request
        if (
            request is not None
            and not self._request_discarded
            and not request.demand
            and not self._iq
        ):
            request.promote_to_demand()
            self._clock.ticks += 1
            self.stats.prefetch_promotions += 1
            if self._tracer.enabled:
                self._tracer.emit("fetch", "promote", seq=request.seq)

    # ------------------------------------------------------------------
    # compiled-kernel lowering (repro.core.compiled)
    # ------------------------------------------------------------------
    # The lowered phases open-code :meth:`_transfer_to_iq` and the
    # :meth:`_choose_fill` decision with ``line_size``/``iq_size`` as
    # literals.  The cache-resident arm of :meth:`_start_fill` is also
    # inlined, memoizing positive :meth:`InstructionCache.probe` answers
    # per residency epoch (``COMPILED_RESIDENCY_EPOCH``: probe answers
    # are constant while ``_epoch`` is unchanged, and ``probe`` itself is
    # side-effect free, so a memo miss simply re-probes).  Off-chip fills
    # drop to the bound :meth:`_start_fill`, which re-checks everything.

    @classmethod
    def _emit_predecode_lookup(cls, ctx, pc: str) -> None:
        """``t_entry = (instruction, size) | None`` for ``pc``.

        Mirrors ``self.predecode.at(pc)``: the table answers directly,
        an unseen pc decodes (and caches) through the bound method, and
        invalid bytes — ``None`` in the table, :class:`DecodeError` from
        the method — normalize to ``t_entry = None``.
        """
        ctx.line(f"t_entry = pd_table.get({pc}, False)")
        with ctx.block("if t_entry is False:"):
            with ctx.block("try:"):
                ctx.line(f"t_entry = frontend_predecode_at({pc})")
            with ctx.block("except DecodeError:"):
                ctx.line("t_entry = None")

    @classmethod
    def _emit_transfer_guard(cls, ctx) -> None:
        """Inline :meth:`_transfer_to_iq` behind its folded early-outs."""
        line = ctx.spec.line_size
        iq_cap = ctx.spec.pipe_iq_size
        with ctx.block(
            "if not pipe_iq and frontend._iqb_loaded "
            f"and frontend._iqb_read_pc < frontend._iqb_base + {line}:"
        ):
            ctx.line("t_moved = 0")
            ctx.line(f"t_line_end = frontend._iqb_base + {line}")
            ctx.line("t_span = frontend._span_pc")
            ctx.line("t_ok = True")
            with ctx.block("if t_span is not None:"):
                # the latched head parcel completes only once the IQB
                # holds the successor line and the tail bytes arrived
                with ctx.block(
                    "if frontend._iqb_base != "
                    f"(t_span + 2) - ((t_span + 2) % {line}):"
                ):
                    ctx.line("t_ok = False")
                with ctx.block("else:"):
                    cls._emit_predecode_lookup(ctx, "t_span")
                    with ctx.block(
                        "if t_entry is None "
                        "or frontend._iqb_valid_end < t_span + t_entry[1]:"
                    ):
                        ctx.line("t_ok = False")
                    with ctx.block("else:"):
                        ctx.line("t_size = t_entry[1]")
                        ctx.line("pipe_iq.append((t_span, t_entry[0], t_size))")
                        ctx.line("pipe_clock.ticks += 1")
                        ctx.line("t_moved = t_size")
                        ctx.line("frontend._iq_next_pc = t_span + t_size")
                        ctx.line("frontend._iqb_read_pc = t_span + t_size")
                        ctx.line("frontend._span_pc = None")
                        if ctx.spec.traced:
                            ctx.line(
                                'tracer_emit("iq", "push", pc=t_span, '
                                "depth=len(pipe_iq), bytes=t_moved)"
                            )
            with ctx.block("elif frontend._iqb_read_pc != frontend._iq_next_pc:"):
                ctx.line("t_ok = False")
            with ctx.block("if t_ok:"):
                with ctx.block("while True:"):
                    ctx.line("t_pc = frontend._iq_next_pc")
                    with ctx.block(
                        "if t_pc >= t_line_end "
                        "or t_pc >= frontend._iqb_valid_end:"
                    ):
                        ctx.line("break")
                    cls._emit_predecode_lookup(ctx, "t_pc")
                    with ctx.block("if t_entry is None:"):
                        ctx.line("break")
                    ctx.line("t_size = t_entry[1]")
                    with ctx.block("if t_pc + t_size > t_line_end:"):
                        with ctx.block(
                            "if t_moved == 0 "
                            "and frontend._iqb_valid_end >= t_line_end:"
                        ):
                            ctx.line("frontend._span_pc = t_pc")
                            ctx.line("frontend._iqb_read_pc = t_line_end")
                            ctx.line("pipe_clock.ticks += 1")
                        ctx.line("break")
                    with ctx.block(
                        "if t_pc + t_size > frontend._iqb_valid_end:"
                    ):
                        ctx.line("break")
                    with ctx.block(f"if t_moved + t_size > {iq_cap}:"):
                        ctx.line("break")
                    ctx.line("pipe_iq.append((t_pc, t_entry[0], t_size))")
                    ctx.line("pipe_clock.ticks += 1")
                    ctx.line("t_moved += t_size")
                    ctx.line("frontend._iq_next_pc = t_pc + t_size")
                    ctx.line("frontend._iqb_read_pc = t_pc + t_size")
                    if ctx.spec.traced:
                        ctx.line(
                            'tracer_emit("iq", "push", pc=t_pc, '
                            "depth=len(pipe_iq), bytes=t_moved)"
                        )
                # the IQ was empty on entry, so the byte recount is the
                # bytes moved (reference: sum over the IQ entries)
                ctx.line("frontend._iq_bytes = t_moved")

    @classmethod
    def _emit_start_fill(cls, ctx, start: str) -> None:
        """Inline :meth:`_start_fill`'s cache-resident arm for ``start``.

        Positive probe answers memoize per residency epoch; anything
        off-chip (or epoch-stale) falls back to the bound method, whose
        own probe is side-effect free.
        """
        line = ctx.spec.line_size
        ctx.line(f"t_start = {start}")
        ctx.line(f"t_line = t_start - (t_start % {line})")
        with ctx.block(
            "if probe_memo.get(t_line) == icache_unit._epoch "
            f"or cache_probe(t_line, {line}):"
        ):
            ctx.line("probe_memo[t_line] = icache_unit._epoch")
            ctx.line("icache_stats.hits += 1")
            if ctx.spec.traced:
                ctx.line('tracer_emit("icache", "hit", addr=t_line)')
            ctx.line("pipe_clock.ticks += 1")
            ctx.line("frontend._iqb_loaded = True")
            ctx.line("frontend._iqb_base = t_line")
            ctx.line("frontend._iqb_read_pc = t_start")
            ctx.line(f"frontend._iqb_valid_end = t_line + {line}")
            if ctx.spec.traced:
                ctx.line(
                    'tracer_emit("iqb", "assign", base=t_line, source="cache")'
                )
        with ctx.block("else:"):
            ctx.line("frontend_start_fill(t_start, now)")

    @classmethod
    def _emit_advance(cls, ctx) -> None:
        line = ctx.spec.line_size
        ctx.need(
            "frontend",
            "pipe_iq",
            "pipe_clock",
            "pd_table",
            "probe_memo",
            "icache_unit",
            "icache_stats",
            "cache_probe",
            "frontend_predecode_at",
            "frontend_start_fill",
        )
        cls._emit_transfer_guard(ctx)
        with ctx.block("if not frontend._halted:"):
            with ctx.block(
                "if frontend._request is None or frontend._request_discarded:"
            ):
                ctx.line("branch = frontend._branch")
                with ctx.block(
                    "if branch is not None and branch.resolved and branch.taken "
                    "and frontend._iq_next_pc >= branch.delay_end_pc:"
                ):
                    # redirect the IQB to the target line unless it
                    # already covers the stream there
                    ctx.line("t_target = branch.target")
                    with ctx.block(
                        "if not (frontend._iqb_loaded and frontend._iqb_base "
                        f"== t_target - (t_target % {line}) "
                        "and frontend._iqb_read_pc <= t_target):"
                    ):
                        cls._emit_start_fill(ctx, "t_target")
                with ctx.block(
                    "elif not frontend._iqb_loaded "
                    f"or frontend._iqb_read_pc >= frontend._iqb_base + {line}:"
                ):
                    ctx.line("t_span = frontend._span_pc")
                    with ctx.block("if t_span is not None:"):
                        # fetch the successor line holding the latched
                        # instruction's tail parcel
                        ctx.line(
                            f"t_next = t_span - (t_span % {line}) + {line}"
                        )
                        with ctx.block(
                            "if frontend._iqb_base != t_next "
                            "or not frontend._iqb_loaded:"
                        ):
                            cls._emit_start_fill(ctx, "t_next")
                    with ctx.block("else:"):
                        cls._emit_start_fill(ctx, "frontend._iq_next_pc")
        cls._emit_transfer_guard(ctx)

    @classmethod
    def emit_compiled_update(cls, ctx) -> None:
        ctx.need("frontend", "pipe_iq", "frontend_promote_starving")
        ctx.line("f_req = frontend._request")
        with ctx.block(
            "if f_req is not None and not frontend._request_discarded "
            "and not f_req.demand and not pipe_iq:"
        ):
            ctx.line("frontend_promote_starving()")
        cls._emit_advance(ctx)

    @classmethod
    def emit_compiled_post_issue(cls, ctx) -> None:
        cls._emit_advance(ctx)

    @classmethod
    def emit_compiled_next_instruction(cls, ctx) -> None:
        ctx.need("pipe_iq")
        ctx.line("fetched = pipe_iq[0] if pipe_iq else None")

    @classmethod
    def emit_compiled_consume(cls, ctx) -> None:
        """Inline :meth:`consume`; ``pc``/``size`` are in scope (the
        popped entry is exactly the issued ``fetched`` tuple)."""
        ctx.need("frontend", "pipe_iq", "fe_stats")
        ctx.line("pipe_iq.popleft()")
        ctx.line("frontend._iq_bytes -= size")
        ctx.line("fe_stats.instructions_supplied += 1")
        if ctx.spec.traced:
            ctx.line(
                'tracer_emit("iq", "pop", pc=pc, depth=len(pipe_iq), '
                "bytes=frontend._iq_bytes)"
            )

    # ------------------------------------------------------------------
    # IQB -> IQ transfer
    # ------------------------------------------------------------------
    @property
    def _iqb_exhausted(self) -> bool:
        """All of the IQB's line has been consumed (or nothing loaded)."""
        return not self._iqb_loaded or (
            self._iqb_read_pc >= self._iqb_base + self.line_size
        )

    def _transfer_to_iq(self) -> None:
        """Refill an *empty* IQ with whole instructions from the IQB."""
        if self._iq or self._iqb_exhausted:
            return
        moved = 0
        line_end = self._iqb_base + self.line_size
        if self._span_pc is not None:
            # The latched head parcel completes once the new line's first
            # bytes arrive: the IQB must now hold the successor line.
            pc = self._span_pc
            if self._iqb_base != self.cache.line_address(pc + 2):
                return
            try:
                instruction, size = self.predecode.at(pc)
            except DecodeError:
                return
            if self._iqb_valid_end < pc + size:
                return  # tail parcel has not arrived yet
            self._iq.append((pc, instruction, size))
            self._clock.ticks += 1
            moved = size
            self._iq_next_pc = pc + size
            self._iqb_read_pc = pc + size
            self._span_pc = None
            if self._tracer.enabled:
                self._tracer.emit("iq", "push", pc=pc, depth=len(self._iq), bytes=moved)
        elif self._iqb_read_pc != self._iq_next_pc:
            return  # IQB holds a different part of the stream (redirect soon)
        while True:
            pc = self._iq_next_pc
            if pc >= line_end or pc >= self._iqb_valid_end:
                break
            try:
                instruction, size = self.predecode.at(pc)
            except DecodeError:
                # Speculative bytes past the code (e.g. prefetch ran into
                # the data segment).  They can never issue; stop staging.
                break
            if pc + size > line_end:
                # The head parcel is on chip; latch it and consume the
                # line so the fill logic fetches the successor.
                if moved == 0 and self._iqb_valid_end >= line_end:
                    self._span_pc = pc
                    self._iqb_read_pc = line_end
                    self._clock.ticks += 1
                break
            if pc + size > self._iqb_valid_end:
                break  # tail parcel has not arrived yet
            if moved + size > self.iq_size:
                break
            self._iq.append((pc, instruction, size))
            self._clock.ticks += 1
            moved += size
            self._iq_next_pc = pc + size
            self._iqb_read_pc = pc + size
            if self._tracer.enabled:
                self._tracer.emit("iq", "push", pc=pc, depth=len(self._iq), bytes=moved)
        self._iq_bytes = sum(entry[2] for entry in self._iq)

    # ------------------------------------------------------------------
    # Fill selection
    # ------------------------------------------------------------------
    @property
    def _fill_in_progress(self) -> bool:
        """An off-chip fill is still feeding the IQB."""
        return self._request is not None and not self._request_discarded

    def _choose_fill(self, now: int) -> None:
        if self._fill_in_progress:
            return  # a fill is already on its way to the IQB
        branch = self._branch
        if (
            branch is not None
            and branch.resolved
            and branch.taken
            and self._iq_next_pc >= branch.delay_end_pc
        ):
            # All guaranteed instructions have passed into the IQ and the
            # PBR has resolved taken: redirect the IQB to the target line.
            if not self._iqb_covers_stream_at(branch.target):
                self._start_fill(branch.target, now)
            return
        if self._iqb_exhausted:
            if self._span_pc is not None:
                # Fetch the successor line holding the latched
                # instruction's tail parcel.
                next_line = self.cache.line_address(self._span_pc) + self.line_size
                if self._iqb_base != next_line or not self._iqb_loaded:
                    self._start_fill(next_line, now)
                return
            self._start_fill(self._iq_next_pc, now)

    def _iqb_covers_stream_at(self, pc: int) -> bool:
        """Is the IQB (possibly still filling) assigned to ``pc``'s line
        with its read pointer at or before ``pc``?"""
        return (
            self._iqb_loaded
            and self._iqb_base == self.cache.line_address(pc)
            and self._iqb_read_pc <= pc
        )

    def _start_fill(self, start_pc: int, now: int) -> None:
        line_addr = self.cache.line_address(start_pc)
        if self.cache.probe(line_addr, self.line_size):
            self.cache.record_hit(line_addr)
            self._clock.ticks += 1
            self._iqb_loaded = True
            self._iqb_base = line_addr
            self._iqb_read_pc = start_pc
            self._iqb_valid_end = line_addr + self.line_size
            if self._tracer.enabled:
                self._tracer.emit("iqb", "assign", base=line_addr, source="cache")
            return
        # Off-chip.  Under the original PIPE policy the request may only
        # be made if the line is guaranteed to contain an instruction that
        # will execute; the presented results use true prefetch.
        if not self.true_prefetch and line_addr >= self._guaranteed_end():
            return  # retry next cycle; no statistics, nothing committed
        demand = not self._iq
        request = MemoryRequest(
            kind=RequestKind.IFETCH,
            address=line_addr,
            size=self.line_size,
            seq=self._next_seq(),
            demand=demand,
        )
        self._clock.ticks += 1
        self.cache.record_miss(line_addr, seq=request.seq)
        request.on_chunk = self._make_chunk_handler(request)
        request.on_complete = self._make_complete_handler(request)
        if demand:
            self.stats.demand_requests += 1
        else:
            self.stats.prefetch_requests += 1
        if self._tracer.enabled:
            self._tracer.emit(
                "fetch",
                "request",
                addr=line_addr,
                bytes=self.line_size,
                demand=demand,
                seq=request.seq,
            )
            self._tracer.emit("iqb", "assign", base=line_addr, source="memory")
        self._request = request
        self._request_accepted = False
        self._request_discarded = False
        self._iqb_loaded = True
        self._iqb_base = line_addr
        self._iqb_read_pc = start_pc
        self._iqb_valid_end = line_addr  # grows as chunks arrive

    def _guaranteed_end(self) -> int:
        """First byte address past the guaranteed sequential stream.

        With a PBR pending (issued but unresolved, or resolved taken),
        only its delay slots are guaranteed.  Otherwise the control logic
        scans the IQ (one opcode bit per entry) for the first PBR; if none
        is present the sequential stream is unbounded as far as the logic
        can see.
        """
        if self._branch is not None:
            return self._branch.delay_end_pc
        for pc, instruction, size in self._iq:
            if instruction.is_branch:
                return self.predecode.delay_region_end(pc + size, instruction.delay)
        return _FAR_FUTURE

    # ------------------------------------------------------------------
    # Memory request plumbing
    # ------------------------------------------------------------------
    def poll_requests(self, now: int) -> list[MemoryRequest]:
        if self._halted and self._request is not None and not self._request_accepted:
            if self._tracer.enabled:
                self._tracer.emit(
                    "fetch", "cancel", seq=self._request.seq, reason="halt"
                )
            self._request = None  # withdraw the unaccepted request
        if self._request is not None and not self._request_accepted:
            return [self._request]
        return []

    def notify_accepted(self, request: MemoryRequest, now: int) -> None:
        self._request_accepted = True

    def _make_chunk_handler(self, request: MemoryRequest):
        def handler(offset: int, nbytes: int, now: int) -> None:
            # Arriving bytes always fill the cache; they extend the IQB
            # only if this request is still the one feeding it.
            self.cache.fill(request.address + offset, nbytes)
            if self._request is request and not self._request_discarded:
                self._iqb_valid_end = request.address + offset + nbytes

        return handler

    def _make_complete_handler(self, request: MemoryRequest):
        def handler(now: int) -> None:
            # A redirect-discarded request already traced its "cancel";
            # the line still drains into the cache, but the request's
            # terminal event must stay unique.
            discarded = self._request is request and self._request_discarded
            if self._tracer.enabled and not discarded:
                self._tracer.emit("fetch", "complete", seq=request.seq)
            if self._request is request:
                self._request = None
                self._request_discarded = False

        return handler

    # ------------------------------------------------------------------
    # Decoder interface
    # ------------------------------------------------------------------
    def next_instruction(self) -> tuple[int, Instruction, int] | None:
        if self._iq:
            return self._iq[0]
        return None

    def consume(self, now: int) -> None:
        pc, _instruction, size = self._iq.popleft()
        self._iq_bytes -= size
        self.stats.instructions_supplied += 1
        if self._tracer.enabled:
            self._tracer.emit(
                "iq", "pop", pc=pc, depth=len(self._iq), bytes=self._iq_bytes
            )

    # ------------------------------------------------------------------
    # Branch protocol
    # ------------------------------------------------------------------
    def note_branch(self, pbr_pc: int, next_pc: int, delay: int, target: int) -> None:
        delay_end = self.predecode.delay_region_end(next_pc, delay)
        self._branch = _PendingBranch(target=target, delay_end_pc=delay_end)

    def branch_resolved(self, taken: bool) -> None:
        if self._branch is None:
            return
        if taken:
            self._branch.resolved = True
            self._branch.taken = True
        else:
            self._branch = None  # sequential flow simply continues

    def redirect(self, target: int, now: int) -> None:
        self.stats.redirects += 1
        self.stats.squashed_instructions += len(self._iq)
        if self._tracer.enabled:
            self._tracer.emit("fetch", "redirect", target=target, squashed=len(self._iq))
        self._iq.clear()
        self._iq_bytes = 0
        self._iq_next_pc = target
        self._branch = None
        self._span_pc = None  # a latched wrong-path parcel is squashed too
        if self._iqb_loaded and self._iqb_base == self.cache.line_address(target):
            # The IQB already holds (or is receiving) the target line —
            # point the read pointer at the target instruction.
            self._iqb_read_pc = target
        else:
            self._iqb_loaded = False
            if self._request is not None:
                # Let the in-flight line finish into the cache, but the
                # IQB no longer wants it.
                self._request_discarded = True
                if self._tracer.enabled:
                    self._tracer.emit(
                        "fetch", "cancel", seq=self._request.seq, reason="redirect"
                    )
        # Give the decoder a chance to issue from the target this cycle.
        self._advance(now)

    # ------------------------------------------------------------------
    # Progress reporting
    # ------------------------------------------------------------------
    def progress_signature(self) -> tuple:
        return super().progress_signature() + (
            len(self._iq),
            self._iq_next_pc,
            self._iqb_read_pc,
            self._iqb_valid_end,
        )

    def state_signature(self, now: int, base_seq: int) -> tuple:
        """Full fetch-pipeline fingerprint: IQ contents, IQB window,
        outstanding request, latched span parcel, and pending PBR.

        IQ entries reduce to ``(pc, size)`` — the image is immutable, so
        the pc determines the instruction."""
        branch = self._branch
        base = self._request_signature(base_seq)
        return (
            self._halted,
            tuple((pc, size) for pc, _instruction, size in self._iq),
            self._iq_bytes,
            self._iq_next_pc,
            self._iqb_loaded,
            self._iqb_base,
            self._iqb_read_pc,
            self._iqb_valid_end,
            None if base is None else base + (self._request_discarded,),
            self._span_pc,
            None
            if branch is None
            else (branch.target, branch.delay_end_pc, branch.resolved, branch.taken),
        )

    def describe_state(self) -> str:
        return (
            f"{super().describe_state()} IQ={len(self._iq)} entries "
            f"next_pc={self._iq_next_pc:#x} IQB=[{self._iqb_base:#x},"
            f"{self._iqb_valid_end:#x}) loaded={self._iqb_loaded}"
        )

    # ------------------------------------------------------------------
    # Introspection for tests
    # ------------------------------------------------------------------
    @property
    def iq_occupancy_bytes(self) -> int:
        return self._iq_bytes

    @property
    def iqb_available_bytes(self) -> int:
        if not self._iqb_loaded:
            return 0
        return max(0, self._iqb_valid_end - self._iqb_read_pc)
