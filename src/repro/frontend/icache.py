"""On-chip instruction cache array.

Shared by both fetch strategies.  Following Hill's model (paper section
4.1), a line is composed of *sub-blocks*, each with its own valid bit, so
partially-fetched lines are usable as soon as their first sub-blocks
arrive over the input bus.  The PIPE strategy fetches whole lines; the
conventional strategy fetches bus-width blocks — both express their fills
through :meth:`InstructionCache.fill`.

The paper's caches are direct mapped (section 3.2); ``associativity``
generalises the array to set-associative with LRU replacement for the
associativity ablation (Smith & Goodman's instruction-cache organisation
study is the paper's reference point for such variations).

Addresses are byte addresses.  ``set = (address // line_size) % num_sets``
and ``tag = address // (line_size * num_sets)``; with associativity 1
this is the classic direct-mapped split.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scheduler import IDLE
from ..core.trace import NULL_TRACER, Tracer

__all__ = ["CacheStats", "InstructionCache"]


@dataclass
class CacheStats:
    """Hit/miss accounting.  A *lookup* is one :meth:`lookup` call."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    line_replacements: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _Way:
    """One way of one set: a tag plus per-sub-block valid bits."""

    __slots__ = ("tag", "valid", "stamp")

    def __init__(self, sub_blocks: int):
        self.tag: int | None = None
        self.valid = [False] * sub_blocks
        self.stamp = 0  #: LRU timestamp (higher = more recently used)


class InstructionCache:
    """A sub-blocked, set-associative (default direct-mapped) I-cache."""

    #: compiled-kernel contract (``repro.core.compiled``): the cache is
    #: passive — it has no per-cycle phase and ``next_event_cycle`` is
    #: statically ``IDLE`` — so the generated kernel never touches it
    #: directly; all access stays inside the owning frontend.
    COMPILED_PASSIVE = True
    #: compiled-kernel contract: ``_epoch`` increments on every mutation
    #: of the tag/valid arrays (:meth:`fill`, :meth:`invalidate_all`), so
    #: residency answers (:meth:`probe`) for a fixed address range are
    #: constant while ``_epoch`` is unchanged.  Licenses the generated
    #: kernel to memoize probe outcomes per epoch.
    COMPILED_RESIDENCY_EPOCH = True

    def __init__(
        self,
        size: int,
        line_size: int,
        sub_block_size: int = 4,
        associativity: int = 1,
        tracer: Tracer | None = None,
    ):
        if size <= 0 or line_size <= 0 or sub_block_size <= 0:
            raise ValueError("cache dimensions must be positive")
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        if size % (line_size * associativity) != 0:
            raise ValueError(
                f"cache size {size} not a multiple of line size {line_size} "
                f"x associativity {associativity}"
            )
        if line_size % sub_block_size != 0:
            raise ValueError(
                f"line size {line_size} not a multiple of sub-block size {sub_block_size}"
            )
        self.size = size
        self.line_size = line_size
        self.sub_block_size = sub_block_size
        self.associativity = associativity
        self.num_sets = size // (line_size * associativity)
        self.num_lines = size // line_size
        self.sub_blocks_per_line = line_size // sub_block_size
        self._sets: list[list[_Way]] = [
            [_Way(self.sub_blocks_per_line) for _ in range(associativity)]
            for _ in range(self.num_sets)
        ]
        self._clock = 0
        self._epoch = 0
        self.stats = CacheStats()
        self._tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def line_address(self, address: int) -> int:
        """The line-aligned base address containing ``address``."""
        return address - (address % self.line_size)

    def _set_and_tag(self, address: int) -> tuple[int, int]:
        line_number = address // self.line_size
        return line_number % self.num_sets, line_number // self.num_sets

    def _find_way(self, set_index: int, tag: int) -> _Way | None:
        for way in self._sets[set_index]:
            if way.tag == tag:
                return way
        return None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def probe(self, address: int, nbytes: int) -> bool:
        """True if every byte of [address, address+nbytes) is resident.

        Does **not** update statistics or LRU state; use for
        side-effect-free checks (e.g. deciding whether a prefetch is
        necessary).
        """
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        position = address
        end = address + nbytes
        while position < end:
            set_index, tag = self._set_and_tag(position)
            way = self._find_way(set_index, tag)
            if way is None:
                return False
            sub = (position % self.line_size) // self.sub_block_size
            if not way.valid[sub]:
                return False
            position = (
                position - (position % self.sub_block_size) + self.sub_block_size
            )
        return True

    def lookup(self, address: int, nbytes: int) -> bool:
        """Like :meth:`probe` but counts a hit or a miss and touches LRU."""
        hit = self.probe(address, nbytes)
        if hit:
            self.record_hit(address)
            self.touch(address)
        else:
            self.record_miss(address)
        return hit

    # ------------------------------------------------------------------
    # Statistics entry points (every hit/miss flows through these, so
    # the stats counters and the event stream can never drift apart)
    # ------------------------------------------------------------------
    def record_hit(self, address: int) -> None:
        """Count a hit at ``address`` (and emit its trace event)."""
        self.stats.hits += 1
        if self._tracer.enabled:
            self._tracer.emit("icache", "hit", addr=address)

    def record_miss(self, address: int, seq: int = -1) -> None:
        """Count a miss at ``address``; ``seq`` names the fill request."""
        self.stats.misses += 1
        if self._tracer.enabled:
            self._tracer.emit("icache", "miss", addr=address, seq=seq)

    def touch(self, address: int) -> None:
        """Mark ``address``'s line most-recently-used (for LRU)."""
        set_index, tag = self._set_and_tag(address)
        way = self._find_way(set_index, tag)
        if way is not None:
            self._clock += 1
            way.stamp = self._clock

    # ------------------------------------------------------------------
    # Fill
    # ------------------------------------------------------------------
    def fill(self, address: int, nbytes: int) -> None:
        """Mark [address, address+nbytes) resident.

        The range must be sub-block aligned.  A fill whose tag is absent
        from the set claims the LRU way (invalidating whatever it held).
        """
        if address % self.sub_block_size != 0 or nbytes % self.sub_block_size != 0:
            raise ValueError(
                f"fill [{address:#x}, +{nbytes}) not sub-block aligned "
                f"(sub-block {self.sub_block_size})"
            )
        position = address
        end = address + nbytes
        replaced = 0
        while position < end:
            set_index, tag = self._set_and_tag(position)
            way = self._find_way(set_index, tag)
            if way is None:
                way = min(self._sets[set_index], key=lambda candidate: candidate.stamp)
                if way.tag is not None:
                    replaced += 1
                way.tag = tag
                way.valid = [False] * self.sub_blocks_per_line
            sub = (position % self.line_size) // self.sub_block_size
            way.valid[sub] = True
            self._clock += 1
            way.stamp = self._clock
            position += self.sub_block_size
        self._epoch += 1
        self.stats.fills += 1
        self.stats.line_replacements += replaced
        if self._tracer.enabled:
            self._tracer.emit(
                "icache", "fill", addr=address, bytes=nbytes, replaced=replaced
            )

    def next_event_cycle(self, now: int) -> int:
        """Always ``IDLE``: the array is passive.

        Lookups, fills, and LRU touches all happen inside some other
        component's ticked action (a fetch, a delivery, an issue); the
        cache never schedules work of its own.
        """
        return IDLE

    def state_signature(self) -> tuple:
        """Per-set (tag, valid-bits) in LRU-rank order.

        The monotonic LRU clock never recurs, so absolute stamps are
        normalised to their rank within the set — replacement decisions
        depend only on that relative order.
        """
        return tuple(
            tuple(
                (way.tag, tuple(way.valid))
                for way in sorted(ways, key=lambda way: way.stamp)
            )
            for ways in self._sets
        )

    def invalidate_all(self) -> None:
        """Flush the cache (used between benchmark phases in tests)."""
        for ways in self._sets:
            for way in ways:
                way.tag = None
                way.valid = [False] * self.sub_blocks_per_line
                way.stamp = 0
        self._epoch += 1

    # ------------------------------------------------------------------
    def resident_bytes(self) -> int:
        """Total bytes currently valid (for occupancy assertions)."""
        return sum(
            self.sub_block_size
            for ways in self._sets
            for way in ways
            for valid in way.valid
            if valid
        )
