"""The fetch-unit interface both strategies implement.

The cycle-level simulator drives a fetch unit through this protocol each
cycle, in this order:

1. :meth:`FetchUnit.update` — *pre-issue*: react to data that arrived on
   the input bus this cycle (promote starving prefetches to demand,
   move arrived bytes toward the decoder) so the back-end can issue in
   the same cycle the data lands;
2. the back-end calls :meth:`next_instruction` / :meth:`consume` (and
   possibly :meth:`note_branch` / :meth:`branch_resolved` /
   :meth:`redirect`);
3. :meth:`post_issue` — start new cache refills and queue transfers so
   the next cycle's instruction is staged;
4. the memory system polls :meth:`poll_requests` during output-bus
   arbitration.

Fetch units also expose per-strategy statistics via :attr:`FetchStats`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..core.scheduler import IDLE
from ..isa.encoding import InstructionFormat, decode_instruction
from ..isa.instruction import Instruction
from ..isa.predecode import PredecodedImage
from ..memory.requests import MemoryRequest

__all__ = ["FetchStats", "FetchUnit", "decode_at", "delay_region_end"]


@dataclass
class FetchStats:
    """Frontend-side statistics common to both strategies."""

    instructions_supplied: int = 0
    demand_requests: int = 0
    prefetch_requests: int = 0
    prefetch_promotions: int = 0  #: prefetches promoted to demand in flight
    redirects: int = 0
    squashed_instructions: int = 0  #: IQ entries dropped at redirects


def decode_at(image: bytes | bytearray, fmt: InstructionFormat, pc: int):
    """Decode the instruction at ``pc`` → ``(instruction, size)``."""
    return decode_instruction(image, pc, fmt)


def delay_region_end(
    image: bytes | bytearray, fmt: InstructionFormat, next_pc: int, delay: int
) -> int:
    """Byte address just past the ``delay`` instructions following a PBR.

    ``next_pc`` is the address of the first delay-slot instruction.  The
    fetch control logic uses this to know how far the *guaranteed*
    sequential stream extends (paper section 4.2).
    """
    pc = next_pc
    for _ in range(delay):
        _instruction, size = decode_instruction(image, pc, fmt)
        pc += size
    return pc


class FetchUnit(abc.ABC):
    """Abstract instruction-fetch frontend."""

    #: compiled-kernel contract (``repro.core.compiled``): a subclass
    #: sets this True to certify its ``poll_requests`` returns ``[]``
    #: with **zero side effects** whenever ``_request is None or
    #: _request_accepted``, licensing the generated kernel to guard the
    #: poll call behind that test.  All three shipped frontends qualify;
    #: a subclass with different poll behavior must leave this False.
    COMPILED_POLL_GUARD = False
    #: True when ``next_event_cycle`` is statically ``IDLE`` for the
    #: subclass, so the kernel may drop it from the idle-skip wake scan.
    #: Valid only for subclasses that do not override the base method.
    COMPILED_IDLE_HINT = True
    #: True when the subclass ships ``emit_compiled_update`` /
    #: ``emit_compiled_post_issue`` / ``emit_compiled_next_instruction``
    #: / ``emit_compiled_consume`` classmethods whose emitted code is
    #: byte-identical to the bound methods for an unmonkeypatched
    #: instance.  A frontend without emitters leaves this False and the
    #: generated kernel transparently falls back to bound-method calls.
    COMPILED_FRONTEND_INLINE = False

    stats: FetchStats
    #: set by :meth:`halt`; no new fetch work may start afterwards
    _halted: bool = False
    #: the outstanding off-chip fetch, if any (subclasses rebind these)
    _request: MemoryRequest | None = None
    _request_accepted: bool = False

    @classmethod
    def emit_compiled_poll(cls, ctx) -> None:
        """Emit the ``poll_requests`` body into a compiled kernel.

        All three shipped frontends share this poll machine verbatim:
        withdraw the outstanding request after HALT, otherwise offer it.
        The kernel only reaches this code under the ``COMPILED_POLL_GUARD``
        test (``_request is not None and not _request_accepted``), so the
        early-out branches of the bound method are already decided.
        """
        with ctx.block("if frontend._halted:"):
            if ctx.spec.traced:
                ctx.line(
                    'tracer_emit("fetch", "cancel", '
                    "seq=frontend._request.seq, reason=\"halt\")"
                )
            ctx.line("frontend._request = None")
            ctx.line("f_reqs = ()")
        with ctx.block("else:"):
            ctx.line("f_reqs = (frontend._request,)")

    def _install_decoder(
        self,
        image: bytes | bytearray,
        fmt: InstructionFormat,
        predecode: PredecodedImage | None = None,
    ) -> None:
        """Adopt the program's shared decode table (or build a private one).

        Called from subclass constructors; sets :attr:`image`,
        :attr:`fmt`, and :attr:`predecode`.
        """
        self.image = image
        self.fmt = fmt
        self.predecode = (
            predecode if predecode is not None else PredecodedImage(image, fmt)
        )

    def halt(self) -> None:
        """The back-end issued HALT: stop generating fetch work.

        Requests already accepted by the memory complete naturally; any
        request still waiting for the output bus is withdrawn.
        """
        self._halted = True

    # -- replay protocol ---------------------------------------------------
    def _request_signature(self, base_seq: int) -> tuple | None:
        """Anchor-relative fingerprint of the outstanding fetch request.

        The request's address is included: fetch addresses recur in
        steady-state loops (unlike data addresses, which stride).
        """
        request = self._request
        if request is None:
            return None
        return (
            request.address,
            request.size,
            request.demand,
            request.seq - base_seq,
            self._request_accepted,
            request.delivered_bytes,
        )

    def replay_shift(self, cycles: int, seqs: int) -> None:
        """Advance the unaccepted request's seq after a replayed span.

        An *accepted* request lives in the external memory's in-flight
        set and is shifted there; shifting it here too would double-count.
        """
        request = self._request
        if request is not None and not self._request_accepted:
            request.seq += seqs

    # -- quiescence protocol ----------------------------------------------
    def next_event_cycle(self, now: int) -> int:
        """Earliest future cycle this frontend can make progress on its own.

        Frontends are purely event-woken: every state change is a
        reaction to input-bus data (a delivery tick), an issue/consume,
        a branch resolution, or a redirect — all of which bump the
        shared :class:`~repro.core.scheduler.ProgressClock` at their
        origin.  ``IDLE`` is therefore always a safe (and exact) hint.
        """
        return IDLE

    # -- progress reporting ------------------------------------------------
    def progress_signature(self) -> tuple:
        """Counters that change whenever the frontend makes real progress.

        The simulator folds this into its deadlock-detection signature so
        a frontend-only livelock (nothing issuing, no bus traffic, but
        the frontend still churning) is distinguished from forward
        progress, and so the resulting :class:`DeadlockError` can say
        what the frontend was doing.  Subclasses may extend the tuple
        with strategy-specific state.
        """
        s = self.stats
        return (
            s.instructions_supplied,
            s.demand_requests,
            s.prefetch_requests,
            s.prefetch_promotions,
            s.redirects,
        )

    def describe_state(self) -> str:
        """One-line state summary for deadlock/timeout diagnostics."""
        s = self.stats
        return (
            f"supplied={s.instructions_supplied} demand={s.demand_requests} "
            f"prefetch={s.prefetch_requests} redirects={s.redirects}"
        )

    # -- per-cycle phases ------------------------------------------------
    @abc.abstractmethod
    def update(self, now: int) -> None:
        """Pre-issue phase (after input-bus deliveries)."""

    @abc.abstractmethod
    def post_issue(self, now: int) -> None:
        """Post-issue phase (stage work for the next cycle)."""

    # -- decoder interface -------------------------------------------------
    @abc.abstractmethod
    def next_instruction(self) -> tuple[int, Instruction, int] | None:
        """The instruction ready to issue: ``(pc, instruction, size)``.

        ``None`` means the frontend cannot supply one this cycle.
        """

    @abc.abstractmethod
    def consume(self, now: int) -> None:
        """The back-end issued the instruction from :meth:`next_instruction`."""

    # -- branch protocol ---------------------------------------------------
    @abc.abstractmethod
    def note_branch(self, pbr_pc: int, next_pc: int, delay: int, target: int) -> None:
        """A PBR issued: ``delay`` slots follow; target already known."""

    @abc.abstractmethod
    def branch_resolved(self, taken: bool) -> None:
        """The pending PBR's condition was evaluated."""

    @abc.abstractmethod
    def redirect(self, target: int, now: int) -> None:
        """Issue reached the delay boundary of a taken branch."""

    # -- memory request source ----------------------------------------------
    @abc.abstractmethod
    def poll_requests(self, now: int) -> list[MemoryRequest]:
        """Offer at most one fetch request for output-bus arbitration."""

    @abc.abstractmethod
    def notify_accepted(self, request: MemoryRequest, now: int) -> None:
        """A polled request won arbitration this cycle."""
