"""The conventional cache with Hill's *always-prefetch* strategy.

Paper section 4.1: "a cache line is composed of a number of sub-blocks,
each block with its own individual valid bit.  A PC is presented to the
cache at the beginning of each clock cycle and a tag lookup and cache
array lookup of that PC can both be completed before the end of that
cycle.  The always-prefetch strategy prefetches an instruction from the
next sequential location on each instruction reference, even if this
address maps into the next cache line.  Memory requests are made for only
one instruction at a time, and a new one cannot begin until the previous
one finishes.  Data fetches have priority over both instruction fetches
and prefetches, while instruction fetches have priority over prefetches."

Modelling choices:

* one instruction = 4 bytes in the fixed-32 format the presented results
  use; a request transfers one input-bus-width block aligned to the bus
  width, so an 8-byte bus fills two sub-blocks per request — this is what
  makes the conventional cache's performance sensitive to bus width;
* exactly one outstanding request (demand or prefetch) at a time;
* a prefetch in flight is promoted to demand if the PC catches up to it;
* there is no instruction buffer: the decoder reads the cache array
  directly, so issue requires the PC's bytes to be resident.
"""

from __future__ import annotations

import enum

from ..core.scheduler import ProgressClock
from ..core.trace import NULL_TRACER, Tracer
from ..isa.encoding import InstructionFormat
from ..isa.instruction import Instruction
from ..isa.predecode import PredecodedImage
from ..memory.requests import MemoryRequest, RequestKind
from .base import FetchStats, FetchUnit
from .icache import InstructionCache

__all__ = ["ConventionalFetchUnit", "PrefetchPolicy"]


class PrefetchPolicy(enum.Enum):
    """The prefetch strategies of Hill's study (paper section 4.1).

    The paper adopts ``ALWAYS`` as the conventional baseline because it
    "consistently provided the best performance" in Hill's comparison;
    the other members let us re-verify that finding (see the Hill-policy
    experiment):

    * ``ALWAYS`` — prefetch the next sequential location on *every*
      instruction reference, even across cache lines;
    * ``TAGGED`` — prefetch the next block the first time a block is
      referenced after being fetched (Smith's tagged prefetch: one tag
      bit per block, cleared on fill);
    * ``ON_MISS`` — a demand miss also schedules a prefetch of the next
      sequential block;
    * ``NONE`` — demand fetching only.
    """

    ALWAYS = "always"
    TAGGED = "tagged"
    ON_MISS = "on_miss"
    NONE = "none"


class ConventionalFetchUnit(FetchUnit):
    """Direct-mapped sub-blocked cache with a selectable prefetch policy."""

    #: ``poll_requests`` is side-effect free and empty whenever no
    #: unaccepted request is outstanding (see the method), so the
    #: compiled kernel may guard the poll behind that test.
    COMPILED_POLL_GUARD = True
    #: the ``emit_compiled_*`` classmethods below lower this unit's
    #: state machines into the kernel (``docs/COMPILED.md``)
    COMPILED_FRONTEND_INLINE = True

    def __init__(
        self,
        image: bytes | bytearray,
        fmt: InstructionFormat,
        cache: InstructionCache,
        input_bus_width: int,
        entry_point: int,
        next_seq,
        prefetch_policy: PrefetchPolicy = PrefetchPolicy.ALWAYS,
        predecode: PredecodedImage | None = None,
        tracer: Tracer | None = None,
        clock: ProgressClock | None = None,
    ):
        self._install_decoder(image, fmt, predecode)
        self.cache = cache
        self.block_size = input_bus_width  #: bytes returned per request
        self.prefetch_policy = prefetch_policy
        self._next_seq = next_seq
        self.stats = FetchStats()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock if clock is not None else ProgressClock()

        self._pc = entry_point
        self._request: MemoryRequest | None = None
        self._request_accepted = False
        self._request_is_demand = False
        #: ON_MISS: block address to prefetch once the demand completes
        self._miss_prefetch_block: int | None = None
        #: TAGGED: blocks already referenced since their last fill
        self._tagged_blocks: set[int] = set()

    # ------------------------------------------------------------------
    # Cycle phases
    # ------------------------------------------------------------------
    def update(self, now: int) -> None:
        self._maybe_promote()
        self._maybe_request(now)

    def post_issue(self, now: int) -> None:
        self._maybe_promote()
        self._maybe_request(now)

    def _block_address(self, address: int) -> int:
        return address - (address % self.block_size)

    # ------------------------------------------------------------------
    # compiled-kernel lowering (repro.core.compiled)
    # ------------------------------------------------------------------
    # Both per-cycle phases are ``_maybe_promote(); _maybe_request(now)``.
    # The lowered form folds the helpers' early-out guards and memoizes
    # the *no-op* outcome of ``_maybe_request`` per ``(pc, cache epoch)``:
    # when the call at a given pc issued no request, every later call at
    # the same pc is a provable no-op until the cache mutates (the
    # ``COMPILED_RESIDENCY_EPOCH`` contract — residency answers are
    # constant per epoch, TAGGED's tag-add is idempotent, ON_MISS's
    # deferred block can only change via a request whose completion bumps
    # the epoch).  ``next_instruction`` is pure in the same pair and is
    # memoized the same way.

    @classmethod
    def _emit_phase(cls, ctx) -> None:
        ctx.need(
            "frontend", "icache_unit", "fe_memo", "frontend_maybe_promote",
            "frontend_maybe_request",
        )
        ctx.line("f_req = frontend._request")
        with ctx.block("if f_req is None:"):
            with ctx.block("if not frontend._halted:"):
                ctx.line("f_pc = frontend._pc")
                with ctx.block("if fe_memo.get(f_pc) != icache_unit._epoch:"):
                    ctx.line("frontend_maybe_request(now)")
                    with ctx.block("if frontend._request is None:"):
                        ctx.line("fe_memo[f_pc] = icache_unit._epoch")
        with ctx.block("elif not f_req.demand:"):
            ctx.line("frontend_maybe_promote()")

    @classmethod
    def emit_compiled_update(cls, ctx) -> None:
        cls._emit_phase(ctx)

    @classmethod
    def emit_compiled_post_issue(cls, ctx) -> None:
        cls._emit_phase(ctx)

    @classmethod
    def emit_compiled_next_instruction(cls, ctx) -> None:
        """``fetched = <next_instruction()>`` memoized per (pc, epoch)."""
        ctx.need("frontend", "icache_unit", "res_memo", "frontend_next_instruction")
        ctx.line("f_pc = frontend._pc")
        ctx.line("entry = res_memo.get(f_pc)")
        with ctx.block("if entry is not None and entry[0] == icache_unit._epoch:"):
            ctx.line("fetched = entry[1]")
        with ctx.block("else:"):
            ctx.line("fetched = frontend_next_instruction()")
            ctx.line("res_memo[f_pc] = (icache_unit._epoch, fetched)")

    @classmethod
    def emit_compiled_consume(cls, ctx) -> None:
        """Inline :meth:`consume`; ``pc``/``size`` are in scope from the
        issued instruction, so the predecode lookup is already done."""
        ctx.need("frontend", "fe_stats", "icache_stats")
        ctx.line("icache_stats.hits += 1")
        if ctx.spec.traced:
            ctx.line('tracer_emit("icache", "hit", addr=pc)')
        ctx.line("frontend._pc = pc + size")
        ctx.line("fe_stats.instructions_supplied += 1")

    def _current_instruction_resident(self) -> bool:
        if not self.cache.probe(self._pc, 2):
            return False
        _instruction, size = self.predecode.at(self._pc)
        return self.cache.probe(self._pc, size)

    def _maybe_promote(self) -> None:
        """Promote an in-flight prefetch the demand PC has caught up to."""
        request = self._request
        if request is None or request.demand:
            return
        block = self._block_address(self._pc)
        if request.address == block and not self._current_instruction_resident():
            request.promote_to_demand()
            self._clock.ticks += 1
            self._request_is_demand = True
            self.stats.prefetch_promotions += 1
            if self._tracer.enabled:
                self._tracer.emit("fetch", "promote", seq=request.seq)

    def _maybe_request(self, now: int) -> None:
        if self._halted or self._request is not None:
            return  # at most one outstanding request (paper section 4.1)
        # Demand fetch of the current PC's block if it misses.
        if not self._current_instruction_resident():
            # The miss may be on the instruction's tail parcel.
            probe_addr = self._pc
            if self.cache.probe(self._pc, 2):
                _instr, size = self.predecode.at(self._pc)
                position = self._pc
                while position < self._pc + size and self.cache.probe(position, 2):
                    position += 2
                probe_addr = position
            block = self._block_address(probe_addr)
            if self.prefetch_policy is PrefetchPolicy.ON_MISS:
                self._miss_prefetch_block = block + self.block_size
            self._issue_request(block, demand=True, now=now, miss_addr=probe_addr)
            return
        prefetch_block = self._choose_prefetch()
        if prefetch_block is not None:
            self._issue_request(prefetch_block, demand=False, now=now)

    def _prefetchable(self, block: int) -> bool:
        """Worth fetching: in range and not already (partially) resident."""
        if block + 2 > len(self.image):
            return False
        probe_len = min(self.block_size, len(self.image) - block)
        probe_len -= probe_len % 2
        return probe_len >= 2 and not self.cache.probe(block, probe_len)

    def _choose_prefetch(self) -> int | None:
        """Pick this cycle's prefetch target per the configured policy.

        Called only when the current instruction hits in the cache.
        """
        policy = self.prefetch_policy
        if policy is PrefetchPolicy.NONE:
            return None
        if policy is PrefetchPolicy.ON_MISS:
            block = self._miss_prefetch_block
            if block is not None and self._prefetchable(block):
                self._miss_prefetch_block = None
                return block
            return None
        if policy is PrefetchPolicy.TAGGED:
            # First reference to a block prefetches its successor block.
            current = self._block_address(self._pc)
            if current in self._tagged_blocks:
                return None
            self._tagged_blocks.add(current)
            candidate = current + self.block_size
        else:  # ALWAYS: the next sequential location, even across lines
            _instruction, size = self.predecode.at(self._pc)
            candidate = self._block_address(self._pc + size)
        if self._prefetchable(candidate):
            return candidate
        return None

    def _issue_request(
        self,
        block_address: int,
        demand: bool,
        now: int,
        miss_addr: int | None = None,
    ) -> None:
        request = MemoryRequest(
            kind=RequestKind.IFETCH,
            address=block_address,
            size=self.block_size,
            seq=self._next_seq(),
            demand=demand,
        )
        self._clock.ticks += 1
        if miss_addr is not None:
            self.cache.record_miss(miss_addr, seq=request.seq)
        request.on_chunk = self._make_chunk_handler(request)
        request.on_complete = self._make_complete_handler(request)
        if demand:
            self.stats.demand_requests += 1
        else:
            self.stats.prefetch_requests += 1
        if self._tracer.enabled:
            self._tracer.emit(
                "fetch",
                "request",
                addr=block_address,
                bytes=self.block_size,
                demand=demand,
                seq=request.seq,
            )
        self._request = request
        self._request_accepted = False
        self._request_is_demand = demand

    def _make_chunk_handler(self, request: MemoryRequest):
        def handler(offset: int, nbytes: int, now: int) -> None:
            self.cache.fill(request.address + offset, nbytes)
            # A freshly-filled block is unreferenced again (tagged prefetch).
            self._tagged_blocks.discard(self._block_address(request.address + offset))

        return handler

    def _make_complete_handler(self, request: MemoryRequest):
        def handler(now: int) -> None:
            if self._tracer.enabled:
                self._tracer.emit("fetch", "complete", seq=request.seq)
            if self._request is request:
                self._request = None

        return handler

    # ------------------------------------------------------------------
    # Memory request plumbing
    # ------------------------------------------------------------------
    def poll_requests(self, now: int) -> list[MemoryRequest]:
        if self._halted and self._request is not None and not self._request_accepted:
            if self._tracer.enabled:
                self._tracer.emit(
                    "fetch", "cancel", seq=self._request.seq, reason="halt"
                )
            self._request = None  # withdraw the unaccepted request
        if self._request is not None and not self._request_accepted:
            return [self._request]
        return []

    def notify_accepted(self, request: MemoryRequest, now: int) -> None:
        self._request_accepted = True

    # ------------------------------------------------------------------
    # Decoder interface
    # ------------------------------------------------------------------
    def next_instruction(self) -> tuple[int, Instruction, int] | None:
        if not self._current_instruction_resident():
            return None
        instruction, size = self.predecode.at(self._pc)
        return (self._pc, instruction, size)

    def consume(self, now: int) -> None:
        _instruction, size = self.predecode.at(self._pc)
        self.cache.record_hit(self._pc)  # each issued instruction came from the array
        self._pc += size
        self.stats.instructions_supplied += 1

    # ------------------------------------------------------------------
    # Branch protocol — the conventional frontend has no lookahead; it
    # simply follows the PC, which the back-end changes at the redirect.
    # ------------------------------------------------------------------
    def note_branch(self, pbr_pc: int, next_pc: int, delay: int, target: int) -> None:
        pass

    def branch_resolved(self, taken: bool) -> None:
        pass

    def redirect(self, target: int, now: int) -> None:
        self.stats.redirects += 1
        if self._tracer.enabled:
            self._tracer.emit("fetch", "redirect", target=target, squashed=0)
        self._pc = target

    # ------------------------------------------------------------------
    # Progress reporting
    # ------------------------------------------------------------------
    def progress_signature(self) -> tuple:
        return super().progress_signature() + (self._pc,)

    def state_signature(self, now: int, base_seq: int) -> tuple:
        """PC, outstanding request, and prefetch-policy bookkeeping."""
        return (
            self._halted,
            self._pc,
            self._request_signature(base_seq),
            self._request_is_demand,
            self._miss_prefetch_block,
            frozenset(self._tagged_blocks),
        )

    def describe_state(self) -> str:
        return (
            f"{super().describe_state()} pc={self._pc:#x} "
            f"outstanding={'yes' if self._request is not None else 'no'}"
        )
