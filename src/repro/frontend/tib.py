"""A Target Instruction Buffer (TIB) frontend — the cacheless alternative.

Paper section 2.1: "A TIB can be used in place of or in addition to an
instruction cache, and contains the n sequential instructions stored at
a branch target address. ... When a branch is taken, the n instructions
are taken out of the TIB while the I-Fetch control logic issues requests
for the instructions sequential to the ones in the TIB.  If there are
more instructions in the TIB than the number of clock cycles it takes to
access external memory, the instruction stream will have no gaps in it.
The AMD29000 uses such a TIB instead of an instruction cache. ... the
use of a TIB implies large amounts of off-chip accessing, which again
can be a problem in SCP design."

This unit lets the reproduction *measure* that trade-off against the
paper's two strategies:

* sequential instructions stream straight from external memory into a
  small on-chip stream buffer (there is **no** instruction cache, so the
  off-chip request rate is high by construction);
* a fully-associative, LRU-replaced buffer of branch-target entries
  captures the first ``entry_bytes`` of each taken-branch target; a
  later taken branch to the same target drains the TIB entry while the
  fetch engine asks memory for the instructions after it.

An entry is allocated on a taken branch that misses the TIB and fills
from the demand stream that follows, so every target hits from its
second visit (capacity permitting).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.scheduler import ProgressClock
from ..core.trace import NULL_TRACER, Tracer
from ..isa.encoding import DecodeError, InstructionFormat
from ..isa.instruction import Instruction
from ..isa.predecode import PredecodedImage
from ..memory.requests import MemoryRequest, RequestKind
from .base import FetchStats, FetchUnit

__all__ = ["TibFetchUnit", "TibStats"]


@dataclass
class TibStats(FetchStats):
    """Fetch statistics plus TIB-specific hit accounting."""

    tib_hits: int = 0
    tib_misses: int = 0
    tib_bytes_supplied: int = 0

    @property
    def tib_hit_rate(self) -> float:
        total = self.tib_hits + self.tib_misses
        return self.tib_hits / total if total else 0.0


@dataclass
class _TibEntry:
    target: int = -1
    valid_bytes: int = 0
    stamp: int = 0
    filling: bool = field(default=False, repr=False)


class TibFetchUnit(FetchUnit):
    """Stream buffer + branch-target buffer, no instruction cache."""

    #: ``poll_requests`` is side-effect free and empty whenever no
    #: unaccepted request is outstanding (see the method), so the
    #: compiled kernel may guard the poll behind that test.
    COMPILED_POLL_GUARD = True
    #: the ``emit_compiled_*`` classmethods below lower this unit's
    #: state machines into the kernel (``docs/COMPILED.md``)
    COMPILED_FRONTEND_INLINE = True

    def __init__(
        self,
        image: bytes | bytearray,
        fmt: InstructionFormat,
        input_bus_width: int,
        entry_point: int,
        next_seq,
        tib_entries: int = 4,
        tib_entry_bytes: int = 16,
        stream_buffer_bytes: int = 32,
        predecode: PredecodedImage | None = None,
        tracer: Tracer | None = None,
        clock: ProgressClock | None = None,
    ):
        if tib_entries < 1 or tib_entry_bytes < 4:
            raise ValueError("TIB needs at least one entry of one instruction")
        if stream_buffer_bytes < 2 * input_bus_width:
            raise ValueError("stream buffer must hold two bus transfers")
        self._install_decoder(image, fmt, predecode)
        self.block_size = input_bus_width
        self.entry_bytes = tib_entry_bytes
        self.stream_capacity = stream_buffer_bytes
        self._next_seq = next_seq
        self.stats = TibStats()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._progress = clock if clock is not None else ProgressClock()

        #: next instruction to issue / contiguous bytes on chip past it
        self._pc = entry_point
        self._valid_end = entry_point
        self._request: MemoryRequest | None = None
        self._request_accepted = False

        self._entries = [_TibEntry() for _ in range(tib_entries)]
        self._clock = 0
        #: entry currently capturing the post-redirect demand stream
        self._fill_entry: _TibEntry | None = None

    # ------------------------------------------------------------------
    # Cycle phases
    # ------------------------------------------------------------------
    def update(self, now: int) -> None:
        self._promote_if_starving()
        self._maybe_request(now)

    def post_issue(self, now: int) -> None:
        self._maybe_request(now)

    def _promote_if_starving(self) -> None:
        request = self._request
        if request is not None and not request.demand and not self._has_instruction():
            request.promote_to_demand()
            self._progress.ticks += 1
            self.stats.prefetch_promotions += 1
            if self._tracer.enabled:
                self._tracer.emit("fetch", "promote", seq=request.seq)

    def _buffered_bytes(self) -> int:
        return self._valid_end - self._pc

    # ------------------------------------------------------------------
    # compiled-kernel lowering (repro.core.compiled)
    # ------------------------------------------------------------------
    # The lowered phases fold ``_maybe_request``'s cheap early-outs —
    # the stream-buffer room test with ``stream_capacity``/``block_size``
    # as literals — and call the bound helpers only when they can act
    # (each re-checks its own guards).  ``next_instruction`` reads the
    # shared predecode table directly: the common case (entry already
    # decoded, fully arrived) is three comparisons and a dict lookup.

    @classmethod
    def _emit_request_guard(cls, ctx) -> None:
        cap = ctx.spec.tib_stream_capacity
        block = ctx.spec.tib_block_size
        with ctx.block(
            "if not frontend._halted and "
            f"{cap} - (frontend._valid_end - frontend._pc) >= {block}:"
        ):
            ctx.line("frontend_maybe_request(now)")

    @classmethod
    def emit_compiled_update(cls, ctx) -> None:
        ctx.need(
            "frontend", "frontend_promote_starving", "frontend_maybe_request"
        )
        ctx.line("f_req = frontend._request")
        with ctx.block("if f_req is not None:"):
            with ctx.block("if not f_req.demand:"):
                ctx.line("frontend_promote_starving()")
        with ctx.block("else:"):
            cls._emit_request_guard(ctx)

    @classmethod
    def emit_compiled_post_issue(cls, ctx) -> None:
        ctx.need("frontend", "frontend_maybe_request")
        with ctx.block("if frontend._request is None:"):
            cls._emit_request_guard(ctx)

    @classmethod
    def emit_compiled_next_instruction(cls, ctx) -> None:
        """Inline :meth:`next_instruction` over the predecode table.

        ``False`` is the not-yet-decoded sentinel (``dict.get`` default);
        ``None`` marks bytes that do not decode, which the bound method
        also reports as nothing-to-issue.
        """
        ctx.need("frontend", "pd_table", "frontend_next_instruction")
        ctx.line("f_pc = frontend._pc")
        ctx.line("f_end = frontend._valid_end")
        with ctx.block("if f_pc + 2 > f_end:"):
            ctx.line("fetched = None")
        with ctx.block("else:"):
            ctx.line("entry = pd_table.get(f_pc, False)")
            with ctx.block("if entry is False:"):
                ctx.line("fetched = frontend_next_instruction()")
            with ctx.block("elif entry is None:"):
                ctx.line("fetched = None")
            with ctx.block("elif f_pc + entry[1] <= f_end:"):
                ctx.line("fetched = (f_pc, entry[0], entry[1])")
            with ctx.block("else:"):
                ctx.line("fetched = None")

    @classmethod
    def emit_compiled_consume(cls, ctx) -> None:
        """Inline :meth:`consume`; ``pc``/``size`` are in scope."""
        ctx.need("frontend", "fe_stats")
        ctx.line("frontend._pc = pc + size")
        ctx.line("fe_stats.instructions_supplied += 1")

    def _maybe_request(self, now: int) -> None:
        if self._halted or self._request is not None:
            return
        outstanding_room = self.stream_capacity - self._buffered_bytes()
        if outstanding_room < self.block_size:
            return  # buffer full enough; no further stream-ahead
        # Fetch the bus-width block containing the stream's frontier; a
        # misaligned frontier (e.g. after a TIB hit) refetches the few
        # bytes before it — the price of alignment on a real bus.
        block = self._valid_end - (self._valid_end % self.block_size)
        if block + 2 > len(self.image):
            return  # stream ran past the code image
        demand = not self._has_instruction()
        request = MemoryRequest(
            kind=RequestKind.IFETCH,
            address=block,
            size=self.block_size,
            seq=self._next_seq(),
            demand=demand,
        )
        self._progress.ticks += 1
        request.on_chunk = self._make_chunk_handler(request)
        request.on_complete = self._make_complete_handler(request)
        if demand:
            self.stats.demand_requests += 1
        else:
            self.stats.prefetch_requests += 1
        if self._tracer.enabled:
            self._tracer.emit(
                "fetch",
                "request",
                addr=block,
                bytes=self.block_size,
                demand=demand,
                seq=request.seq,
            )
        self._request = request
        self._request_accepted = False

    def _make_chunk_handler(self, request: MemoryRequest):
        def handler(offset: int, nbytes: int, now: int) -> None:
            if self._request is not request:
                return  # stale wrong-path stream data
            arrived_end = request.address + offset + nbytes
            if arrived_end > self._valid_end:
                self._valid_end = arrived_end
            self._feed_fill_entry()

        return handler

    def _make_complete_handler(self, request: MemoryRequest):
        def handler(now: int) -> None:
            if self._tracer.enabled:
                self._tracer.emit("fetch", "complete", seq=request.seq)
            if self._request is request:
                self._request = None

        return handler

    # ------------------------------------------------------------------
    # TIB management
    # ------------------------------------------------------------------
    def _find_entry(self, target: int) -> _TibEntry | None:
        for entry in self._entries:
            if entry.target == target and entry.valid_bytes >= 4:
                return entry
        return None

    def _allocate_entry(self, target: int) -> _TibEntry:
        victim = min(self._entries, key=lambda entry: entry.stamp)
        victim.target = target
        victim.valid_bytes = 0
        victim.filling = True
        self._clock += 1
        victim.stamp = self._clock
        return victim

    def _feed_fill_entry(self) -> None:
        """Copy freshly-arrived demand-stream bytes into the filling entry."""
        entry = self._fill_entry
        if entry is None:
            return
        fill_front = entry.target + entry.valid_bytes
        if self._valid_end > fill_front:
            entry.valid_bytes = min(
                self.entry_bytes, self._valid_end - entry.target
            )
        if entry.valid_bytes >= self.entry_bytes:
            entry.filling = False
            self._fill_entry = None

    # ------------------------------------------------------------------
    # Memory request plumbing
    # ------------------------------------------------------------------
    def poll_requests(self, now: int) -> list[MemoryRequest]:
        if self._halted and self._request is not None and not self._request_accepted:
            if self._tracer.enabled:
                self._tracer.emit(
                    "fetch", "cancel", seq=self._request.seq, reason="halt"
                )
            self._request = None  # withdraw the unaccepted request
        if self._request is not None and not self._request_accepted:
            return [self._request]
        return []

    def notify_accepted(self, request: MemoryRequest, now: int) -> None:
        self._request_accepted = True

    # ------------------------------------------------------------------
    # Decoder interface
    # ------------------------------------------------------------------
    def _has_instruction(self) -> bool:
        if self._pc + 2 > self._valid_end:
            return False
        try:
            _instruction, size = self.predecode.at(self._pc)
        except DecodeError:
            return False
        return self._pc + size <= self._valid_end

    def next_instruction(self) -> tuple[int, Instruction, int] | None:
        if not self._has_instruction():
            return None
        instruction, size = self.predecode.at(self._pc)
        return (self._pc, instruction, size)

    def consume(self, now: int) -> None:
        _instruction, size = self.predecode.at(self._pc)
        self._pc += size
        self.stats.instructions_supplied += 1

    # ------------------------------------------------------------------
    # Branch protocol
    # ------------------------------------------------------------------
    def note_branch(self, pbr_pc: int, next_pc: int, delay: int, target: int) -> None:
        pass  # targets are served at redirect time, from the TIB

    def progress_signature(self) -> tuple:
        return super().progress_signature() + (self._pc, self._valid_end)

    def describe_state(self) -> str:
        return (
            f"{super().describe_state()} pc={self._pc:#x} "
            f"stream_end={self._valid_end:#x} "
            f"tib_hits={self.stats.tib_hits}/{self.stats.tib_hits + self.stats.tib_misses}"
        )

    def state_signature(self, now: int, base_seq: int) -> tuple:
        """Stream window, outstanding request, and TIB entries in
        LRU-rank order (the monotonic allocation clock never recurs, so
        absolute stamps are normalised to their rank)."""
        ranked = sorted(self._entries, key=lambda entry: entry.stamp)
        return (
            self._halted,
            self._pc,
            self._valid_end,
            self._request_signature(base_seq),
            tuple(
                (entry.target, entry.valid_bytes, entry.filling) for entry in ranked
            ),
            None if self._fill_entry is None else ranked.index(self._fill_entry),
        )

    def branch_resolved(self, taken: bool) -> None:
        pass

    def redirect(self, target: int, now: int) -> None:
        self.stats.redirects += 1
        if self._tracer.enabled:
            self._tracer.emit("fetch", "redirect", target=target, squashed=0)
        self._fill_entry = None
        entry = self._find_entry(target)
        if entry is not None:
            # The target's first instructions come straight out of the TIB
            # while memory is asked for their sequential successors.
            self.stats.tib_hits += 1
            self.stats.tib_bytes_supplied += entry.valid_bytes
            self._clock += 1
            entry.stamp = self._clock
            self._pc = target
            self._valid_end = target + entry.valid_bytes
            if self._tracer.enabled:
                self._tracer.emit("tib", "hit", target=target, bytes=entry.valid_bytes)
        else:
            self.stats.tib_misses += 1
            self._pc = target
            self._valid_end = target
            self._fill_entry = self._allocate_entry(target)
            if self._tracer.enabled:
                self._tracer.emit("tib", "miss", target=target)
                self._tracer.emit("tib", "alloc", target=target)
        # The in-flight sequential request (if any) belongs to the old
        # path; its data must not extend the new stream.
        if self._request is not None and not self._request_accepted:
            if self._tracer.enabled:
                self._tracer.emit(
                    "fetch", "cancel", seq=self._request.seq, reason="redirect"
                )
            self._request = None  # withdraw before acceptance
        elif self._request is not None:
            if self._tracer.enabled:
                self._tracer.emit(
                    "fetch", "cancel", seq=self._request.seq, reason="redirect"
                )
            self._request.on_chunk = None
            request = self._request

            def forget(now: int, request=request) -> None:
                if self._request is request:
                    self._request = None

            self._request.on_complete = forget
