"""Regenerate Table I — Lawrence Livermore Loop inner-loop sizes."""

from _harness import once, publish

from repro.analysis.experiments import run_experiment
from repro.cpu.functional import run_functional


def test_table1(context, results_dir, benchmark):
    report = run_experiment("table1", context)
    publish(results_dir, "table1", report)
    assert report.all_passed, report.render_checks()

    # Timing unit: the functional run behind the table's calibration
    # (section 5's 150,575-instruction benchmark program).
    result = once(benchmark, lambda: run_functional(context.program))
    assert result.halted
