"""Regenerate Figure 5 — 6-cycle non-pipelined memory, 4B vs 8B bus.

Checks the paper's central result: with memory slower than one cycle,
every PIPE configuration beats the conventional always-prefetch cache
at every cache size, and PIPE is far less sensitive to bus width.
"""

from _harness import once, publish

from repro.analysis.experiments import run_experiment
from repro.core.config import MachineConfig
from repro.core.simulator import simulate


def test_figure5(context, results_dir, benchmark):
    report = run_experiment("figure5", context)
    publish(results_dir, "figure5", report)
    assert report.all_passed, report.render_checks()

    # Timing unit: the conventional cache at the paper's hardest point
    # (small cache, narrow bus, slow memory) — the baseline PIPE doubles.
    result = once(
        benchmark,
        lambda: simulate(
            MachineConfig.conventional(
                32, memory_access_time=6, input_bus_width=4
            ),
            context.program,
        ),
    )
    assert result.halted
