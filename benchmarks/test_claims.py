"""The headline claim: 'up to twice as fast' with a small cache.

Section 7 of the paper.  Prints the conventional-vs-best-PIPE speedup
at a 32-byte cache with 6-cycle memory and a 4-byte bus, and the
conventional cache size a 32-byte PIPE cache is comparable to.
"""

from _harness import once, publish

from repro.analysis.experiments import run_experiment
from repro.core.config import MachineConfig
from repro.core.simulator import simulate


def test_headline_claim(context, results_dir, benchmark):
    report = run_experiment("headline", context)
    publish(results_dir, "headline", report)
    assert report.all_passed, report.render_checks()

    # Timing unit: the winning PIPE point behind the headline number.
    result = once(
        benchmark,
        lambda: simulate(
            MachineConfig.pipe(
                "16-16", 32, memory_access_time=6, input_bus_width=4
            ),
            context.program,
        ),
    )
    assert result.halted
