"""Regenerate Figure 4 — 1-cycle memory, 4B vs 8B input bus.

Prints cycles-vs-cache-size for the four PIPE configurations and the
conventional cache (panels 4a and 4b) and checks the paper's findings:
this is the only design point where the conventional cache beats some
PIPE configuration, and 8-8/16-16 are nearly flat with the wide bus.
"""

from _harness import once, publish

from repro.analysis.experiments import run_experiment
from repro.core.config import MachineConfig
from repro.core.simulator import simulate


def test_figure4(context, results_dir, benchmark):
    report = run_experiment("figure4", context)
    publish(results_dir, "figure4", report)
    assert report.all_passed, report.render_checks()

    # Timing unit: the paper's Figure 4a smallest-cache PIPE point.
    result = once(
        benchmark,
        lambda: simulate(
            MachineConfig.pipe(
                "8-8", 32, memory_access_time=1, input_bus_width=4
            ),
            context.program,
        ),
    )
    assert result.halted
