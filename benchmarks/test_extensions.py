"""Extension experiments beyond the paper's figures.

* ``hill`` — re-verifies the prefetch-strategy ranking the paper adopts
  from Hill's thesis (section 4.1);
* ``tib`` — measures the Target Instruction Buffer trade-off the paper
  summarises in section 2.1;
* ``queues`` — IQ/IQB size sensitivity (simulation parameters 7/8);
* ``assoc`` — what associativity would have bought over the paper's
  direct-mapped organisation (answer: nothing, for loop code).
"""

import pytest

from _harness import once, publish

from repro.analysis.experiments import run_experiment
from repro.core.config import MachineConfig, PrefetchPolicy
from repro.core.simulator import simulate


@pytest.mark.parametrize("experiment_id", ["hill", "tib", "queues", "assoc", "delays"])
def test_extension_experiment(experiment_id, context, results_dir, benchmark):
    report = run_experiment(experiment_id, context)
    publish(results_dir, experiment_id, report)
    assert report.all_passed, report.render_checks()

    timing_units = {
        "hill": lambda: simulate(
            MachineConfig.conventional(
                128, prefetch_policy=PrefetchPolicy.TAGGED, memory_access_time=6
            ),
            context.program,
        ),
        "tib": lambda: simulate(
            MachineConfig.tib(4, 16, memory_access_time=6), context.program
        ),
        "queues": lambda: simulate(
            MachineConfig.pipe("16-16", 128).with_overrides(iq_size=4),
            context.program,
        ),
        "assoc": lambda: simulate(
            MachineConfig.pipe("16-16", 64, cache_associativity=4),
            context.program,
        ),
        "delays": lambda: simulate(
            MachineConfig.pipe("16-16", 512, memory_access_time=1),
            context.program,
        ),
    }
    result = once(benchmark, timing_units[experiment_id])
    assert result.halted
