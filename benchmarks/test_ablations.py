"""Ablations the paper discusses without plotting.

A — access times 2 and 3 "showed similar results" (section 6);
B — true off-chip prefetch vs the original guaranteed-execution policy
    (the paper calls the original "non-optimal");
C — instruction-first vs data-first priority at the memory interface
    (the queues make the choice low-impact, section 2.2);
D — native 16/32-bit parcel format vs the fixed 32-bit format
    (simulation parameter 1).
"""

from _harness import once, publish

from repro.analysis.experiments import run_experiment
from repro.core.config import MachineConfig
from repro.core.simulator import simulate


def test_ablations(context, results_dir, benchmark):
    report = run_experiment("ablations", context)
    publish(results_dir, "ablations", report)
    assert report.all_passed, report.render_checks()

    # Timing unit: the guaranteed-execution fetch policy (ablation B).
    result = once(
        benchmark,
        lambda: simulate(
            MachineConfig.pipe(
                "16-16", 128, memory_access_time=6, true_prefetch=False
            ),
            context.program,
        ),
    )
    assert result.halted
