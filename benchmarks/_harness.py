"""Helpers shared by the benchmark modules (kept out of conftest so the
modules can import them by name regardless of pytest's import mode)."""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    """Workload scale for the harness (REPRO_BENCH_SCALE, default 0.1)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


def bench_cache_sizes() -> tuple[int, ...]:
    if bench_scale() >= 0.5:
        return (32, 64, 128, 256, 512)  # the paper's full x-axis
    return (32, 128, 512)


def publish(results_dir: pathlib.Path, name: str, report) -> None:
    """Print an experiment report and persist it under results/."""
    text = f"{report.text}\n\n{report.render_checks()}\n"
    print(f"\n{text}")
    (results_dir / f"{name}.txt").write_text(text)


def once(benchmark, fn):
    """Time ``fn`` exactly once (simulations are long and deterministic)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
