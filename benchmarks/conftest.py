"""Shared fixtures for the benchmark/reproduction harness.

Each ``benchmarks/test_*.py`` module regenerates one table or figure of
the paper: it runs the sweep behind it, prints the same rows the paper
reports, writes the rendered text to ``benchmarks/results/``, asserts
the paper's qualitative claims, and hands one representative simulation
to pytest-benchmark for timing.

Workload scale
--------------
``REPRO_BENCH_SCALE`` (default ``0.1``) scales the benchmark's
iteration counts.  The qualitative claims hold from ~0.05 upward; use
``REPRO_BENCH_SCALE=1.0`` for the full paper-fidelity run (the numbers
recorded in EXPERIMENTS.md), which takes tens of minutes.
"""

from __future__ import annotations

import pytest

from _harness import RESULTS_DIR, bench_cache_sizes, bench_scale
from repro.analysis.experiments import ExperimentContext
from repro.kernels.suite import cached_livermore_suite


@pytest.fixture(scope="session")
def suite():
    return cached_livermore_suite(scale=bench_scale())


@pytest.fixture(scope="session")
def context(suite):
    return ExperimentContext(
        program=suite.program,
        cache_sizes=bench_cache_sizes(),
        suite=suite,
        scale=bench_scale(),
    )


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
