"""Regenerate Figure 6 — 8B bus, 6-cycle memory, pipelining on/off.

Checks that pipelined memory shifts every curve down and compresses
them, that PIPE keeps beating the conventional cache, and the line-size
reversal between fast and slow memory (8-byte lines win at T=1; 16/32
at T=6).
"""

from _harness import once, publish

from repro.analysis.experiments import run_experiment
from repro.core.config import MachineConfig
from repro.core.simulator import simulate


def test_figure6(context, results_dir, benchmark):
    report = run_experiment("figure6", context)
    publish(results_dir, "figure6", report)
    assert report.all_passed, report.render_checks()

    # Timing unit: the best Figure 6b point (pipelined memory, 32-32).
    result = once(
        benchmark,
        lambda: simulate(
            MachineConfig.pipe(
                "32-32",
                512,
                memory_access_time=6,
                input_bus_width=8,
                memory_pipelined=True,
            ),
            context.program,
        ),
    )
    assert result.halted
